//! End-to-end reproduction of the paper's running example: integrating
//! schema sc1 (Figure 3) with schema sc2 (Figure 4) must produce the
//! integrated schema of Figure 5, with the screens' bookkeeping visible at
//! every step.

use sit_core::assertion::Assertion;
use sit_core::integrate::IntegrationOptions;
use sit_core::mapping::{CmpOp, Query};
use sit_core::session::Session;
use sit_ecr::fixtures;

/// Build the session in the state the paper's screens show: equivalences
/// from Screens 6–7 (with GPA≡GPA so Screen 8's 0.5 ratio holds),
/// assertions from Screen 8 (`1`, `3`, `4`), and the Majors≡Majors
/// relationship assertion behind `E_Stud_Majo`.
fn paper_session() -> (Session, sit_ecr::SchemaId, sit_ecr::SchemaId) {
    let mut s = Session::new();
    let sc1 = s.add_schema(fixtures::sc1()).unwrap();
    let sc2 = s.add_schema(fixtures::sc2()).unwrap();

    s.declare_equivalent_named("sc1", "Student", "Name", "sc2", "Grad_student", "Name")
        .unwrap();
    s.declare_equivalent_named("sc1", "Student", "GPA", "sc2", "Grad_student", "GPA")
        .unwrap();
    s.declare_equivalent_named("sc1", "Student", "Name", "sc2", "Faculty", "Name")
        .unwrap();
    s.declare_equivalent_named("sc1", "Department", "Dname", "sc2", "Department", "Dname")
        .unwrap();
    s.declare_equivalent_named("sc1", "Majors", "Since", "sc2", "Majors", "Since")
        .unwrap();

    let dept1 = s.object_named("sc1", "Department").unwrap();
    let dept2 = s.object_named("sc2", "Department").unwrap();
    let student = s.object_named("sc1", "Student").unwrap();
    let grad = s.object_named("sc2", "Grad_student").unwrap();
    let faculty = s.object_named("sc2", "Faculty").unwrap();
    // Screen 8's entered codes: 1 (equals), 3 (contains), 4 (disjoint but
    // integrable).
    s.assert_objects(dept1, dept2, Assertion::Equal).unwrap();
    s.assert_objects(student, grad, Assertion::Contains).unwrap();
    s.assert_objects(student, faculty, Assertion::DisjointIntegrable)
        .unwrap();

    let majors1 = s.rel_named("sc1", "Majors").unwrap();
    let majors2 = s.rel_named("sc2", "Majors").unwrap();
    s.assert_rels(majors1, majors2, Assertion::Equal).unwrap();

    (s, sc1, sc2)
}

#[test]
fn screen8_candidate_rows() {
    let (s, sc1, sc2) = paper_session();
    let pairs = s.candidates(sc1, sc2);
    let rows: Vec<(String, String, String)> = pairs
        .iter()
        .map(|p| {
            (
                s.catalog().obj_display(p.left),
                s.catalog().obj_display(p.right),
                format!("{:.4}", p.ratio),
            )
        })
        .collect();
    assert!(rows.contains(&(
        "sc1.Department".into(),
        "sc2.Department".into(),
        "0.5000".into()
    )));
    assert!(rows.contains(&(
        "sc1.Student".into(),
        "sc2.Grad_student".into(),
        "0.5000".into()
    )));
    assert!(rows.contains(&(
        "sc1.Student".into(),
        "sc2.Faculty".into(),
        "0.3333".into()
    )));
}

#[test]
fn figure5_integrated_schema() {
    let (s, sc1, sc2) = paper_session();
    let result = s.integrate(sc1, sc2, &IntegrationOptions::default()).unwrap();
    let schema = &result.schema;

    // Screen 10: Entities(2): E_Department, D_Stud_Facu;
    // Categories(3): Student, Grad_student, Faculty;
    // Relationships(2): E_Stud_Majo, Works.
    let entities: Vec<&str> = schema.entity_sets().map(|(_, o)| o.name.as_str()).collect();
    let categories: Vec<&str> = schema.categories().map(|(_, o)| o.name.as_str()).collect();
    let rels: Vec<&str> = schema.relationships().map(|(_, r)| r.name.as_str()).collect();
    assert_eq!(entities.len(), 2, "{entities:?}");
    assert!(entities.contains(&"E_Department"), "{entities:?}");
    assert!(entities.contains(&"D_Stud_Facu"), "{entities:?}");
    assert_eq!(categories.len(), 3, "{categories:?}");
    for c in ["Student", "Grad_student", "Faculty"] {
        assert!(categories.contains(&c), "{categories:?}");
    }
    assert_eq!(rels.len(), 2, "{rels:?}");
    assert!(rels.contains(&"E_Stud_Majo"), "{rels:?}");
    assert!(rels.contains(&"Works"), "{rels:?}");

    // Screen 11: Student's parent is D_Stud_Facu, child is Grad_student.
    let student = schema.object_by_name("Student").unwrap();
    let d_stud_facu = schema.object_by_name("D_Stud_Facu").unwrap();
    assert_eq!(schema.object(student).parents(), &[d_stud_facu]);
    let children: Vec<_> = schema.children_of(student).collect();
    assert_eq!(children.len(), 1);
    assert_eq!(schema.object(children[0]).name, "Grad_student");

    // Faculty hangs under D_Stud_Facu too.
    let faculty = schema.object_by_name("Faculty").unwrap();
    assert_eq!(schema.object(faculty).parents(), &[d_stud_facu]);

    // Clusters: {both Departments} and {Student, Grad, Faculty}.
    assert_eq!(result.object_clusters.non_trivial().count(), 2);
}

#[test]
fn screen12_component_attributes() {
    let (s, sc1, sc2) = paper_session();
    let result = s.integrate(sc1, sc2, &IntegrationOptions::default()).unwrap();
    let schema = &result.schema;

    // Student carries D_Name with two components: sc1.Student.Name (E) and
    // sc2.Grad_student.Name (E) — the exact rows of Screens 12a/12b.
    let student = schema.object_by_name("Student").unwrap();
    let obj = schema.object(student);
    let (aid, attr) = obj.attr_by_name("D_Name").expect("derived D_Name");
    assert!(attr.is_key(), "both components are keys");
    let prov = &result.object_attr_prov[student.index()][aid.index()];
    assert!(prov.is_derived());
    assert_eq!(prov.components.len(), 2);
    let c0 = &prov.components[0];
    assert_eq!(
        (c0.schema.as_str(), c0.owner.as_str(), c0.owner_kind),
        ("sc1", "Student", 'E')
    );
    assert_eq!(c0.attr.name, "Name");
    let c1 = &prov.components[1];
    assert_eq!(
        (c1.schema.as_str(), c1.owner.as_str(), c1.owner_kind),
        ("sc2", "Grad_student", 'E')
    );

    // GPA also merged (D_GPA), non-key; Grad_student keeps Support_type.
    assert!(obj.attr_by_name("D_GPA").is_some());
    let grad = schema.object_by_name("Grad_student").unwrap();
    let grad_attrs: Vec<&str> = schema
        .object(grad)
        .attributes
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    assert_eq!(grad_attrs, vec!["Support_type"]);

    // Faculty keeps its own Name and Rank (no pull-up to D_Stud_Facu).
    let faculty = schema.object_by_name("Faculty").unwrap();
    let fattrs: Vec<&str> = schema
        .object(faculty)
        .attributes
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    assert_eq!(fattrs, vec!["Name", "Rank"]);
    let dsf = schema.object_by_name("D_Stud_Facu").unwrap();
    assert!(schema.object(dsf).attributes.is_empty());

    // E_Department's key merges into D_Dname.
    let dept = schema.object_by_name("E_Department").unwrap();
    assert!(schema.object(dept).attr_by_name("D_Dname").is_some());
}

#[test]
fn merged_relationship_binds_to_general_class() {
    let (s, sc1, sc2) = paper_session();
    let result = s.integrate(sc1, sc2, &IntegrationOptions::default()).unwrap();
    let schema = &result.schema;
    let rid = schema.rel_by_name("E_Stud_Majo").unwrap();
    let rel = schema.relationship(rid);
    assert_eq!(rel.degree(), 2);
    let leg_names: Vec<&str> = rel
        .participants
        .iter()
        .map(|p| schema.object(p.object).name.as_str())
        .collect();
    // sc1.Majors(Student, Department) + sc2.Majors(Grad_student,
    // Department): the merged legs bind to Student (the more general class)
    // and E_Department.
    assert!(leg_names.contains(&"Student"), "{leg_names:?}");
    assert!(leg_names.contains(&"E_Department"), "{leg_names:?}");
    // The Since attributes merged into one derived attribute.
    assert_eq!(rel.attributes.len(), 1);
    assert_eq!(rel.attributes[0].name, "D_Since");

    // Works is copied with its Faculty leg rebound to the integrated
    // Faculty category.
    let works = schema.relationship(schema.rel_by_name("Works").unwrap());
    let works_legs: Vec<&str> = works
        .participants
        .iter()
        .map(|p| schema.object(p.object).name.as_str())
        .collect();
    assert!(works_legs.contains(&"Faculty"), "{works_legs:?}");
    assert!(works_legs.contains(&"E_Department"), "{works_legs:?}");
}

#[test]
fn pull_up_ablation_moves_name_to_derived_class() {
    let (s, sc1, sc2) = paper_session();
    let options = IntegrationOptions {
        pull_up_common_attrs: true,
        ..Default::default()
    };
    let result = s.integrate(sc1, sc2, &options).unwrap();
    let schema = &result.schema;
    let dsf = schema.object_by_name("D_Stud_Facu").unwrap();
    // With pull-up, the Name class (shared by Student and Faculty) lives on
    // the derived superclass...
    let dsf_attrs: Vec<&str> = schema
        .object(dsf)
        .attributes
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    assert_eq!(dsf_attrs, vec!["D_Name"]);
    // ...and neither child re-declares it.
    let student = schema.object_by_name("Student").unwrap();
    assert!(schema.object(student).attr_by_name("D_Name").is_none());
    let faculty = schema.object_by_name("Faculty").unwrap();
    assert!(schema.object(faculty).attr_by_name("Name").is_none());
    // The pulled-up attribute has three components (Student, Grad_student,
    // Faculty all contributed Names in one class).
    let (aid, _) = schema.object(dsf).attr_by_name("D_Name").unwrap();
    let prov = &result.object_attr_prov[dsf.index()][aid.index()];
    assert_eq!(prov.components.len(), 3);
}

#[test]
fn mappings_translate_both_directions() {
    let (s, sc1, sc2) = paper_session();
    let (result, mappings) = s
        .integrate_with_mappings(sc1, sc2, &IntegrationOptions::default())
        .unwrap();

    // Logical design: a view request against sc2.Grad_student rewrites to
    // the integrated schema — Name was absorbed into Student.D_Name.
    let view_q = Query::select("Grad_student", &["Name", "Support_type"])
        .filtered("Name", CmpOp::Eq, "'Smith'");
    let up = mappings.to_integrated("sc2", &view_q).unwrap();
    assert_eq!(up.object, "Grad_student");
    assert_eq!(up.project, vec!["D_Name".to_owned(), "Support_type".to_owned()]);
    assert_eq!(up.filter.as_ref().unwrap().attr, "D_Name");

    // Global design: a request against the derived D_Stud_Facu fans out to
    // both component branches.
    let global_q = Query::select("D_Stud_Facu", &["D_Name"]);
    let plan = mappings.to_components(&global_q).unwrap();
    assert_eq!(plan.branches.len(), 2);
    let schemas: Vec<&str> = plan.branches.iter().map(|b| b.schema.as_str()).collect();
    assert!(schemas.contains(&"sc1"));
    assert!(schemas.contains(&"sc2"));
    let sc1_branch = plan.branches.iter().find(|b| b.schema == "sc1").unwrap();
    assert_eq!(sc1_branch.query.object, "Student");
    assert_eq!(sc1_branch.query.project, vec!["Name".to_owned()]);

    // A request against E_Department is answerable from either component.
    let dept_q = Query::select("E_Department", &["D_Dname"]);
    let plan = mappings.to_components(&dept_q).unwrap();
    assert!(plan.equivalent);
    assert_eq!(plan.branches.len(), 2);
    let _ = result;
}

#[test]
fn figure2_cases() {
    // 2a: equals.
    let (a, b) = fixtures::fig2a();
    let mut s = Session::new();
    let sa = s.add_schema(a).unwrap();
    let sb = s.add_schema(b).unwrap();
    s.declare_equivalent_named("sc1", "Department", "Dname", "sc2", "Department", "Dname")
        .unwrap();
    let d1 = s.object_named("sc1", "Department").unwrap();
    let d2 = s.object_named("sc2", "Department").unwrap();
    s.assert_objects(d1, d2, Assertion::Equal).unwrap();
    let r = s.integrate(sa, sb, &Default::default()).unwrap();
    assert_eq!(r.schema.object_count(), 1);
    assert_eq!(r.schema.object(sit_ecr::ObjectId::new(0)).name, "E_Department");
    // Both Budget and Location survive alongside the merged key.
    let attrs: Vec<&str> = r.schema.object(sit_ecr::ObjectId::new(0))
        .attributes.iter().map(|x| x.name.as_str()).collect();
    assert!(attrs.contains(&"D_Dname"), "{attrs:?}");
    assert!(attrs.contains(&"Budget"), "{attrs:?}");
    assert!(attrs.contains(&"Location"), "{attrs:?}");

    // 2b: contains.
    let (a, b) = fixtures::fig2b();
    let mut s = Session::new();
    let sa = s.add_schema(a).unwrap();
    let sb = s.add_schema(b).unwrap();
    s.declare_equivalent_named("sc1", "Student", "Name", "sc2", "Grad_student", "Name")
        .unwrap();
    let student = s.object_named("sc1", "Student").unwrap();
    let grad = s.object_named("sc2", "Grad_student").unwrap();
    s.assert_objects(student, grad, Assertion::Contains).unwrap();
    let r = s.integrate(sa, sb, &Default::default()).unwrap();
    let student_i = r.schema.object_by_name("Student").unwrap();
    let grad_i = r.schema.object_by_name("Grad_student").unwrap();
    assert!(r.schema.object(grad_i).kind.is_category());
    assert_eq!(r.schema.object(grad_i).parents(), &[student_i]);

    // 2c: may be (overlap) → D_Grad_Inst.
    let (a, b) = fixtures::fig2c();
    let mut s = Session::new();
    let sa = s.add_schema(a).unwrap();
    let sb = s.add_schema(b).unwrap();
    s.declare_equivalent_named("sc1", "Grad_student", "Name", "sc2", "Instructor", "Name")
        .unwrap();
    let grad = s.object_named("sc1", "Grad_student").unwrap();
    let inst = s.object_named("sc2", "Instructor").unwrap();
    s.assert_objects(grad, inst, Assertion::MayBe).unwrap();
    let r = s.integrate(sa, sb, &Default::default()).unwrap();
    let d = r.schema.object_by_name("D_Grad_Inst").expect("derived class");
    assert!(!r.schema.object(d).kind.is_category(), "derived root is an entity set");
    assert_eq!(r.schema.children_of(d).count(), 2);

    // 2d: disjoint integrable → D_Secr_Engi.
    let (a, b) = fixtures::fig2d();
    let mut s = Session::new();
    let sa = s.add_schema(a).unwrap();
    let sb = s.add_schema(b).unwrap();
    let secr = s.object_named("sc1", "Secretary").unwrap();
    let engi = s.object_named("sc2", "Engineer").unwrap();
    s.assert_objects(secr, engi, Assertion::DisjointIntegrable).unwrap();
    let r = s.integrate(sa, sb, &Default::default()).unwrap();
    assert!(r.schema.object_by_name("D_Secr_Engi").is_some());
    assert_eq!(r.schema.object_count(), 3);

    // 2e: disjoint non-integrable → kept separate.
    let (a, b) = fixtures::fig2e();
    let mut s = Session::new();
    let sa = s.add_schema(a).unwrap();
    let sb = s.add_schema(b).unwrap();
    let ugs = s.object_named("sc1", "Under_Grad_Student").unwrap();
    let prof = s.object_named("sc2", "Full_Professor").unwrap();
    s.assert_objects(ugs, prof, Assertion::DisjointNonIntegrable).unwrap();
    let r = s.integrate(sa, sb, &Default::default()).unwrap();
    assert_eq!(r.schema.object_count(), 2);
    assert!(r.schema.object_by_name("Under_Grad_Student").is_some());
    assert!(r.schema.object_by_name("Full_Professor").is_some());
    assert_eq!(r.derived_objects().count(), 0);
}

#[test]
fn integration_result_can_be_reintegrated() {
    // "A result of integration of two schemas can be integrated with
    // another schema."
    let (mut s, sc1, sc2) = paper_session();
    let result = s.integrate(sc1, sc2, &IntegrationOptions::default()).unwrap();
    let merged_id = s.add_schema(result.schema).unwrap();
    let sc3 = s.add_schema(fixtures::sc3()).unwrap();
    // Assert Instructor overlaps the integrated Faculty.
    let inst = s.object_named("sc3", "Instructor").unwrap();
    let fac = s.object_named("sc1+sc2", "Faculty").unwrap();
    s.assert_objects(inst, fac, Assertion::MayBe).unwrap();
    let second = s.integrate(merged_id, sc3, &Default::default()).unwrap();
    assert!(second.schema.object_by_name("D_Facu_Inst").is_some());
}
