//! Relationship-set integration in depth: lattice edges from containment,
//! derived (union) relationship sets, leg pairing, constraint widening,
//! role preservation, and the error paths.

use sit_core::assertion::Assertion;
use sit_core::error::CoreError;
use sit_core::integrate::{IntegrationOptions, RelOrigin};
use sit_core::session::Session;
use sit_ecr::{ddl, Cardinality};

fn session_of(a: &str, b: &str) -> (Session, sit_ecr::SchemaId, sit_ecr::SchemaId) {
    let mut s = Session::new();
    let sa = s.add_schema(ddl::parse(a).unwrap()).unwrap();
    let sb = s.add_schema(ddl::parse(b).unwrap()).unwrap();
    (s, sa, sb)
}

#[test]
fn contained_relationship_builds_a_lattice_edge() {
    // `Advises` (faculty advising grads) is contained in the general
    // `Supervises` relationship: both survive, linked in the lattice.
    let (mut s, sa, sb) = session_of(
        "schema a { entity Person { id: int key; } relationship Supervises {
            Person (0,n) role boss; Person (0,n) role report; } }",
        "schema b { entity Human { id: int key; } relationship Advises {
            Human (0,n) role advisor; Human (0,n) role advisee; } }",
    );
    s.declare_equivalent_named("a", "Person", "id", "b", "Human", "id").unwrap();
    let person = s.object_named("a", "Person").unwrap();
    let human = s.object_named("b", "Human").unwrap();
    s.assert_objects(person, human, Assertion::Equal).unwrap();
    let sup = s.rel_named("a", "Supervises").unwrap();
    let adv = s.rel_named("b", "Advises").unwrap();
    s.assert_rels(adv, sup, Assertion::ContainedIn).unwrap();

    let result = s.integrate(sa, sb, &IntegrationOptions::default()).unwrap();
    let schema = &result.schema;
    let sup_i = schema.rel_by_name("Supervises").expect("parent kept");
    let adv_i = schema.rel_by_name("Advises").expect("child kept");
    assert!(
        result.rel_lattice.contains(&(adv_i, sup_i)),
        "lattice edge child->parent: {:?}",
        result.rel_lattice
    );
    // Both rebound to the merged E_Person class.
    let merged = schema.object_by_name("E_Pers_Huma").unwrap();
    for rid in [sup_i, adv_i] {
        for p in &schema.relationship(rid).participants {
            assert_eq!(p.object, merged);
        }
    }
    // Roles survived the rebind.
    assert_eq!(
        schema.relationship(adv_i).participants[0].role.as_deref(),
        Some("advisor")
    );
}

#[test]
fn disjoint_integrable_relationships_produce_a_derived_union() {
    // TeachesUndergrad and TeachesGrad are disjoint tuple sets over the
    // same classes; integrating them yields a derived "teaches" set.
    let (mut s, sa, sb) = session_of(
        "schema a { entity Prof { id: int key; } entity UCourse { no: int key; }
         relationship TeachesU { Prof (0,3); UCourse (1,1); } }",
        "schema b { entity Teacher { id: int key; } entity GCourse { no: int key; }
         relationship TeachesG { Teacher (0,2); GCourse (1,1); } }",
    );
    s.declare_equivalent_named("a", "Prof", "id", "b", "Teacher", "id").unwrap();
    s.declare_equivalent_named("a", "UCourse", "no", "b", "GCourse", "no").unwrap();
    let prof = s.object_named("a", "Prof").unwrap();
    let teacher = s.object_named("b", "Teacher").unwrap();
    s.assert_objects(prof, teacher, Assertion::Equal).unwrap();
    let uc = s.object_named("a", "UCourse").unwrap();
    let gc = s.object_named("b", "GCourse").unwrap();
    s.assert_objects(uc, gc, Assertion::DisjointIntegrable).unwrap();
    let tu = s.rel_named("a", "TeachesU").unwrap();
    let tg = s.rel_named("b", "TeachesG").unwrap();
    s.assert_rels(tu, tg, Assertion::DisjointIntegrable).unwrap();

    let result = s.integrate(sa, sb, &IntegrationOptions::default()).unwrap();
    let schema = &result.schema;
    let derived = schema
        .rel_by_name("D_Teac_Teac")
        .expect("derived union relationship");
    match &result.rel_origin[derived.index()] {
        RelOrigin::DerivedSuper { children } => {
            assert_eq!(children.len(), 2);
            for &c in children {
                assert!(
                    result.rel_lattice.contains(&(c, derived)),
                    "children linked under the union"
                );
            }
        }
        other => panic!("expected derived super, got {other:?}"),
    }
    let rel = schema.relationship(derived);
    // Prof leg: min drops to 0, maxima sum (3 + 2).
    let prof_leg = rel
        .participants
        .iter()
        .find(|p| schema.object(p.object).name == "E_Prof_Teac")
        .expect("merged professor leg");
    assert_eq!(prof_leg.cardinality, Cardinality::new(0, Some(5)));
    // Course leg binds to the derived course superclass.
    let course_leg = rel
        .participants
        .iter()
        .find(|p| schema.object(p.object).name.starts_with("D_UCou"))
        .expect("derived course leg");
    assert_eq!(course_leg.cardinality, Cardinality::new(0, Some(2)));
}

#[test]
fn merged_relationship_widens_constraints_and_merges_attrs() {
    let (mut s, sa, sb) = session_of(
        "schema a { entity X { id: int key; } entity Y { id: int key; }
         relationship R { X (1,1); Y (0,n); weight: real; } }",
        "schema b { entity P { id: int key; } entity Q { id: int key; }
         relationship S { P (0,3); Q (2,n); load: real; } }",
    );
    for (o1, o2) in [("X", "P"), ("Y", "Q")] {
        s.declare_equivalent_named("a", o1, "id", "b", o2, "id").unwrap();
        let a = s.object_named("a", o1).unwrap();
        let b = s.object_named("b", o2).unwrap();
        s.assert_objects(a, b, Assertion::Equal).unwrap();
    }
    s.declare_equivalent_named("a", "R", "weight", "b", "S", "load").unwrap();
    let r = s.rel_named("a", "R").unwrap();
    let srel = s.rel_named("b", "S").unwrap();
    s.assert_rels(r, srel, Assertion::Equal).unwrap();

    let result = s.integrate(sa, sb, &IntegrationOptions::default()).unwrap();
    let schema = &result.schema;
    let merged = schema.rel_by_name("E_R_S").expect("merged relationship");
    let rel = schema.relationship(merged);
    // (1,1) widen (0,3) = (0,3); (0,n) widen (2,n) = (0,n).
    let cards: Vec<Cardinality> = rel.participants.iter().map(|p| p.cardinality).collect();
    assert!(cards.contains(&Cardinality::new(0, Some(3))), "{cards:?}");
    assert!(cards.contains(&Cardinality::MANY), "{cards:?}");
    // weight ≡ load merged into a derived attribute.
    assert_eq!(rel.attributes.len(), 1);
    assert_eq!(rel.attributes[0].name, "D_weig_load");
    let prov = &result.rel_attr_prov[merged.index()][0];
    assert!(prov.is_derived());
    assert_eq!(prov.components.len(), 2);
    assert!(prov.components.iter().all(|c| c.owner_kind == 'R'));
}

#[test]
fn leg_mismatch_is_reported() {
    // R relates X-Y; S relates P-P (recursive). With X≡P only, S's second
    // leg has no comparable counterpart in R.
    let (mut s, sa, sb) = session_of(
        "schema a { entity X { id: int key; } entity Y { id: int key; }
         relationship R { X (0,n); Y (0,n); } }",
        "schema b { entity P { id: int key; }
         relationship S { P (0,n); P (0,n); } }",
    );
    s.declare_equivalent_named("a", "X", "id", "b", "P", "id").unwrap();
    let x = s.object_named("a", "X").unwrap();
    let p = s.object_named("b", "P").unwrap();
    s.assert_objects(x, p, Assertion::Equal).unwrap();
    let r = s.rel_named("a", "R").unwrap();
    let srel = s.rel_named("b", "S").unwrap();
    s.assert_rels(r, srel, Assertion::Equal).unwrap();
    let err = s.integrate(sa, sb, &IntegrationOptions::default()).unwrap_err();
    assert!(matches!(err, CoreError::RelLegMismatch { .. }), "{err}");
}

#[test]
fn pull_up_moves_common_rel_attrs_to_the_union() {
    let (mut s, sa, sb) = session_of(
        "schema a { entity X { id: int key; } entity Y { id: int key; }
         relationship R { X (0,n); Y (0,n); started: date; } }",
        "schema b { entity P { id: int key; } entity Q { id: int key; }
         relationship S { P (0,n); Q (0,n); begun: date; } }",
    );
    for (o1, o2) in [("X", "P"), ("Y", "Q")] {
        s.declare_equivalent_named("a", o1, "id", "b", o2, "id").unwrap();
        let a = s.object_named("a", o1).unwrap();
        let b = s.object_named("b", o2).unwrap();
        s.assert_objects(a, b, Assertion::Equal).unwrap();
    }
    s.declare_equivalent_named("a", "R", "started", "b", "S", "begun").unwrap();
    let r = s.rel_named("a", "R").unwrap();
    let srel = s.rel_named("b", "S").unwrap();
    s.assert_rels(r, srel, Assertion::DisjointIntegrable).unwrap();

    let options = IntegrationOptions {
        pull_up_common_attrs: true,
        ..Default::default()
    };
    let result = s.integrate(sa, sb, &options).unwrap();
    let schema = &result.schema;
    let derived = schema.rel_by_name("D_R_S").expect("derived union");
    let rel = schema.relationship(derived);
    assert_eq!(rel.attributes.len(), 1, "{:?}", rel.attributes);
    assert_eq!(rel.attributes[0].name, "D_star_begu");
    // Without pull-up the union has no attributes.
    let plain = s.integrate(sa, sb, &IntegrationOptions::default()).unwrap();
    let d = plain.schema.rel_by_name("D_R_S").unwrap();
    assert!(plain.schema.relationship(d).attributes.is_empty());
}

#[test]
fn unrelated_same_name_relationships_are_disambiguated() {
    let (s, sa, sb) = session_of(
        "schema a { entity X { id: int key; } entity Y { id: int key; }
         relationship Link { X (0,n); Y (0,n); } }",
        "schema b { entity P { id: int key; } entity Q { id: int key; }
         relationship Link { P (0,n); Q (0,n); } }",
    );
    // No assertions at all: everything copies; the second `Link` gets a
    // fresh name.
    let result = s.integrate(sa, sb, &IntegrationOptions::default()).unwrap();
    let names: Vec<&str> = result
        .schema
        .relationships()
        .map(|(_, r)| r.name.as_str())
        .collect();
    assert_eq!(names.len(), 2);
    assert!(names.contains(&"Link"));
    assert!(names.contains(&"Link_2"), "{names:?}");
}

#[test]
fn rel_mappings_translate_view_queries() {
    let mut s = Session::new();
    let sa = s.add_schema(sit_ecr::fixtures::sc1()).unwrap();
    let sb = s.add_schema(sit_ecr::fixtures::sc2()).unwrap();
    s.declare_equivalent_named("sc1", "Majors", "Since", "sc2", "Majors", "Since")
        .unwrap();
    s.declare_equivalent_named("sc1", "Student", "Name", "sc2", "Grad_student", "Name")
        .unwrap();
    s.declare_equivalent_named("sc1", "Department", "Dname", "sc2", "Department", "Dname")
        .unwrap();
    let st = s.object_named("sc1", "Student").unwrap();
    let gr = s.object_named("sc2", "Grad_student").unwrap();
    s.assert_objects(st, gr, Assertion::Contains).unwrap();
    let d1 = s.object_named("sc1", "Department").unwrap();
    let d2 = s.object_named("sc2", "Department").unwrap();
    s.assert_objects(d1, d2, Assertion::Equal).unwrap();
    let m1 = s.rel_named("sc1", "Majors").unwrap();
    let m2 = s.rel_named("sc2", "Majors").unwrap();
    s.assert_rels(m1, m2, Assertion::Equal).unwrap();
    let (_, mappings) = s
        .integrate_with_mappings(sa, sb, &IntegrationOptions::default())
        .unwrap();
    // View query against sc2.Majors maps to the merged relationship.
    let q = sit_core::mapping::Query::select("Majors", &["Since"]);
    let up = mappings.to_integrated("sc2", &q).unwrap();
    assert_eq!(up.object, "E_Stud_Majo");
    assert_eq!(up.project, vec!["D_Since".to_owned()]);
    // Down: the merged relationship is answerable from either component.
    let down = mappings
        .to_components(&sit_core::mapping::Query::select("E_Stud_Majo", &["D_Since"]))
        .unwrap();
    assert!(down.equivalent);
    assert_eq!(down.branches.len(), 2);
    assert!(down.branches.iter().all(|b| b.query.object == "Majors"));
}
