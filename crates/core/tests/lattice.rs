//! Object-lattice construction in depth: transitive reduction, category
//! structure carried through integration, equals-chains, derived classes
//! over merged nodes, name collisions, rename overrides, and the Entity
//! Assertion matrix.

use std::collections::HashMap;

use sit_core::assertion::Assertion;
use sit_core::integrate::{IntegrationOptions, NodeOrigin};
use sit_core::session::Session;
use sit_ecr::ddl;

fn session_of(a: &str, b: &str) -> (Session, sit_ecr::SchemaId, sit_ecr::SchemaId) {
    let mut s = Session::new();
    let sa = s.add_schema(ddl::parse(a).unwrap()).unwrap();
    let sb = s.add_schema(ddl::parse(b).unwrap()).unwrap();
    (s, sa, sb)
}

#[test]
fn transitive_reduction_keeps_only_hasse_edges() {
    // a.Top ⊇ b.Mid (user), b.Mid ⊇ ... and a.Top ⊇ b.Low is DERIVED via
    // b's own category edge. Low must become a category of Mid only, not
    // of Top as well.
    let (mut s, sa, sb) = session_of(
        "schema a { entity Top { id: int key; } }",
        "schema b { entity Mid { id: int key; } category Low of Mid { extra: char; } }",
    );
    s.declare_equivalent_named("a", "Top", "id", "b", "Mid", "id").unwrap();
    let top = s.object_named("a", "Top").unwrap();
    let mid = s.object_named("b", "Mid").unwrap();
    let low = s.object_named("b", "Low").unwrap();
    s.assert_objects(top, mid, Assertion::Contains).unwrap();
    // The derived fact Top ⊇ Low exists...
    assert_eq!(
        s.object_engine().known(low, top),
        Some(sit_core::assertion::Rel5::Pp)
    );
    let result = s.integrate(sa, sb, &IntegrationOptions::default()).unwrap();
    let schema = &result.schema;
    let low_i = schema.object_by_name("Low").unwrap();
    let mid_i = schema.object_by_name("Mid").unwrap();
    // ...but the integrated schema carries only the direct edge.
    assert_eq!(schema.object(low_i).parents(), &[mid_i]);
    let top_i = schema.object_by_name("Top").unwrap();
    assert_eq!(schema.object(mid_i).parents(), &[top_i]);
}

#[test]
fn multi_parent_categories_survive_integration() {
    let (s, sa, sb) = session_of(
        "schema a {
            entity Student { id: int key; }
            entity Employee { id: int key; }
            category WorkingStudent of Student, Employee { hours: int; }
        }",
        "schema b { entity Campus { code: char key; } }",
    );
    let result = s.integrate(sa, sb, &IntegrationOptions::default()).unwrap();
    let schema = &result.schema;
    let ws = schema.object_by_name("WorkingStudent").unwrap();
    let parents = schema.object(ws).parents();
    assert_eq!(parents.len(), 2);
    let names: Vec<&str> = parents
        .iter()
        .map(|&p| schema.object(p).name.as_str())
        .collect();
    assert!(names.contains(&"Student") && names.contains(&"Employee"), "{names:?}");
}

#[test]
fn derived_class_over_a_merged_node() {
    // a.Person ≡ b.Human, then the merged class overlaps a *third*
    // schema's Cyborg (within one schema an overlap partner would
    // contradict the seeded entity-set disjointness — which the engine
    // correctly rejects, see `overlap_with_sibling_of_merge_is_rejected`).
    let (mut s, sa, sb) = session_of(
        "schema a { entity Person { id: int key; } }",
        "schema b { entity Human { id: int key; } }",
    );
    s.declare_equivalent_named("a", "Person", "id", "b", "Human", "id").unwrap();
    let person = s.object_named("a", "Person").unwrap();
    let human = s.object_named("b", "Human").unwrap();
    s.assert_objects(person, human, Assertion::Equal).unwrap();
    let first = s.integrate(sa, sb, &IntegrationOptions::default()).unwrap();
    let merged_id = s.add_schema(first.schema).unwrap();
    let c = s
        .add_schema(ddl::parse("schema c { entity Cyborg { serial: char key; } }").unwrap())
        .unwrap();
    let merged_name = s.catalog().schema(merged_id).name().to_owned();
    let merged_obj = s.object_named(&merged_name, "E_Pers_Huma").unwrap();
    let cyborg = s.object_named("c", "Cyborg").unwrap();
    s.assert_objects(merged_obj, cyborg, Assertion::MayBe).unwrap();
    let result = s.integrate(merged_id, c, &IntegrationOptions::default()).unwrap();
    let schema = &result.schema;
    // Derived name strips the E_ prefix of the merged child.
    let derived = schema.object_by_name("D_Pers_Cybo").unwrap_or_else(|| {
        panic!(
            "derived class missing; objects: {:?}",
            schema.objects().map(|(_, o)| o.name.clone()).collect::<Vec<_>>()
        )
    });
    let children: Vec<&str> = schema
        .children_of(derived)
        .map(|c| schema.object(c).name.as_str())
        .collect();
    assert_eq!(children.len(), 2, "{children:?}");
    assert!(children.contains(&"E_Pers_Huma"), "{children:?}");
    assert!(children.contains(&"Cyborg"), "{children:?}");
}

#[test]
fn overlap_with_sibling_of_merge_is_rejected() {
    // Person ≡ Human makes Human disjoint from Person's same-schema
    // sibling Android; asserting overlap must conflict, with the seeded
    // disjointness in the support chain.
    let (mut s, _, _) = session_of(
        "schema a { entity Person { id: int key; } entity Android { serial: char key; } }",
        "schema b { entity Human { id: int key; } }",
    );
    s.declare_equivalent_named("a", "Person", "id", "b", "Human", "id").unwrap();
    let person = s.object_named("a", "Person").unwrap();
    let human = s.object_named("b", "Human").unwrap();
    let android = s.object_named("a", "Android").unwrap();
    s.assert_objects(person, human, Assertion::Equal).unwrap();
    let err = s.assert_objects(android, human, Assertion::MayBe).unwrap_err();
    match err {
        sit_core::error::CoreError::Conflict(report) => {
            assert!(report
                .supports
                .iter()
                .any(|sup| !sup.from_user), "structural seed cited: {report}");
        }
        other => panic!("expected conflict, got {other}"),
    }
}

#[test]
fn unrelated_same_name_objects_are_disambiguated() {
    let (s, sa, sb) = session_of(
        "schema a { entity Item { sku: char key; } }",
        "schema b { entity Item { id: int key; } }",
    );
    let result = s.integrate(sa, sb, &IntegrationOptions::default()).unwrap();
    let names: Vec<String> = result
        .schema
        .objects()
        .map(|(_, o)| o.name.clone())
        .collect();
    assert_eq!(names.len(), 2);
    assert!(names.contains(&"Item".to_owned()));
    assert!(names.contains(&"Item_2".to_owned()), "{names:?}");
    // Both map back unambiguously.
    let a_item = s.object_named("a", "Item").unwrap();
    let b_item = s.object_named("b", "Item").unwrap();
    assert_ne!(result.node_of(a_item), result.node_of(b_item));
}

#[test]
fn rename_overrides_apply_before_uniquification() {
    let (mut s, sa, sb) = session_of(
        "schema a { entity Person { id: int key; } }",
        "schema b { entity Human { id: int key; } }",
    );
    s.declare_equivalent_named("a", "Person", "id", "b", "Human", "id").unwrap();
    let person = s.object_named("a", "Person").unwrap();
    let human = s.object_named("b", "Human").unwrap();
    s.assert_objects(person, human, Assertion::Equal).unwrap();
    let mut rename = HashMap::new();
    rename.insert("E_Pers_Huma".to_owned(), "Person".to_owned());
    let options = IntegrationOptions {
        rename,
        ..Default::default()
    };
    let result = s.integrate(sa, sb, &options).unwrap();
    assert!(result.schema.object_by_name("Person").is_some());
    assert!(result.schema.object_by_name("E_Pers_Huma").is_none());
    match &result.object_origin[0] {
        NodeOrigin::Merged(members) => assert_eq!(members.len(), 2),
        other => panic!("expected merge, got {other:?}"),
    }
}

#[test]
fn equals_chain_of_three_views_collapses_through_nary() {
    // a ≡ b and then (a+b) ≡ c: the final schema holds one class.
    let mut s = Session::new();
    let a = s
        .add_schema(ddl::parse("schema a { entity City { name: char key; } }").unwrap())
        .unwrap();
    let b = s
        .add_schema(ddl::parse("schema b { entity Town { name: char key; } }").unwrap())
        .unwrap();
    s.declare_equivalent_named("a", "City", "name", "b", "Town", "name").unwrap();
    let city = s.object_named("a", "City").unwrap();
    let town = s.object_named("b", "Town").unwrap();
    s.assert_objects(city, town, Assertion::Equal).unwrap();
    let first = s.integrate(a, b, &IntegrationOptions::default()).unwrap();
    let merged_id = s.add_schema(first.schema).unwrap();
    let c = s
        .add_schema(ddl::parse("schema c { entity Municipality { name: char key; } }").unwrap())
        .unwrap();
    let merged_name = s.catalog().schema(merged_id).name().to_owned();
    // The merged key is D_name; equate it with c's key.
    s.declare_equivalent_named(&merged_name, "E_City_Town", "D_name", "c", "Municipality", "name")
        .unwrap();
    let m = s.object_named(&merged_name, "E_City_Town").unwrap();
    let muni = s.object_named("c", "Municipality").unwrap();
    s.assert_objects(m, muni, Assertion::Equal).unwrap();
    let second = s.integrate(merged_id, c, &IntegrationOptions::default()).unwrap();
    assert_eq!(second.schema.object_count(), 1);
    // The name stays a single E_ merge, not E_E_...
    let name = &second.schema.object(sit_ecr::ObjectId::new(0)).name;
    assert!(!name.starts_with("E_E_"), "{name}");
}

#[test]
fn assertion_matrix_reports_user_and_derived_entries() {
    let mut s = Session::new();
    let sa = s.add_schema(sit_ecr::fixtures::sc3()).unwrap();
    let sb = s.add_schema(sit_ecr::fixtures::sc4()).unwrap();
    let inst = s.object_named("sc3", "Instructor").unwrap();
    let grad = s.object_named("sc4", "Grad_student").unwrap();
    s.assert_objects(inst, grad, Assertion::ContainedIn).unwrap();
    let m = s.assertion_matrix(sa, sb);
    // sc3 has 1 object; sc4 has Student, Grad_student.
    assert_eq!(m.len(), 1);
    assert_eq!(m[0].len(), 2);
    let student_col = s
        .catalog()
        .schema(sb)
        .object_by_name("Student")
        .unwrap()
        .index();
    let grad_col = s
        .catalog()
        .schema(sb)
        .object_by_name("Grad_student")
        .unwrap()
        .index();
    assert_eq!(m[0][grad_col], Some(Assertion::ContainedIn), "user entry");
    assert_eq!(m[0][student_col], Some(Assertion::ContainedIn), "derived entry");
}

#[test]
fn self_integration_is_rejected() {
    let (s, sa, _) = session_of(
        "schema a { entity X { id: int key; } }",
        "schema b { entity Y { id: int key; } }",
    );
    let err = s.integrate(sa, sa, &IntegrationOptions::default()).unwrap_err();
    assert!(err.to_string().contains("itself"), "{err}");
}

#[test]
fn intra_schema_relationships_rebind_within_one_copied_schema() {
    // Schemas with no cross assertions at all: integration is a disjoint
    // union with every leg rebound correctly.
    let (s, sa, sb) = session_of(
        "schema a { entity X { id: int key; } entity Y { id: int key; }
         relationship R { X (1,1); Y (0,n); } }",
        "schema b { entity Z { id: int key; } category W of Z { } }",
    );
    let result = s.integrate(sa, sb, &IntegrationOptions::default()).unwrap();
    let schema = &result.schema;
    assert_eq!(schema.object_count(), 4);
    assert_eq!(schema.relationship_count(), 1);
    let r = schema.relationship(schema.rel_by_name("R").unwrap());
    let leg_names: Vec<&str> = r
        .participants
        .iter()
        .map(|p| schema.object(p.object).name.as_str())
        .collect();
    assert_eq!(leg_names, vec!["X", "Y"]);
    // b's category edge survived.
    let w = schema.object_by_name("W").unwrap();
    let z = schema.object_by_name("Z").unwrap();
    assert_eq!(schema.object(w).parents(), &[z]);
}
