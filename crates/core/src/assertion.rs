//! The five integration assertions and their underlying domain-relation
//! algebra.
//!
//! An *assertion* specifies the relationship between the (real-world)
//! domains of two object classes from different schemas (paper §2). The
//! user-facing vocabulary — with the numeric codes of Screens 8 and 9 — is:
//!
//! | code | assertion | domain relation |
//! |------|-----------|-----------------|
//! | 1 | equals | identical domains |
//! | 2 | contained in | dom(a) ⊂ dom(b) |
//! | 3 | contains | dom(a) ⊃ dom(b) |
//! | 4 | disjoint but integrable | dom(a) ∩ dom(b) = ∅, derived superclass wanted |
//! | 5 | may be integrable | domains overlap, neither contains the other |
//! | 0 | disjoint & non-integrable | dom(a) ∩ dom(b) = ∅, kept separate |
//!
//! Semantically these collapse onto the five jointly-exhaustive,
//! mutually-exclusive relations between two non-empty sets — exactly the
//! RCC5 base relations ([`Rel5`]): equal, proper part, inverse proper part,
//! partial overlap, and disjoint. The paper's "rules of transitive
//! composition of assertions (such as if a ⊆ b and b ⊆ c then a ⊆ c)" are
//! the RCC5 composition table; we implement it in full, over *sets* of
//! possible relations ([`Rel5Set`]), which also powers the consistency
//! check: a group of assertions is contradictory exactly when propagation
//! empties some pair's possible-relation set.

use std::fmt;

/// The five base relations between two non-empty sets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum Rel5 {
    /// Identical domains (`EQ`).
    Eq = 0,
    /// `a` is a proper subset of `b` (`PP`).
    Pp = 1,
    /// `a` is a proper superset of `b` (`PPi`).
    Ppi = 2,
    /// Partial overlap: intersect, neither contains the other (`PO`).
    Po = 3,
    /// Disjoint (`DR`).
    Dr = 4,
}

impl Rel5 {
    /// All five relations, in bit order.
    pub const ALL: [Rel5; 5] = [Rel5::Eq, Rel5::Pp, Rel5::Ppi, Rel5::Po, Rel5::Dr];

    /// The converse relation: `R(a,b)` holds iff `conv(R)(b,a)` holds.
    pub fn converse(self) -> Rel5 {
        match self {
            Rel5::Pp => Rel5::Ppi,
            Rel5::Ppi => Rel5::Pp,
            other => other,
        }
    }

    /// Bit within a [`Rel5Set`].
    #[inline]
    const fn bit(self) -> u8 {
        1 << (self as u8)
    }

    /// Short name (`EQ`, `PP`, `PPi`, `PO`, `DR`).
    pub fn tag(self) -> &'static str {
        match self {
            Rel5::Eq => "EQ",
            Rel5::Pp => "PP",
            Rel5::Ppi => "PPi",
            Rel5::Po => "PO",
            Rel5::Dr => "DR",
        }
    }
}

impl fmt::Display for Rel5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// RCC5 composition table: `COMPOSE[r][s]` is the set of relations possible
/// between `a` and `c` given `r(a,b)` and `s(b,c)`, assuming all domains
/// are non-empty. Rows/columns follow [`Rel5`]'s discriminant order
/// (EQ, PP, PPi, PO, DR).
const COMPOSE: [[u8; 5]; 5] = {
    const EQ: u8 = 1 << 0;
    const PP: u8 = 1 << 1;
    const PPI: u8 = 1 << 2;
    const PO: u8 = 1 << 3;
    const DR: u8 = 1 << 4;
    const ALL: u8 = EQ | PP | PPI | PO | DR;
    [
        // r = EQ
        [EQ, PP, PPI, PO, DR],
        // r = PP
        [PP, PP, ALL, DR | PO | PP, DR],
        // r = PPi
        [PPI, EQ | PP | PPI | PO, PPI, PO | PPI, DR | PO | PPI],
        // r = PO
        [PO, PO | PP, DR | PO | PPI, ALL, DR | PO | PPI],
        // r = DR
        [DR, DR | PO | PP, DR, DR | PO | PP, ALL],
    ]
};

/// A set of possible [`Rel5`] relations between a fixed ordered pair,
/// represented as a 5-bit mask. The constraint network refines these sets;
/// an empty set signals a contradiction.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rel5Set(u8);

impl Rel5Set {
    /// No relation possible — a contradiction.
    pub const EMPTY: Rel5Set = Rel5Set(0);
    /// All five relations possible — no information.
    pub const ALL: Rel5Set = Rel5Set(0b11111);

    /// Singleton set.
    pub const fn only(r: Rel5) -> Rel5Set {
        Rel5Set(r.bit())
    }

    /// From raw bits (masked to the low five).
    pub const fn from_bits(bits: u8) -> Rel5Set {
        Rel5Set(bits & 0b11111)
    }

    /// Raw bits.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Membership test.
    pub const fn contains(self, r: Rel5) -> bool {
        self.0 & r.bit() != 0
    }

    /// Set intersection (constraint conjunction).
    pub const fn intersect(self, other: Rel5Set) -> Rel5Set {
        Rel5Set(self.0 & other.0)
    }

    /// Set union (constraint disjunction).
    pub const fn union(self, other: Rel5Set) -> Rel5Set {
        Rel5Set(self.0 | other.0)
    }

    /// `true` when no relation remains possible.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` when every relation remains possible (vacuous constraint).
    pub const fn is_universal(self) -> bool {
        self.0 == 0b11111
    }

    /// The single remaining relation, if the set is a singleton.
    pub fn singleton(self) -> Option<Rel5> {
        if self.0.count_ones() == 1 {
            Rel5::ALL.into_iter().find(|r| self.contains(*r))
        } else {
            None
        }
    }

    /// Number of possible relations.
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// `true` when the set is empty (alias of [`Rel5Set::is_empty`] for
    /// clippy's `len`/`is_empty` pairing).
    pub const fn is_len_zero(self) -> bool {
        self.is_empty()
    }

    /// Converse of every member: the constraint seen from the swapped pair.
    pub fn converse(self) -> Rel5Set {
        let mut out = Rel5Set::EMPTY;
        for r in Rel5::ALL {
            if self.contains(r) {
                out = out.union(Rel5Set::only(r.converse()));
            }
        }
        out
    }

    /// Composition lifted to sets: all relations possible between `a` and
    /// `c` given the possible relations `self` between `(a,b)` and `other`
    /// between `(b,c)`.
    pub fn compose(self, other: Rel5Set) -> Rel5Set {
        let mut out = 0u8;
        for r in Rel5::ALL {
            if !self.contains(r) {
                continue;
            }
            for s in Rel5::ALL {
                if other.contains(s) {
                    out |= COMPOSE[r as usize][s as usize];
                }
            }
        }
        Rel5Set(out)
    }

    /// Iterate members.
    pub fn iter(self) -> impl Iterator<Item = Rel5> {
        Rel5::ALL.into_iter().filter(move |r| self.contains(*r))
    }
}

impl fmt::Debug for Rel5Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Rel5Set {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The user-facing assertion vocabulary of Screens 8 and 9.
///
/// `DisjointIntegrable` and `DisjointNonIntegrable` share the same domain
/// relation (`DR`); whether a derived superclass is generated is the DDA's
/// utility judgment, not a fact about the domains (paper §2, items 4–5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Assertion {
    /// Code 1: identical domains — merge into one `E_` object class.
    Equal,
    /// Code 2: `dom(a) ⊂ dom(b)` — `a` becomes a category of `b`.
    ContainedIn,
    /// Code 3: `dom(a) ⊃ dom(b)` — `b` becomes a category of `a`.
    Contains,
    /// Code 4: disjoint domains, integrate under a derived `D_` superclass.
    DisjointIntegrable,
    /// Code 5: overlapping domains — derived `D_` superclass with both as
    /// categories.
    MayBe,
    /// Code 0: disjoint domains, kept separate.
    DisjointNonIntegrable,
}

impl Assertion {
    /// Every assertion, in menu order (1, 2, 3, 4, 5, 0) as printed at the
    /// bottom of Screen 8.
    pub const MENU: [Assertion; 6] = [
        Assertion::Equal,
        Assertion::ContainedIn,
        Assertion::Contains,
        Assertion::DisjointIntegrable,
        Assertion::MayBe,
        Assertion::DisjointNonIntegrable,
    ];

    /// The numeric code the DDA types on Screen 8.
    pub fn code(self) -> u8 {
        match self {
            Assertion::Equal => 1,
            Assertion::ContainedIn => 2,
            Assertion::Contains => 3,
            Assertion::DisjointIntegrable => 4,
            Assertion::MayBe => 5,
            Assertion::DisjointNonIntegrable => 0,
        }
    }

    /// Parse a Screen 8 code.
    pub fn from_code(code: u8) -> Option<Assertion> {
        Assertion::MENU.into_iter().find(|a| a.code() == code)
    }

    /// The domain relation the assertion pins down.
    pub fn rel(self) -> Rel5 {
        match self {
            Assertion::Equal => Rel5::Eq,
            Assertion::ContainedIn => Rel5::Pp,
            Assertion::Contains => Rel5::Ppi,
            Assertion::MayBe => Rel5::Po,
            Assertion::DisjointIntegrable | Assertion::DisjointNonIntegrable => Rel5::Dr,
        }
    }

    /// Whether the pair participates in integration (everything but
    /// disjoint-non-integrable).
    pub fn integrable(self) -> bool {
        !matches!(self, Assertion::DisjointNonIntegrable)
    }

    /// The assertion as seen from the swapped pair.
    pub fn converse(self) -> Assertion {
        match self {
            Assertion::ContainedIn => Assertion::Contains,
            Assertion::Contains => Assertion::ContainedIn,
            other => other,
        }
    }

    /// Menu wording as printed on Screen 8.
    pub fn menu_label(self) -> &'static str {
        match self {
            Assertion::Equal => "OB_CL_name_1 'equals' OB_CL_name_2",
            Assertion::ContainedIn => "OB_CL_name_1 'contained in' OB_CL_name_2",
            Assertion::Contains => "OB_CL_name_1 'contains' OB_CL_name_2",
            Assertion::DisjointIntegrable => {
                "OB_CL_name_1 and OB_CL_name_2 are disjoint but integratable"
            }
            Assertion::MayBe => "OB_CL_name_1 and OB_CL_name_2 may be integratable",
            Assertion::DisjointNonIntegrable => {
                "OB_CL_name_1 and OB_CL_name_2 are disjoint & non-integratable"
            }
        }
    }
}

impl fmt::Display for Assertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Assertion::Equal => "equals",
            Assertion::ContainedIn => "contained in",
            Assertion::Contains => "contains",
            Assertion::DisjointIntegrable => "disjoint integrable",
            Assertion::MayBe => "may be integrable",
            Assertion::DisjointNonIntegrable => "disjoint non-integrable",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for a in Assertion::MENU {
            assert_eq!(Assertion::from_code(a.code()), Some(a));
        }
        assert_eq!(Assertion::from_code(9), None);
    }

    #[test]
    fn converse_is_involution() {
        for a in Assertion::MENU {
            assert_eq!(a.converse().converse(), a);
        }
        for r in Rel5::ALL {
            assert_eq!(r.converse().converse(), r);
        }
    }

    #[test]
    fn paper_transitivity_example() {
        // "if a ⊆ b and b ⊆ c then a ⊆ c"
        let pp = Rel5Set::only(Rel5::Pp);
        assert_eq!(pp.compose(pp), pp);
    }

    #[test]
    fn eq_is_identity_of_composition() {
        let eq = Rel5Set::only(Rel5::Eq);
        for r in Rel5::ALL {
            let s = Rel5Set::only(r);
            assert_eq!(eq.compose(s), s, "EQ ∘ {r}");
            assert_eq!(s.compose(eq), s, "{r} ∘ EQ");
        }
    }

    #[test]
    fn subset_of_disjoint_is_disjoint() {
        // a ⊂ b, b ∩ c = ∅  ⇒  a ∩ c = ∅ (the Screen 9 derivation engine
        // rests on this row of the table).
        let out = Rel5Set::only(Rel5::Pp).compose(Rel5Set::only(Rel5::Dr));
        assert_eq!(out, Rel5Set::only(Rel5::Dr));
        // a ∩ b = ∅, b ⊃ c ⇒ a ∩ c = ∅
        let out = Rel5Set::only(Rel5::Dr).compose(Rel5Set::only(Rel5::Ppi));
        assert_eq!(out, Rel5Set::only(Rel5::Dr));
    }

    #[test]
    fn composition_table_respects_converse_symmetry() {
        // conv(r ∘ s) == conv(s) ∘ conv(r) — a structural identity every
        // relation algebra satisfies; catches table typos.
        for r in Rel5::ALL {
            for s in Rel5::ALL {
                let lhs = Rel5Set::only(r).compose(Rel5Set::only(s)).converse();
                let rhs = Rel5Set::only(s.converse()).compose(Rel5Set::only(r.converse()));
                assert_eq!(lhs, rhs, "converse symmetry at ({r},{s})");
            }
        }
    }

    #[test]
    fn composition_table_contains_witnessed_relation() {
        // Identity check: r(a,b) ∧ s(b,c) ⇒ the actual relation between a
        // and c is in COMPOSE[r][s]. Exhaustively verify with small
        // concrete sets over a 4-element universe.
        fn relate(a: u8, b: u8) -> Rel5 {
            if a == b {
                Rel5::Eq
            } else if a & b == 0 {
                Rel5::Dr
            } else if a & b == a {
                Rel5::Pp
            } else if a & b == b {
                Rel5::Ppi
            } else {
                Rel5::Po
            }
        }
        // All non-empty subsets of {0,1,2,3} as bitmasks 1..=15.
        for a in 1u8..=15 {
            for b in 1u8..=15 {
                for c in 1u8..=15 {
                    let r = relate(a, b);
                    let s = relate(b, c);
                    let t = relate(a, c);
                    let possible =
                        Rel5Set::only(r).compose(Rel5Set::only(s));
                    assert!(
                        possible.contains(t),
                        "witness ({a:04b},{b:04b},{c:04b}): {r} ∘ {s} must allow {t}, got {possible}"
                    );
                }
            }
        }
    }

    #[test]
    fn composition_table_is_tight_for_witnessable_entries() {
        // Every relation the table allows should be witnessable by some
        // concrete triple (over a large enough universe). Use subsets of
        // an 8-element universe.
        fn relate(a: u16, b: u16) -> Rel5 {
            if a == b {
                Rel5::Eq
            } else if a & b == 0 {
                Rel5::Dr
            } else if a & b == a {
                Rel5::Pp
            } else if a & b == b {
                Rel5::Ppi
            } else {
                Rel5::Po
            }
        }
        let mut witnessed = [[0u8; 5]; 5];
        for a in 1u16..256 {
            for b in 1u16..256 {
                let r = relate(a, b);
                for c in 1u16..256 {
                    let s = relate(b, c);
                    let t = relate(a, c);
                    witnessed[r as usize][s as usize] |= Rel5Set::only(t).bits();
                }
            }
        }
        for r in Rel5::ALL {
            for s in Rel5::ALL {
                assert_eq!(
                    COMPOSE[r as usize][s as usize],
                    witnessed[r as usize][s as usize],
                    "table entry ({r},{s}) is not tight"
                );
            }
        }
    }

    #[test]
    fn set_operations() {
        let s = Rel5Set::only(Rel5::Pp).union(Rel5Set::only(Rel5::Dr));
        assert_eq!(s.len(), 2);
        assert!(s.contains(Rel5::Pp));
        assert!(!s.contains(Rel5::Eq));
        assert_eq!(s.intersect(Rel5Set::only(Rel5::Dr)), Rel5Set::only(Rel5::Dr));
        assert!(s.singleton().is_none());
        assert_eq!(Rel5Set::only(Rel5::Po).singleton(), Some(Rel5::Po));
        assert!(Rel5Set::EMPTY.is_empty());
        assert!(Rel5Set::ALL.is_universal());
        assert_eq!(format!("{s}"), "{PP,DR}");
        assert_eq!(s.converse(), Rel5Set::only(Rel5::Ppi).union(Rel5Set::only(Rel5::Dr)));
    }

    #[test]
    fn assertion_rel_mapping() {
        assert_eq!(Assertion::Equal.rel(), Rel5::Eq);
        assert_eq!(Assertion::ContainedIn.rel(), Rel5::Pp);
        assert_eq!(Assertion::Contains.rel(), Rel5::Ppi);
        assert_eq!(Assertion::MayBe.rel(), Rel5::Po);
        assert_eq!(Assertion::DisjointIntegrable.rel(), Rel5::Dr);
        assert_eq!(Assertion::DisjointNonIntegrable.rel(), Rel5::Dr);
        assert!(Assertion::DisjointIntegrable.integrable());
        assert!(!Assertion::DisjointNonIntegrable.integrable());
    }
}
