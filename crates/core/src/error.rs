//! Error type of the integration engine.

use std::fmt;

use crate::catalog::{GObj, GRel};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised by the integration engine.
#[derive(Clone, PartialEq, Debug)]
pub enum CoreError {
    /// A schema with the same name is already registered.
    DuplicateSchema(String),
    /// A name could not be resolved against the catalog.
    UnknownName(String),
    /// An id references nothing in the catalog.
    UnknownElement(String),
    /// Attribute equivalence was declared between attributes with
    /// incompatible domains (the simplified [Larson et al 87] test).
    IncompatibleDomains {
        /// Display form of the first attribute.
        a: String,
        /// Display form of the second attribute.
        b: String,
    },
    /// Both attributes belong to the same schema; the paper only relates
    /// attributes *across* the two schemas being integrated.
    SameSchemaEquivalence(String),
    /// An assertion was attempted between two objects of the same schema
    /// (intra-schema relationships come from the schema structure itself).
    SameSchemaAssertion(String),
    /// A new assertion contradicts existing or derived assertions; the
    /// report carries everything the Assertion Conflict Resolution Screen
    /// shows.
    Conflict(Box<crate::closure::ConflictReport>),
    /// Two relationship sets asserted equal have legs that cannot be
    /// paired up through the integrated object lattice.
    RelLegMismatch {
        /// First relationship set.
        a: GRel,
        /// Second relationship set.
        b: GRel,
    },
    /// Integration hit an object pair whose derived relation contradicts
    /// the requested merge (should not happen when assertions come through
    /// the engine; guards against hand-built inputs).
    InconsistentLattice(String),
    /// The integrated schema failed ECR validation; carries the display
    /// form of the underlying violation list.
    InvalidResult(String),
    /// The two objects are the same object.
    SelfAssertion(GObj),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicateSchema(n) => write!(f, "schema `{n}` already registered"),
            CoreError::UnknownName(n) => write!(f, "unknown name `{n}`"),
            CoreError::UnknownElement(what) => write!(f, "unknown element: {what}"),
            CoreError::IncompatibleDomains { a, b } => {
                write!(f, "attributes {a} and {b} have incompatible domains")
            }
            CoreError::SameSchemaEquivalence(what) => write!(
                f,
                "attribute equivalence must relate different schemas: {what}"
            ),
            CoreError::SameSchemaAssertion(what) => write!(
                f,
                "assertions relate object classes of different schemas: {what}"
            ),
            CoreError::Conflict(report) => write!(f, "assertion conflict: {report}"),
            CoreError::RelLegMismatch { a, b } => write!(
                f,
                "cannot pair participants of relationship sets {a} and {b}"
            ),
            CoreError::InconsistentLattice(msg) => write!(f, "inconsistent lattice: {msg}"),
            CoreError::InvalidResult(msg) => {
                write!(f, "integration produced an invalid schema: {msg}")
            }
            CoreError::SelfAssertion(o) => write!(f, "cannot assert {o} against itself"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<crate::closure::ConflictReport> for CoreError {
    fn from(r: crate::closure::ConflictReport) -> Self {
        CoreError::Conflict(Box::new(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_smoke() {
        assert!(CoreError::DuplicateSchema("sc1".into())
            .to_string()
            .contains("sc1"));
        assert!(CoreError::IncompatibleDomains {
            a: "sc1.S.x".into(),
            b: "sc2.T.y".into()
        }
        .to_string()
        .contains("incompatible"));
    }
}
