//! N-ary integration by folding binary integrations.
//!
//! The paper: "A user can define any number of schemas, but only two
//! schemas can be integrated at a time. A result of integration of two
//! schemas can be integrated with another schema; thus multiple schemas can
//! be integrated." This module automates the fold: integrate the first two
//! schemas, register the result as a new component schema, and keep
//! folding the remaining schemas in.
//!
//! The fold order matters for the quality of the result (how many derived
//! classes appear, how many questions the DDA is asked); the paper's
//! future-work section suggests a schema-level resemblance function "which
//! could be particularly useful in picking similar schemas for integration
//! in a binary approach" — implemented in `sit-matcher` and benchmarked in
//! `sit-bench` (`nary_order`).

use sit_ecr::SchemaId;

use crate::assertion::Assertion;
use crate::catalog::GObj;
use crate::error::Result;
use crate::integrate::{IntegratedSchema, IntegrationOptions};
use crate::session::Session;

/// A callback that supplies phase 2/3 answers whenever the fold is about
/// to integrate a new pair of schemas: given the session and the two
/// schema ids, declare the equivalences and assertions for the pair.
/// (The callback abstracts the DDA; `sit-datagen` provides oracles.)
pub type PairSetup<'a> = dyn FnMut(&mut Session, SchemaId, SchemaId) -> Result<()> + 'a;

/// Outcome of one fold step.
#[derive(Debug)]
pub struct FoldStep {
    /// The schema ids that were integrated.
    pub inputs: (SchemaId, SchemaId),
    /// Id the result was registered under.
    pub result: SchemaId,
    /// The integration result.
    pub integrated: IntegratedSchema,
}

/// Fold the given schemas left-to-right: `((s1 ⋈ s2) ⋈ s3) ⋈ ...`.
///
/// Before each binary step, `setup` is invoked so the caller can declare
/// equivalences and assertions between the accumulated schema and the next
/// component. Returns all intermediate steps; the last step holds the final
/// integrated schema.
pub fn fold_integrate(
    session: &mut Session,
    order: &[SchemaId],
    options: &IntegrationOptions,
    setup: &mut PairSetup<'_>,
) -> Result<Vec<FoldStep>> {
    assert!(order.len() >= 2, "n-ary integration needs at least two schemas");
    let mut steps = Vec::new();
    let mut acc = order[0];
    for (i, &next) in order.iter().enumerate().skip(1) {
        setup(session, acc, next)?;
        let mut step_options = options.clone();
        if step_options.schema_name.is_none() && order.len() > 2 {
            // Keep intermediate names unique and readable.
            step_options.schema_name = Some(format!(
                "{}+{}",
                session.catalog().schema(acc).name(),
                session.catalog().schema(next).name()
            ));
        }
        let integrated = session.integrate(acc, next, &step_options)?;
        let result = session.add_schema(integrated.schema.clone())?;
        // Carry pinned relations forward: every object of the new schema
        // relates to the remaining component schemas only through future
        // `setup` calls; nothing to copy automatically (provenance links
        // are kept in the step record instead).
        steps.push(FoldStep {
            inputs: (acc, next),
            result,
            integrated,
        });
        acc = result;
        let _ = i;
    }
    Ok(steps)
}

/// Total number of derived (`D_`) object classes across fold steps — the
/// "derived-class bloat" measure the order benchmark reports.
pub fn derived_class_count(steps: &[FoldStep]) -> usize {
    steps
        .iter()
        .map(|s| s.integrated.derived_objects().count())
        .sum()
}

/// Count the cross-schema object pairs a DDA would have to review for the
/// given fold order under the all-pairs strategy (no ranking): the measure
/// behind the question-count benchmark.
pub fn all_pairs_questions(session: &Session, order: &[SchemaId]) -> usize {
    let mut total = 0usize;
    let mut acc_objs = session.catalog().schema(order[0]).object_count();
    for &next in &order[1..] {
        let n = session.catalog().schema(next).object_count();
        total += acc_objs * n;
        // After integration the accumulated schema has roughly the union
        // of object classes (merges reduce, derived classes add); use the
        // union as the estimate.
        acc_objs += n;
    }
    total
}

/// Helper mirroring the common test need: assert `a θ b` by names.
pub fn assert_named(
    session: &mut Session,
    sa: &str,
    oa: &str,
    sb: &str,
    ob: &str,
    assertion: Assertion,
) -> Result<()> {
    let a: GObj = session.object_named(sa, oa)?;
    let b: GObj = session.object_named(sb, ob)?;
    session.assert_objects(a, b, assertion)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sit_ecr::ddl;

    fn schema(src: &str) -> sit_ecr::Schema {
        ddl::parse(src).unwrap()
    }

    #[test]
    fn three_way_fold() {
        let mut s = Session::new();
        let a = s
            .add_schema(schema("schema a { entity Person { SSN: int key; } }"))
            .unwrap();
        let b = s
            .add_schema(schema("schema b { entity Employee { SSN: int key; } }"))
            .unwrap();
        let c = s
            .add_schema(schema("schema c { entity Manager { SSN: int key; } }"))
            .unwrap();
        let mut setup = |sess: &mut Session, x: SchemaId, y: SchemaId| -> Result<()> {
            // Equate the SSN attributes, then contain: later schema is a
            // subset of the accumulated one.
            let cx = sess.catalog().schema(x).name().to_owned();
            let cy = sess.catalog().schema(y).name().to_owned();
            let (ox, _) = sess.catalog().schema(x).objects().next().unwrap();
            let (oy, _) = sess.catalog().schema(y).objects().next().unwrap();
            let ox_name = sess.catalog().schema(x).object(ox).name.clone();
            let oy_name = sess.catalog().schema(y).object(oy).name.clone();
            // The accumulated schema's key may have been renamed to D_SSN
            // by a previous merge; resolve the actual attribute name.
            let ax_name = sess.catalog().schema(x).object(ox).attributes[0].name.clone();
            let ay_name = sess.catalog().schema(y).object(oy).attributes[0].name.clone();
            sess.declare_equivalent_named(&cx, &ox_name, &ax_name, &cy, &oy_name, &ay_name)?;
            assert_named(sess, &cx, &ox_name, &cy, &oy_name, Assertion::Contains)
        };
        let steps = fold_integrate(&mut s, &[a, b, c], &Default::default(), &mut setup).unwrap();
        assert_eq!(steps.len(), 2);
        let final_schema = &steps.last().unwrap().integrated.schema;
        // Person ⊇ Employee ⊇ Manager: three classes, two category edges.
        assert_eq!(final_schema.object_count(), 3);
        assert_eq!(final_schema.categories().count(), 2);
        assert_eq!(derived_class_count(&steps), 0);
        assert!(all_pairs_questions(&s, &[a, b, c]) >= 2);
    }
}
