//! Attribute equivalence classes — the ACS (Attribute Class Similarity)
//! bookkeeping of phase 2.
//!
//! The paper (§3.3): the DDA walks pairs of object classes and declares
//! attributes equivalent; "An equivalence class consists of all the
//! attributes defined to be equivalent by the DDA", each attribute carries
//! an `Eq_class #`, and on merging "the tool changes the value of
//! `Eq_Class #` of one to that of the other". The class numbering here
//! reproduces Screen 7 exactly: attributes are numbered sequentially in
//! registration order (all of schema 1's attributes, then schema 2's, ...),
//! and a class displays the *smallest* member number.
//!
//! Equivalence is checked against the simplified [Larson et al 87] theory
//! the paper adopts: two attributes may only be declared equivalent when
//! their domains are compatible. Declarations must relate attributes of
//! *different* schemas (cross-schema correspondence is what integration
//! consumes); Screen 7 also supports removing an attribute from its class,
//! implemented here as [`EquivalenceRegistry::remove_from_class`].

use std::collections::HashMap;

use crate::catalog::{Catalog, GAttr};
use crate::error::{CoreError, Result};

/// The `Eq_class #` shown on Screen 7 (1-based).
pub type ClassNo = u32;

/// Registry of attribute equivalence classes over every attribute of every
/// registered schema.
#[derive(Clone, Debug, Default)]
pub struct EquivalenceRegistry {
    /// Registration order; index+1 is the attribute's original number.
    attrs: Vec<GAttr>,
    /// Attribute → its index in `attrs`.
    index: HashMap<GAttr, usize>,
    /// Attribute index → current class representative (an attribute index).
    class_of: Vec<usize>,
    /// Class representative → members (attribute indexes).
    members: HashMap<usize, Vec<usize>>,
}

impl EquivalenceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register every attribute of a schema (in the catalog's canonical
    /// order), each in its own singleton class. Called once per schema as
    /// it is added to the session.
    pub fn register_schema(&mut self, catalog: &Catalog, schema: sit_ecr::SchemaId) {
        for a in catalog.attrs_of(schema) {
            self.register(a);
        }
    }

    /// Register a single attribute (idempotent).
    pub fn register(&mut self, a: GAttr) -> ClassNo {
        if let Some(&i) = self.index.get(&a) {
            return self.class_no_of_index(i);
        }
        let i = self.attrs.len();
        self.attrs.push(a);
        self.index.insert(a, i);
        self.class_of.push(i);
        self.members.insert(i, vec![i]);
        (i + 1) as ClassNo
    }

    /// Number of registered attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Declare two attributes equivalent (merging their classes). Enforces
    /// the cross-schema rule and domain compatibility; both endpoints must
    /// already be registered.
    pub fn declare_equivalent(&mut self, catalog: &Catalog, a: GAttr, b: GAttr) -> Result<()> {
        let _span = sit_obs::trace::span("acs.declare_equivalent");
        if a.schema == b.schema {
            return Err(CoreError::SameSchemaEquivalence(format!(
                "{} ~ {}",
                catalog.attr_display(a),
                catalog.attr_display(b)
            )));
        }
        let da = catalog.attr(a)?;
        let db = catalog.attr(b)?;
        if !da.domain.compatible(&db.domain) {
            return Err(CoreError::IncompatibleDomains {
                a: catalog.attr_display(a),
                b: catalog.attr_display(b),
            });
        }
        let ia = self.require(a, catalog)?;
        let ib = self.require(b, catalog)?;
        self.merge(ia, ib);
        Ok(())
    }

    /// Move an attribute out of its class back into a fresh singleton
    /// class (Screen 7's `(D)elete from equiv. class`).
    pub fn remove_from_class(&mut self, a: GAttr) -> bool {
        let Some(&i) = self.index.get(&a) else {
            return false;
        };
        let rep = self.class_of[i];
        let members = self.members.get_mut(&rep).expect("class exists");
        if members.len() == 1 {
            return false; // already a singleton
        }
        members.retain(|&m| m != i);
        // If the removed member was the representative, re-root the class.
        if rep == i {
            let rest = self.members.remove(&rep).expect("class exists");
            let new_rep = *rest.iter().min().expect("non-empty");
            for &m in &rest {
                self.class_of[m] = new_rep;
            }
            self.members.insert(new_rep, rest);
        }
        self.class_of[i] = i;
        self.members.insert(i, vec![i]);
        true
    }

    /// Are the two attributes in the same class?
    pub fn equivalent(&self, a: GAttr, b: GAttr) -> bool {
        match (self.index.get(&a), self.index.get(&b)) {
            (Some(&ia), Some(&ib)) => self.class_of[ia] == self.class_of[ib],
            _ => false,
        }
    }

    /// The displayed `Eq_class #` of an attribute — the smallest member
    /// number of its class (1-based), matching Screen 7's behaviour.
    pub fn class_no(&self, a: GAttr) -> Option<ClassNo> {
        self.index.get(&a).map(|&i| self.class_no_of_index(i))
    }

    /// All members of the attribute's class, in registration order.
    pub fn class_members(&self, a: GAttr) -> Vec<GAttr> {
        let Some(&i) = self.index.get(&a) else {
            return Vec::new();
        };
        let rep = self.class_of[i];
        let mut idxs = self.members.get(&rep).cloned().unwrap_or_default();
        idxs.sort_unstable();
        idxs.into_iter().map(|m| self.attrs[m]).collect()
    }

    /// Every non-singleton class, each as a sorted member list; classes
    /// ordered by their displayed number.
    pub fn classes(&self) -> Vec<(ClassNo, Vec<GAttr>)> {
        let mut out: Vec<(ClassNo, Vec<GAttr>)> = self
            .members
            .iter()
            .filter(|(_, ms)| ms.len() > 1)
            .map(|(_, ms)| {
                let mut idxs = ms.clone();
                idxs.sort_unstable();
                let no = (idxs[0] + 1) as ClassNo;
                (no, idxs.into_iter().map(|m| self.attrs[m]).collect())
            })
            .collect();
        out.sort_by_key(|(no, _)| *no);
        out
    }

    /// All registered attributes in registration order.
    pub fn attrs(&self) -> &[GAttr] {
        &self.attrs
    }

    fn require(&mut self, a: GAttr, catalog: &Catalog) -> Result<usize> {
        self.index
            .get(&a)
            .copied()
            .ok_or_else(|| CoreError::UnknownElement(catalog.attr_display(a)))
    }

    fn merge(&mut self, ia: usize, ib: usize) {
        let ra = self.class_of[ia];
        let rb = self.class_of[ib];
        if ra == rb {
            return;
        }
        // Merge into the class with the smaller representative so the
        // displayed number is stable ("changes the value of Eq_Class # of
        // one to that of the other" — the kept number is the earlier one).
        let (keep, drop) = if self.class_no_of_index(ra) <= self.class_no_of_index(rb) {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let moved = self.members.remove(&drop).expect("class exists");
        for &m in &moved {
            self.class_of[m] = keep;
        }
        self.members
            .get_mut(&keep)
            .expect("class exists")
            .extend(moved);
    }

    fn class_no_of_index(&self, i: usize) -> ClassNo {
        let rep = self.class_of[i];
        let min = self
            .members
            .get(&rep)
            .and_then(|ms| ms.iter().min())
            .copied()
            .unwrap_or(rep);
        (min + 1) as ClassNo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sit_ecr::fixtures;

    fn setup() -> (Catalog, EquivalenceRegistry) {
        let mut c = Catalog::new();
        let s1 = c.add(fixtures::sc1()).unwrap();
        let s2 = c.add(fixtures::sc2()).unwrap();
        let mut r = EquivalenceRegistry::new();
        r.register_schema(&c, s1);
        r.register_schema(&c, s2);
        (c, r)
    }

    fn at(c: &Catalog, s: &str, o: &str, a: &str) -> GAttr {
        c.attr_named(s, o, a).unwrap()
    }

    #[test]
    fn screen7_numbering_is_reproduced() {
        // sc1 attrs: Student.Name(1), Student.GPA(2), Department.Dname(3),
        // Majors.Since(4); sc2: Grad_student.Name(5), GPA(6),
        // Support_type(7), ...
        let (c, mut r) = setup();
        assert_eq!(r.class_no(at(&c, "sc1", "Student", "Name")), Some(1));
        assert_eq!(r.class_no(at(&c, "sc1", "Student", "GPA")), Some(2));
        assert_eq!(r.class_no(at(&c, "sc2", "Grad_student", "GPA")), Some(6));
        assert_eq!(
            r.class_no(at(&c, "sc2", "Grad_student", "Support_type")),
            Some(7)
        );
        // Declaring sc1.Student.Name ≡ sc2.Grad_student.Name renumbers the
        // latter to 1, exactly as Screen 7 shows.
        r.declare_equivalent(
            &c,
            at(&c, "sc1", "Student", "Name"),
            at(&c, "sc2", "Grad_student", "Name"),
        )
        .unwrap();
        assert_eq!(r.class_no(at(&c, "sc2", "Grad_student", "Name")), Some(1));
        assert_eq!(r.class_no(at(&c, "sc1", "Student", "Name")), Some(1));
    }

    #[test]
    fn section33_three_member_class() {
        // "an equivalence class consisting of sc1.Student.Name,
        //  sc2.Faculty.Name and sc2.Grad_student.Name"
        let (c, mut r) = setup();
        let s_name = at(&c, "sc1", "Student", "Name");
        let g_name = at(&c, "sc2", "Grad_student", "Name");
        let f_name = at(&c, "sc2", "Faculty", "Name");
        r.declare_equivalent(&c, s_name, g_name).unwrap();
        r.declare_equivalent(&c, s_name, f_name).unwrap();
        assert!(r.equivalent(g_name, f_name), "transitivity through merge");
        let members = r.class_members(g_name);
        assert_eq!(members.len(), 3);
        let classes = r.classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].0, 1);
    }

    #[test]
    fn same_schema_declaration_rejected() {
        let (c, mut r) = setup();
        let err = r
            .declare_equivalent(
                &c,
                at(&c, "sc2", "Grad_student", "Name"),
                at(&c, "sc2", "Faculty", "Name"),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::SameSchemaEquivalence(_)));
    }

    #[test]
    fn incompatible_domains_rejected() {
        let (c, mut r) = setup();
        // Student.Name (char) vs Grad_student.GPA (real).
        let err = r
            .declare_equivalent(
                &c,
                at(&c, "sc1", "Student", "Name"),
                at(&c, "sc2", "Grad_student", "GPA"),
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::IncompatibleDomains { .. }));
    }

    #[test]
    fn remove_from_class_restores_singleton() {
        let (c, mut r) = setup();
        let s_name = at(&c, "sc1", "Student", "Name");
        let g_name = at(&c, "sc2", "Grad_student", "Name");
        let f_name = at(&c, "sc2", "Faculty", "Name");
        r.declare_equivalent(&c, s_name, g_name).unwrap();
        r.declare_equivalent(&c, s_name, f_name).unwrap();
        assert!(r.remove_from_class(g_name));
        assert!(!r.equivalent(s_name, g_name));
        assert!(r.equivalent(s_name, f_name), "rest of the class survives");
        // Removed attribute regains its original number.
        assert_eq!(r.class_no(g_name), Some(5));
        assert!(!r.remove_from_class(g_name), "already a singleton");
    }

    #[test]
    fn removing_the_representative_reroots_the_class() {
        let (c, mut r) = setup();
        let s_name = at(&c, "sc1", "Student", "Name"); // number 1 = representative
        let g_name = at(&c, "sc2", "Grad_student", "Name");
        let f_name = at(&c, "sc2", "Faculty", "Name");
        r.declare_equivalent(&c, s_name, g_name).unwrap();
        r.declare_equivalent(&c, s_name, f_name).unwrap();
        assert!(r.remove_from_class(s_name));
        assert_eq!(r.class_no(s_name), Some(1));
        assert!(r.equivalent(g_name, f_name));
        // The surviving class now displays Grad_student.Name's number.
        assert_eq!(r.class_no(g_name), Some(5));
        assert_eq!(r.class_no(f_name), Some(5));
    }

    #[test]
    fn relationship_attributes_participate() {
        let (c, mut r) = setup();
        let since1 = at(&c, "sc1", "Majors", "Since");
        let since2 = at(&c, "sc2", "Majors", "Since");
        r.declare_equivalent(&c, since1, since2).unwrap();
        assert!(r.equivalent(since1, since2));
    }

    #[test]
    fn register_is_idempotent() {
        let (c, mut r) = setup();
        let n = r.len();
        let a = at(&c, "sc1", "Student", "Name");
        assert_eq!(r.register(a), 1);
        assert_eq!(r.len(), n);
    }

    #[test]
    fn merge_is_stable_under_declaration_order() {
        let (c, mut r1) = setup();
        let (_, mut r2) = setup();
        let s_name = at(&c, "sc1", "Student", "Name");
        let g_name = at(&c, "sc2", "Grad_student", "Name");
        let f_name = at(&c, "sc2", "Faculty", "Name");
        r1.declare_equivalent(&c, s_name, g_name).unwrap();
        r1.declare_equivalent(&c, s_name, f_name).unwrap();
        r2.declare_equivalent(&c, f_name, s_name).unwrap();
        r2.declare_equivalent(&c, g_name, s_name).unwrap();
        for a in [s_name, g_name, f_name] {
            assert_eq!(r1.class_no(a), r2.class_no(a));
            assert_eq!(r1.class_no(a), Some(1));
        }
    }
}
