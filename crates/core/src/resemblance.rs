//! The OCS matrix, the resemblance (attribute-ratio) function, and the
//! ranked candidate list of Screen 8.
//!
//! From the paper (§3.3–§3.4): "Upon exiting this phase, the tool derives an
//! Object Class Similarity (OCS) matrix from the ACS matrix, where each
//! element of the matrix specifies the number of equivalent attributes
//! between two objects. ... The first \[screen\] is the Assertion Collection
//! For Object Pairs, which presents ordered object pairs and an attribute
//! ratio for each pair that specifies
//! `(# of equivalent attributes) / (# of equivalent attributes + # of
//! attributes in the smaller object class)`. Thus a value of 0.5 ...
//! specifies that every attribute in one object class has an equivalent
//! attribute in the other object class."

use sit_ecr::{AttrOwner, SchemaId};

use crate::catalog::{Catalog, GAttr, GObj, GRel};
use crate::equivalence::EquivalenceRegistry;

/// A candidate pair with its resemblance, as one row of Screen 8.
#[derive(Clone, Debug, PartialEq)]
pub struct CandidatePair<N> {
    /// Object (or relationship set) from the first schema.
    pub left: N,
    /// Object (or relationship set) from the second schema.
    pub right: N,
    /// Number of equivalent attributes (the OCS entry).
    pub equivalent: usize,
    /// The paper's attribute ratio.
    pub ratio: f64,
}

/// Number of equivalent attributes between two attribute owners: the count
/// of equivalence classes with at least one member in each owner.
fn equivalent_count(
    equiv: &EquivalenceRegistry,
    left: impl Iterator<Item = GAttr>,
    right_matches: impl Fn(GAttr) -> bool,
) -> usize {
    // For every attribute of the left owner, check whether its class has a
    // member in the right owner; count distinct classes. `counted_classes`
    // stays sorted so the dedup check is a binary search instead of a
    // linear scan per attribute.
    let mut counted_classes = Vec::new();
    let mut count = 0;
    for a in left {
        let Some(no) = equiv.class_no(a) else {
            continue;
        };
        let Err(insert_at) = counted_classes.binary_search(&no) else {
            continue;
        };
        if equiv.class_members(a).into_iter().any(&right_matches) {
            counted_classes.insert(insert_at, no);
            count += 1;
        }
    }
    count
}

/// OCS entry for a pair of object classes.
pub fn ocs_entry(
    catalog: &Catalog,
    equiv: &EquivalenceRegistry,
    a: GObj,
    b: GObj,
) -> usize {
    let sa = catalog.schema(a.schema);
    let left = sa
        .object(a.object)
        .attr_ids()
        .map(|aid| GAttr::object(a.schema, a.object, aid));
    equivalent_count(equiv, left, |m| {
        m.schema == b.schema && m.owner == AttrOwner::Object(b.object)
    })
}

/// OCS entry for a pair of relationship sets.
pub fn ocs_rel_entry(
    catalog: &Catalog,
    equiv: &EquivalenceRegistry,
    a: GRel,
    b: GRel,
) -> usize {
    let sa = catalog.schema(a.schema);
    let left = (0..sa.relationship(a.rel).attr_count() as u32)
        .map(|i| GAttr::rel(a.schema, a.rel, sit_ecr::AttrId::new(i)));
    equivalent_count(equiv, left, |m| {
        m.schema == b.schema && m.owner == AttrOwner::Rel(b.rel)
    })
}

/// The full OCS matrix between two schemas' object classes:
/// `matrix[i][j]` = number of equivalent attributes between object `i` of
/// `sa` and object `j` of `sb`.
pub fn ocs_matrix(
    catalog: &Catalog,
    equiv: &EquivalenceRegistry,
    sa: SchemaId,
    sb: SchemaId,
) -> Vec<Vec<usize>> {
    let _span = sit_obs::trace::span("ocs.matrix");
    let na = catalog.schema(sa).object_count();
    let nb = catalog.schema(sb).object_count();
    let mut m = vec![vec![0usize; nb]; na];
    for (i, a) in catalog.objects_of(sa).enumerate() {
        for (j, b) in catalog.objects_of(sb).enumerate() {
            m[i][j] = ocs_entry(catalog, equiv, a, b);
        }
    }
    m
}

/// Sparse OCS derivation: instead of scanning every object pair and
/// every attribute (the dense `ocs_matrix`), walk the non-singleton
/// equivalence classes once and credit each cross-schema owner pair —
/// `O(Σ |class|²)` instead of `O(|A|·|B|·attrs)`. Returns only the
/// non-zero entries. The `ocs` benchmark compares both derivations (the
/// ⚗ ablation of DESIGN.md §6.1); they agree by construction, which
/// `tests` verify.
pub fn ocs_sparse(
    catalog: &Catalog,
    equiv: &EquivalenceRegistry,
    sa: SchemaId,
    sb: SchemaId,
) -> std::collections::HashMap<(sit_ecr::ObjectId, sit_ecr::ObjectId), usize> {
    let _span = sit_obs::trace::span("ocs.sparse");
    let mut out = std::collections::HashMap::new();
    for (_, members) in equiv.classes() {
        // Distinct object owners per side contributed by this class.
        let mut left: Vec<sit_ecr::ObjectId> = Vec::new();
        let mut right: Vec<sit_ecr::ObjectId> = Vec::new();
        for m in members {
            if let AttrOwner::Object(o) = m.owner {
                if m.schema == sa && !left.contains(&o) {
                    left.push(o);
                } else if m.schema == sb && !right.contains(&o) {
                    right.push(o);
                }
            }
        }
        for &a in &left {
            for &b in &right {
                *out.entry((a, b)).or_insert(0) += 1;
            }
        }
    }
    let _ = catalog;
    out
}

/// The paper's attribute ratio:
/// `equiv / (equiv + min(|attrs(a)|, |attrs(b)|))`, with `0.0` for
/// attribute-less pairs.
pub fn attribute_ratio(equivalent: usize, attrs_a: usize, attrs_b: usize) -> f64 {
    let smaller = attrs_a.min(attrs_b);
    let denom = equivalent + smaller;
    if denom == 0 {
        0.0
    } else {
        equivalent as f64 / denom as f64
    }
}

/// The ranked object-pair list of Screen 8: all cross-schema object pairs
/// with at least one equivalent attribute, ordered by descending attribute
/// ratio (ties broken by equivalent-attribute count, then definition
/// order — the heuristic "the higher the percentage of equivalent
/// attributes ... the more likely they are to be integrated with stronger
/// assertions").
pub fn ranked_pairs(
    catalog: &Catalog,
    equiv: &EquivalenceRegistry,
    sa: SchemaId,
    sb: SchemaId,
) -> Vec<CandidatePair<GObj>> {
    let _span = sit_obs::trace::span("ocs.ranked_pairs");
    let mut out = Vec::new();
    for a in catalog.objects_of(sa) {
        for b in catalog.objects_of(sb) {
            let e = ocs_entry(catalog, equiv, a, b);
            if e == 0 {
                continue;
            }
            let na = catalog.schema(sa).object(a.object).attr_count();
            let nb = catalog.schema(sb).object(b.object).attr_count();
            out.push(CandidatePair {
                left: a,
                right: b,
                equivalent: e,
                ratio: attribute_ratio(e, na, nb),
            });
        }
    }
    sort_candidates(&mut out, |p| {
        (catalog.obj_display(p.left), catalog.obj_display(p.right))
    });
    out
}

/// The ranked relationship-pair list (main-menu task 5's ordering).
pub fn ranked_rel_pairs(
    catalog: &Catalog,
    equiv: &EquivalenceRegistry,
    sa: SchemaId,
    sb: SchemaId,
) -> Vec<CandidatePair<GRel>> {
    let _span = sit_obs::trace::span("ocs.ranked_rel_pairs");
    let mut out = Vec::new();
    for a in catalog.rels_of(sa) {
        for b in catalog.rels_of(sb) {
            let e = ocs_rel_entry(catalog, equiv, a, b);
            if e == 0 {
                continue;
            }
            let na = catalog.schema(sa).relationship(a.rel).attr_count();
            let nb = catalog.schema(sb).relationship(b.rel).attr_count();
            out.push(CandidatePair {
                left: a,
                right: b,
                equivalent: e,
                ratio: attribute_ratio(e, na, nb),
            });
        }
    }
    sort_candidates(&mut out, |p| {
        (catalog.rel_display(p.left), catalog.rel_display(p.right))
    });
    out
}

/// Order: ratio descending, ties broken by the dotted display names —
/// which reproduces Screen 8's listing (`sc1.Department` before
/// `sc1.Student` at equal ratio).
fn sort_candidates<N, K: Ord>(out: &mut [CandidatePair<N>], key: impl Fn(&CandidatePair<N>) -> K) {
    out.sort_by(|l, r| {
        r.ratio
            .partial_cmp(&l.ratio)
            .expect("ratios are finite")
            .then(key(l).cmp(&key(r)))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sit_ecr::fixtures;

    /// Catalog + equivalences matching Screen 8's state: Name and GPA of
    /// Student/Grad_student equivalent, Dname≡Dname, Student.Name ≡
    /// Faculty.Name.
    fn setup() -> (Catalog, EquivalenceRegistry, SchemaId, SchemaId) {
        let mut c = Catalog::new();
        let s1 = c.add(fixtures::sc1()).unwrap();
        let s2 = c.add(fixtures::sc2()).unwrap();
        let mut r = EquivalenceRegistry::new();
        r.register_schema(&c, s1);
        r.register_schema(&c, s2);
        let at = |s: &str, o: &str, a: &str| c.attr_named(s, o, a).unwrap();
        r.declare_equivalent(&c, at("sc1", "Student", "Name"), at("sc2", "Grad_student", "Name"))
            .unwrap();
        r.declare_equivalent(&c, at("sc1", "Student", "GPA"), at("sc2", "Grad_student", "GPA"))
            .unwrap();
        r.declare_equivalent(&c, at("sc1", "Student", "Name"), at("sc2", "Faculty", "Name"))
            .unwrap();
        r.declare_equivalent(
            &c,
            at("sc1", "Department", "Dname"),
            at("sc2", "Department", "Dname"),
        )
        .unwrap();
        (c, r, s1, s2)
    }

    #[test]
    fn screen8_ratios_reproduced() {
        // Screen 8: sc1.Department/sc2.Department 0.5000,
        // sc1.Student/sc2.Grad_student 0.5000,
        // sc1.Student/sc2.Faculty 0.3333.
        let (c, r, s1, s2) = setup();
        let pairs = ranked_pairs(&c, &r, s1, s2);
        let row = |o1: &str, o2: &str| {
            pairs
                .iter()
                .find(|p| {
                    c.obj_display(p.left) == format!("sc1.{o1}")
                        && c.obj_display(p.right) == format!("sc2.{o2}")
                })
                .unwrap_or_else(|| panic!("missing row {o1}/{o2}"))
        };
        assert!((row("Department", "Department").ratio - 0.5).abs() < 1e-9);
        assert!((row("Student", "Grad_student").ratio - 0.5).abs() < 1e-9);
        assert!((row("Student", "Faculty").ratio - 1.0 / 3.0).abs() < 1e-9);
        // Ordering: the two 0.5 rows precede the 0.3333 row.
        assert!(pairs[0].ratio >= pairs[1].ratio);
        assert!(pairs[1].ratio > pairs[2].ratio);
        assert_eq!(pairs.len(), 3, "pairs with zero resemblance are omitted");
    }

    #[test]
    fn ocs_matrix_counts_equivalent_attributes() {
        let (c, r, s1, s2) = setup();
        let m = ocs_matrix(&c, &r, s1, s2);
        let o = |s: SchemaId, name: &str| {
            c.schema(s).object_by_name(name).unwrap().index()
        };
        assert_eq!(m[o(s1, "Student")][o(s2, "Grad_student")], 2);
        assert_eq!(m[o(s1, "Student")][o(s2, "Faculty")], 1);
        assert_eq!(m[o(s1, "Department")][o(s2, "Department")], 1);
        assert_eq!(m[o(s1, "Department")][o(s2, "Faculty")], 0);
    }

    #[test]
    fn sparse_and_dense_ocs_agree() {
        let (c, r, s1, s2) = setup();
        let dense = ocs_matrix(&c, &r, s1, s2);
        let sparse = ocs_sparse(&c, &r, s1, s2);
        for (i, row) in dense.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                let key = (
                    sit_ecr::ObjectId::new(i as u32),
                    sit_ecr::ObjectId::new(j as u32),
                );
                assert_eq!(sparse.get(&key).copied().unwrap_or(0), v, "({i},{j})");
            }
        }
        // Sparse holds exactly the non-zero entries.
        let nonzero = dense.iter().flatten().filter(|&&v| v > 0).count();
        assert_eq!(sparse.len(), nonzero);
    }

    #[test]
    fn attribute_ratio_edge_cases() {
        assert_eq!(attribute_ratio(0, 0, 0), 0.0);
        assert_eq!(attribute_ratio(0, 3, 5), 0.0);
        // Every attribute of the smaller class matched → 0.5.
        assert!((attribute_ratio(2, 2, 7) - 0.5).abs() < 1e-9);
        assert!((attribute_ratio(1, 2, 3) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn relationship_pairs_ranked() {
        let (c, mut r, s1, s2) = setup();
        let at = |s: &str, o: &str, a: &str| c.attr_named(s, o, a).unwrap();
        r.declare_equivalent(&c, at("sc1", "Majors", "Since"), at("sc2", "Majors", "Since"))
            .unwrap();
        let pairs = ranked_rel_pairs(&c, &r, s1, s2);
        assert_eq!(pairs.len(), 1);
        assert_eq!(c.rel_display(pairs[0].left), "sc1.Majors");
        assert_eq!(c.rel_display(pairs[0].right), "sc2.Majors");
        assert!((pairs[0].ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn multiple_attrs_in_one_class_counted_once() {
        // Put two attributes of the same left object into one class with a
        // right attribute; the OCS entry counts the class once.
        let mut c = Catalog::new();
        let s1 = c
            .add(
                sit_ecr::ddl::parse(
                    "schema a { entity X { p: char; q: char; } }",
                )
                .unwrap(),
            )
            .unwrap();
        let s2 = c
            .add(sit_ecr::ddl::parse("schema b { entity Y { r: char; } }").unwrap())
            .unwrap();
        let mut reg = EquivalenceRegistry::new();
        reg.register_schema(&c, s1);
        reg.register_schema(&c, s2);
        let at = |s: &str, o: &str, a: &str| c.attr_named(s, o, a).unwrap();
        reg.declare_equivalent(&c, at("a", "X", "p"), at("b", "Y", "r")).unwrap();
        // p and q cannot be declared equivalent (same schema); chain
        // through Y.r instead.
        reg.declare_equivalent(&c, at("a", "X", "q"), at("b", "Y", "r")).unwrap();
        let x = c.object_named("a", "X").unwrap();
        let y = c.object_named("b", "Y").unwrap();
        assert_eq!(ocs_entry(&c, &reg, x, y), 1, "one shared class");
        // Ratio from Y's side: 1/(1+1) = 0.5.
        let pairs = ranked_pairs(&c, &reg, s1, s2);
        assert!((pairs[0].ratio - 0.5).abs() < 1e-9);
    }
}
