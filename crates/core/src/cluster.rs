//! Clusters — the partition step that opens phase 4.
//!
//! Paper §3.5: "This involves creating clusters of entity sets. A cluster
//! is a group of related objects that are connected by any assertion except
//! disjoint [non-]integrable. The concept of cluster helps in partitioning
//! the schemas to more manageable subsets."
//!
//! A pair is *connecting* when its relation is pinned to `EQ`, `PP`, `PPi`
//! or `PO`, or pinned to `DR` with the DDA's disjoint-but-integrable mark.
//! Connections include intra-schema category edges, so a category travels
//! with its entity set into the cluster (which is how `sc4.Grad_student`
//! joins the `sc3.Instructor`/`sc4.Student` cluster behind Screen 9).

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use crate::assertion::Rel5;
use crate::closure::AssertionEngine;

/// Plain union–find with path compression and union by size.
#[derive(Clone, Debug)]
pub struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl Dsu {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets of `a` and `b`; returns `true` when they were
    /// separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// The cluster partition of a node universe.
#[derive(Clone, Debug)]
pub struct Clusters<N> {
    /// Each cluster as a sorted member list; clusters ordered by smallest
    /// member.
    pub groups: Vec<Vec<N>>,
    by_node: HashMap<N, usize>,
}

impl<N: Copy + Eq + Hash + Ord> Clusters<N> {
    /// Which cluster a node belongs to (index into `groups`).
    pub fn cluster_of(&self, n: N) -> Option<usize> {
        self.by_node.get(&n).copied()
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` when there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Clusters with more than one member (those that actually integrate).
    pub fn non_trivial(&self) -> impl Iterator<Item = &Vec<N>> {
        self.groups.iter().filter(|g| g.len() > 1)
    }
}

/// Partition `universe` into clusters using the engine's pinned relations.
pub fn clusters<N>(engine: &AssertionEngine<N>, universe: &[N]) -> Clusters<N>
where
    N: Copy + Eq + Ord + Hash + fmt::Debug,
{
    let index: HashMap<N, usize> = universe.iter().copied().zip(0..).collect();
    let mut dsu = Dsu::new(universe.len());
    for (i, &a) in universe.iter().enumerate() {
        for (j, &b) in universe.iter().enumerate().skip(i + 1) {
            if connects(engine, a, b) {
                dsu.union(i, j);
            }
        }
    }
    let mut groups_by_root: HashMap<usize, Vec<N>> = HashMap::new();
    for (&n, &i) in &index {
        groups_by_root.entry(dsu.find(i)).or_default().push(n);
    }
    let mut groups: Vec<Vec<N>> = groups_by_root.into_values().collect();
    for g in &mut groups {
        g.sort_unstable();
    }
    groups.sort_by(|a, b| a[0].cmp(&b[0]));
    let by_node = groups
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| g.iter().map(move |&n| (n, gi)))
        .collect();
    Clusters { groups, by_node }
}

/// Does the pinned relation between `a` and `b` connect them into one
/// cluster?
pub fn connects<N>(engine: &AssertionEngine<N>, a: N, b: N) -> bool
where
    N: Copy + Eq + Ord + Hash + fmt::Debug,
{
    match engine.known(a, b) {
        Some(Rel5::Eq | Rel5::Pp | Rel5::Ppi | Rel5::Po) => true,
        Some(Rel5::Dr) => engine.is_integrable_dr(a, b),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::Assertion;

    fn nm(n: u32) -> String {
        format!("n{n}")
    }

    #[test]
    fn dsu_basics() {
        let mut d = Dsu::new(5);
        assert!(d.union(0, 1));
        assert!(d.union(3, 4));
        assert!(!d.union(1, 0));
        assert!(d.same(0, 1));
        assert!(!d.same(1, 3));
        d.union(1, 3);
        assert!(d.same(0, 4));
    }

    #[test]
    fn university_clusters() {
        // 0=sc1.Student 1=sc1.Department 2=sc2.Grad 3=sc2.Faculty 4=sc2.Dept
        let mut e = AssertionEngine::<u32>::new();
        e.assert(1, 4, Assertion::Equal, nm).unwrap();
        e.assert(0, 2, Assertion::Contains, nm).unwrap();
        e.assert(0, 3, Assertion::DisjointIntegrable, nm).unwrap();
        let cl = clusters(&e, &[0, 1, 2, 3, 4]);
        assert_eq!(cl.len(), 2);
        assert_eq!(cl.groups[0], vec![0, 2, 3]);
        assert_eq!(cl.groups[1], vec![1, 4]);
        assert_eq!(cl.cluster_of(3), Some(0));
        assert_eq!(cl.non_trivial().count(), 2);
    }

    #[test]
    fn disjoint_non_integrable_does_not_connect() {
        let mut e = AssertionEngine::<u32>::new();
        e.assert(0, 1, Assertion::DisjointNonIntegrable, nm).unwrap();
        let cl = clusters(&e, &[0, 1]);
        assert_eq!(cl.len(), 2, "kept separate");
        assert!(!connects(&e, 0, 1));
    }

    #[test]
    fn derived_relations_connect_too() {
        // 0 ⊆ 1, 1 ⊆ 2: the derived 0 ⊆ 2 joins all three even without a
        // direct 0–2 assertion (and, trivially, the chain already does).
        let mut e = AssertionEngine::<u32>::new();
        e.assert(0, 1, Assertion::ContainedIn, nm).unwrap();
        e.assert(1, 2, Assertion::ContainedIn, nm).unwrap();
        assert!(connects(&e, 0, 2));
        let cl = clusters(&e, &[0, 1, 2, 9]);
        assert_eq!(cl.len(), 2);
        assert_eq!(cl.groups[1], vec![9], "untouched node is a singleton");
    }

    #[test]
    fn unrelated_nodes_are_singletons() {
        let e = AssertionEngine::<u32>::new();
        let cl = clusters(&e, &[7, 8, 9]);
        assert_eq!(cl.len(), 3);
        assert!(cl.non_trivial().next().is_none());
        assert!(cl.cluster_of(42).is_none());
    }
}
