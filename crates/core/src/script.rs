//! Session scripts — saving and replaying an integration session.
//!
//! The paper's future-work section wants "a common representation of the
//! database objects and the mappings between them ... kept in a data
//! dictionary available to all of the tools". This module is that
//! representation for sessions: a plain-text script holding the component
//! schemas (in the ECR DDL), the attribute equivalences, and the
//! assertions — everything needed to reconstruct a [`Session`]
//! deterministically. The CLI uses it for `--save`/`--load`; tests use it
//! to round-trip sessions.
//!
//! ## Format
//!
//! ```text
//! # sit session v1
//! schema sc1 { ... }          # any number of DDL schema blocks
//! schema sc2 { ... }
//! equiv sc1.Student.Name = sc2.Grad_student.Name;
//! assert sc1.Department equals sc2.Department;
//! assert sc1.Student contains sc2.Grad_student;
//! rel-assert sc1.Majors equals sc2.Majors;
//! ```
//!
//! Assertion keywords follow [`crate::assertion::Assertion`]'s display
//! names with spaces replaced by `-`: `equals`, `contained-in`,
//! `contains`, `disjoint-integrable`, `may-be-integrable`,
//! `disjoint-non-integrable`.

use std::fmt::Write as _;

use crate::assertion::Assertion;
use crate::closure::FactSource;
use crate::error::{CoreError, Result};
use crate::session::Session;

/// Serialize a session: schemas as DDL, then equivalences, then
/// assertions in the order they were recorded.
pub fn save(session: &Session) -> String {
    let mut out = String::from("# sit session v1\n");
    for (_, schema) in session.catalog().schemas() {
        out.push_str(&sit_ecr::ddl::print(schema));
    }
    for (_, members) in session.equivalences().classes() {
        // Emit the class as a spanning set of *cross-schema* edges
        // (same-schema declarations are rejected on load): members from
        // other schemas pair with the anchor; members sharing the
        // anchor's schema pair with the first foreign member. A class may
        // have *no* foreign member — Screen 7 deletes can strip a class
        // down to attributes of one schema — and such a class cannot be
        // expressed as loadable `equiv` directives at all, so it is
        // skipped rather than panicking (it carries no cross-schema
        // information to reconstruct).
        let anchor = members[0];
        let foreign = members.iter().copied().find(|m| m.schema != anchor.schema);
        for &m in &members[1..] {
            let partner = if m.schema != anchor.schema {
                anchor
            } else if let Some(foreign) = foreign {
                foreign
            } else {
                continue;
            };
            let _ = writeln!(
                out,
                "equiv {} = {};",
                session.catalog().attr_display(partner),
                session.catalog().attr_display(m)
            );
        }
    }
    for fact in session.object_engine().facts() {
        if !fact.active || fact.source != FactSource::User {
            continue;
        }
        if let Some(assertion) = fact.assertion {
            let _ = writeln!(
                out,
                "assert {} {} {};",
                session.catalog().obj_display(fact.a),
                keyword(assertion),
                session.catalog().obj_display(fact.b)
            );
        }
    }
    for fact in session.rel_engine().facts() {
        if !fact.active || fact.source != FactSource::User {
            continue;
        }
        if let Some(assertion) = fact.assertion {
            let _ = writeln!(
                out,
                "rel-assert {} {} {};",
                session.catalog().rel_display(fact.a),
                keyword(assertion),
                session.catalog().rel_display(fact.b)
            );
        }
    }
    out
}

/// Reconstruct a session from a script produced by [`save`] (or written
/// by hand).
pub fn load(text: &str) -> Result<Session> {
    let mut session = Session::new();
    // 1. Schema blocks: extract every `schema ... { ... }` region by brace
    //    counting, leave the rest as directive lines.
    let (schemas_src, directives) = split_schemas(text)?;
    if !schemas_src.trim().is_empty() {
        let schemas = sit_ecr::ddl::parse_many(&schemas_src)
            .map_err(|e| CoreError::UnknownName(format!("DDL error: {e}")))?;
        for s in schemas {
            session.add_schema(s)?;
        }
    }
    // 2. Directives.
    for line in directives.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let line = line.strip_suffix(';').unwrap_or(line).trim();
        if let Some(rest) = line.strip_prefix("equiv ") {
            let (a, b) = rest
                .split_once('=')
                .ok_or_else(|| bad_line("equiv needs `a = b`", line))?;
            let a = parse_attr_path(&session, a.trim())?;
            let b = parse_attr_path(&session, b.trim())?;
            session.declare_equivalent(a, b)?;
        } else if let Some(rest) = line.strip_prefix("rel-assert ") {
            let (a, assertion, b) = parse_assertion_line(rest, line)?;
            let (sa, ra) = split2(a, line)?;
            let (sb, rb) = split2(b, line)?;
            let ga = session.rel_named(sa, ra)?;
            let gb = session.rel_named(sb, rb)?;
            session.assert_rels(ga, gb, assertion)?;
        } else if let Some(rest) = line.strip_prefix("assert ") {
            let (a, assertion, b) = parse_assertion_line(rest, line)?;
            let (sa, oa) = split2(a, line)?;
            let (sb, ob) = split2(b, line)?;
            let ga = session.object_named(sa, oa)?;
            let gb = session.object_named(sb, ob)?;
            session.assert_objects(ga, gb, assertion)?;
        } else {
            return Err(bad_line("unknown directive", line));
        }
    }
    Ok(session)
}

/// The script keyword of an assertion.
pub fn keyword(a: Assertion) -> &'static str {
    match a {
        Assertion::Equal => "equals",
        Assertion::ContainedIn => "contained-in",
        Assertion::Contains => "contains",
        Assertion::DisjointIntegrable => "disjoint-integrable",
        Assertion::MayBe => "may-be-integrable",
        Assertion::DisjointNonIntegrable => "disjoint-non-integrable",
    }
}

/// Parse a script keyword back into an assertion.
pub fn parse_keyword(s: &str) -> Option<Assertion> {
    Assertion::MENU.into_iter().find(|a| keyword(*a) == s)
}

fn parse_assertion_line<'a>(
    rest: &'a str,
    line: &str,
) -> Result<(&'a str, Assertion, &'a str)> {
    let mut parts = rest.split_whitespace();
    let a = parts.next().ok_or_else(|| bad_line("missing operand", line))?;
    let kw = parts
        .next()
        .ok_or_else(|| bad_line("missing assertion keyword", line))?;
    let b = parts.next().ok_or_else(|| bad_line("missing operand", line))?;
    if parts.next().is_some() {
        return Err(bad_line("trailing tokens", line));
    }
    let assertion = parse_keyword(kw).ok_or_else(|| bad_line("unknown assertion", line))?;
    Ok((a, assertion, b))
}

fn parse_attr_path(session: &Session, dotted: &str) -> Result<crate::catalog::GAttr> {
    let mut it = dotted.split('.');
    let (Some(s), Some(o), Some(a), None) = (it.next(), it.next(), it.next(), it.next()) else {
        return Err(bad_line("attribute paths are schema.owner.attr", dotted));
    };
    session.catalog().attr_named(s, o, a)
}

fn split2<'a>(dotted: &'a str, line: &str) -> Result<(&'a str, &'a str)> {
    dotted
        .split_once('.')
        .ok_or_else(|| bad_line("object paths are schema.Object", line))
}

fn bad_line(msg: &str, line: &str) -> CoreError {
    CoreError::UnknownName(format!("{msg}: `{line}`"))
}

/// Separate `schema ... { ... }` blocks from directive lines.
fn split_schemas(text: &str) -> Result<(String, String)> {
    let mut schemas = String::new();
    let mut directives = String::new();
    let mut depth = 0usize;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if depth > 0 || trimmed.starts_with("schema ") {
            schemas.push_str(line);
            schemas.push('\n');
            for c in line.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => {
                        depth = depth.checked_sub(1).ok_or_else(|| {
                            CoreError::UnknownName("unbalanced braces in script".into())
                        })?;
                    }
                    '#' => break, // comment: ignore the rest of the line
                    _ => {}
                }
            }
        } else {
            directives.push_str(line);
            directives.push('\n');
        }
    }
    if depth != 0 {
        return Err(CoreError::UnknownName("unbalanced braces in script".into()));
    }
    Ok((schemas, directives))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sit_ecr::fixtures;

    fn paper_session() -> Session {
        let mut s = Session::new();
        s.add_schema(fixtures::sc1()).unwrap();
        s.add_schema(fixtures::sc2()).unwrap();
        s.declare_equivalent_named("sc1", "Student", "Name", "sc2", "Grad_student", "Name")
            .unwrap();
        s.declare_equivalent_named("sc1", "Student", "GPA", "sc2", "Grad_student", "GPA")
            .unwrap();
        s.declare_equivalent_named("sc1", "Department", "Dname", "sc2", "Department", "Dname")
            .unwrap();
        let d1 = s.object_named("sc1", "Department").unwrap();
        let d2 = s.object_named("sc2", "Department").unwrap();
        let st = s.object_named("sc1", "Student").unwrap();
        let gr = s.object_named("sc2", "Grad_student").unwrap();
        s.assert_objects(d1, d2, Assertion::Equal).unwrap();
        s.assert_objects(st, gr, Assertion::Contains).unwrap();
        let m1 = s.rel_named("sc1", "Majors").unwrap();
        let m2 = s.rel_named("sc2", "Majors").unwrap();
        s.assert_rels(m1, m2, Assertion::Equal).unwrap();
        s
    }

    #[test]
    fn save_survives_class_with_no_foreign_member() {
        // Merge three attributes into one class, then delete the only
        // sc2 member (a Screen 7 delete): the residue spans just sc1 and
        // used to panic `save` via its foreign-partner expect. It cannot
        // be expressed as cross-schema `equiv` directives, so saving
        // simply skips it and the script stays loadable.
        let mut s = Session::new();
        s.add_schema(fixtures::sc1()).unwrap();
        s.add_schema(fixtures::sc2()).unwrap();
        s.declare_equivalent_named("sc1", "Student", "Name", "sc2", "Grad_student", "Name")
            .unwrap();
        s.declare_equivalent_named("sc1", "Department", "Dname", "sc2", "Grad_student", "Name")
            .unwrap();
        let foreign = s
            .catalog()
            .attr_named("sc2", "Grad_student", "Name")
            .unwrap();
        assert!(s.remove_from_class(foreign));
        let script = save(&s);
        let reloaded = load(&script).unwrap();
        assert_eq!(reloaded.catalog().len(), 2);
        // The inexpressible residue is dropped, not round-tripped.
        assert!(reloaded.equivalences().classes().is_empty());
    }

    #[test]
    fn save_load_roundtrip_preserves_everything() {
        let original = paper_session();
        let script = save(&original);
        let loaded = load(&script).unwrap();
        // Schemas identical.
        assert_eq!(loaded.catalog().len(), 2);
        for (sid, schema) in original.catalog().schemas() {
            assert_eq!(loaded.catalog().schema(sid), schema);
        }
        // Equivalence classes identical.
        let norm = |s: &Session| {
            let mut cs: Vec<Vec<String>> = s
                .equivalences()
                .classes()
                .into_iter()
                .map(|(_, ms)| ms.iter().map(|&m| s.catalog().attr_display(m)).collect())
                .collect();
            cs.sort();
            cs
        };
        assert_eq!(norm(&original), norm(&loaded));
        // Assertions produce the same pinned relations.
        let d1 = loaded.object_named("sc1", "Department").unwrap();
        let d2 = loaded.object_named("sc2", "Department").unwrap();
        assert_eq!(
            loaded.effective_assertion(d1, d2),
            Some(Assertion::Equal)
        );
        // And the integration results match.
        let s1 = original.catalog().by_name("sc1").unwrap();
        let s2 = original.catalog().by_name("sc2").unwrap();
        let a = original.integrate(s1, s2, &Default::default()).unwrap();
        let b = loaded.integrate(s1, s2, &Default::default()).unwrap();
        assert_eq!(a.schema, b.schema);
    }

    #[test]
    fn script_is_human_editable() {
        let script = r#"
# hand-written session
schema a {
  entity Person { ssn: int key; }
}
schema b {
  entity Human { ssn: int key; }
}
equiv a.Person.ssn = b.Human.ssn;
assert a.Person equals b.Human;
"#;
        let session = load(script).unwrap();
        let p = session.object_named("a", "Person").unwrap();
        let h = session.object_named("b", "Human").unwrap();
        assert_eq!(session.effective_assertion(p, h), Some(Assertion::Equal));
    }

    #[test]
    fn classes_with_same_schema_members_roundtrip() {
        // sc2.Grad_student.Name and sc2.Faculty.Name share a class via
        // sc1.Student.Name; the save format must avoid same-schema equiv
        // lines.
        let mut s = Session::new();
        s.add_schema(fixtures::sc1()).unwrap();
        s.add_schema(fixtures::sc2()).unwrap();
        s.declare_equivalent_named("sc1", "Student", "Name", "sc2", "Grad_student", "Name")
            .unwrap();
        s.declare_equivalent_named("sc1", "Student", "Name", "sc2", "Faculty", "Name")
            .unwrap();
        let script = save(&s);
        let loaded = load(&script).unwrap();
        let a = loaded.catalog().attr_named("sc2", "Grad_student", "Name").unwrap();
        let b = loaded.catalog().attr_named("sc2", "Faculty", "Name").unwrap();
        assert!(loaded.equivalences().equivalent(a, b));
    }

    #[test]
    fn keywords_roundtrip() {
        for a in Assertion::MENU {
            assert_eq!(parse_keyword(keyword(a)), Some(a));
        }
        assert_eq!(parse_keyword("nonsense"), None);
    }

    #[test]
    fn errors_carry_the_offending_line() {
        assert!(load("bogus directive here;").is_err());
        assert!(load("equiv half = ;").is_err());
        assert!(load("assert a.X equals b;").is_err());
        assert!(load("schema x {").is_err(), "unbalanced braces");
        let err = load("assert a.X frobnicates b.Y;").unwrap_err().to_string();
        assert!(err.contains("unknown assertion"), "{err}");
    }

    #[test]
    fn conflicting_script_fails_like_the_session_would() {
        let script = r#"
schema a { entity X { id: int key; } }
schema b { entity Y { id: int key; } }
assert a.X equals b.Y;
assert a.X disjoint-non-integrable b.Y;
"#;
        assert!(matches!(load(script), Err(CoreError::Conflict(_))));
    }
}
