//! The integration session — one façade over the four phases.
//!
//! A [`Session`] corresponds to one run of the paper's tool: schemas are
//! collected (phase 1), attribute equivalences declared (phase 2),
//! assertions specified with automatic derivation and conflict checks
//! (phase 3), and pairs of schemas integrated (phase 4). `sit-tui`'s
//! screens drive exactly this API; tests and examples use it directly.
//!
//! On registration each schema seeds the object assertion engine with its
//! structural facts: every category is a proper part of each single
//! parent, and distinct *root* entity sets are pairwise disjoint (the ECR
//! rule "a given entity can be a member of only one entity set"). Those
//! seeds are what let Screen 9's conflict derivation cite
//! `sc4.Grad_student ⊆ sc4.Student` without the DDA ever typing it.

use sit_ecr::{Schema, SchemaId};

use crate::assertion::{Assertion, Rel5};
use crate::catalog::{Catalog, GAttr, GObj, GRel};
use crate::closure::{AssertionEngine, DerivedFact};
use crate::equivalence::EquivalenceRegistry;
use crate::error::{CoreError, Result};
use crate::integrate::{integrate, IntegratedSchema, IntegrationOptions};
use crate::mapping::Mappings;
use crate::resemblance::{ranked_pairs, ranked_rel_pairs, CandidatePair};

/// One interactive integration session.
#[derive(Clone, Debug, Default)]
pub struct Session {
    catalog: Catalog,
    equiv: EquivalenceRegistry,
    obj_engine: AssertionEngine<GObj>,
    rel_engine: AssertionEngine<GRel>,
}

impl Session {
    /// Fresh, empty session.
    pub fn new() -> Session {
        Session::default()
    }

    // ------------------------------------------------------------------
    // Phase 1: schema collection
    // ------------------------------------------------------------------

    /// Register a component schema; seeds structural facts and registers
    /// every attribute in its own equivalence class.
    pub fn add_schema(&mut self, schema: Schema) -> Result<SchemaId> {
        let _span = sit_obs::trace::span("session.add_schema");
        let sid = self.catalog.add(schema)?;
        self.equiv.register_schema(&self.catalog, sid);
        self.seed_structure(sid)?;
        Ok(sid)
    }

    fn seed_structure(&mut self, sid: SchemaId) -> Result<()> {
        let schema = self.catalog.schema(sid);
        let graph = sit_ecr::IsaGraph::of(schema);
        let mut pp_edges = Vec::new();
        let mut dr_edges = Vec::new();
        // Categories: proper part of each parent (single- or multi-parent;
        // a category over a union is still contained in each... only for
        // single-parent categories is PP to the parent sound, so restrict).
        for (oid, obj) in schema.objects() {
            let parents = obj.parents();
            if parents.len() == 1 {
                pp_edges.push((GObj::new(sid, oid), GObj::new(sid, parents[0])));
            }
        }
        // Root entity sets are pairwise disjoint.
        let roots = graph.roots();
        for (i, &a) in roots.iter().enumerate() {
            for &b in roots.iter().skip(i + 1) {
                dr_edges.push((GObj::new(sid, a), GObj::new(sid, b)));
            }
        }
        let catalog = &self.catalog;
        let name = |o: GObj| catalog.obj_display(o);
        for (a, b) in pp_edges {
            self.obj_engine
                .seed(a, b, Rel5::Pp, name)
                .map_err(|r| CoreError::Conflict(Box::new(r)))?;
        }
        for (a, b) in dr_edges {
            self.obj_engine
                .seed(a, b, Rel5::Dr, name)
                .map_err(|r| CoreError::Conflict(Box::new(r)))?;
        }
        // Distinct relationship sets of one schema are distinct tuple
        // sets.
        let rels: Vec<GRel> = self.catalog.rels_of(sid).collect();
        let name_r = |r: GRel| catalog.rel_display(r);
        for (i, &a) in rels.iter().enumerate() {
            for &b in rels.iter().skip(i + 1) {
                self.rel_engine
                    .seed(a, b, Rel5::Dr, name_r)
                    .map_err(|r| CoreError::Conflict(Box::new(r)))?;
            }
        }
        Ok(())
    }

    /// The catalog of registered schemas.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Resolve `schema.object`.
    pub fn object_named(&self, schema: &str, object: &str) -> Result<GObj> {
        self.catalog.object_named(schema, object)
    }

    /// Resolve `schema.relationship`.
    pub fn rel_named(&self, schema: &str, rel: &str) -> Result<GRel> {
        self.catalog.rel_named(schema, rel)
    }

    // ------------------------------------------------------------------
    // Phase 2: equivalence classes
    // ------------------------------------------------------------------

    /// Declare two attributes equivalent (merging their classes).
    pub fn declare_equivalent(&mut self, a: GAttr, b: GAttr) -> Result<()> {
        self.equiv.declare_equivalent(&self.catalog, a, b)
    }

    /// Name-based convenience for [`Session::declare_equivalent`].
    #[allow(clippy::too_many_arguments)]
    pub fn declare_equivalent_named(
        &mut self,
        schema_a: &str,
        owner_a: &str,
        attr_a: &str,
        schema_b: &str,
        owner_b: &str,
        attr_b: &str,
    ) -> Result<()> {
        let a = self.catalog.attr_named(schema_a, owner_a, attr_a)?;
        let b = self.catalog.attr_named(schema_b, owner_b, attr_b)?;
        self.declare_equivalent(a, b)
    }

    /// Remove an attribute from its equivalence class (Screen 7 delete).
    pub fn remove_from_class(&mut self, a: GAttr) -> bool {
        self.equiv.remove_from_class(a)
    }

    /// The equivalence registry (ACS state).
    pub fn equivalences(&self) -> &EquivalenceRegistry {
        &self.equiv
    }

    /// The ranked object-pair candidates between two schemas (Screen 8's
    /// row order).
    pub fn candidates(&self, sa: SchemaId, sb: SchemaId) -> Vec<CandidatePair<GObj>> {
        ranked_pairs(&self.catalog, &self.equiv, sa, sb)
    }

    /// The ranked relationship-pair candidates between two schemas.
    pub fn rel_candidates(&self, sa: SchemaId, sb: SchemaId) -> Vec<CandidatePair<GRel>> {
        ranked_rel_pairs(&self.catalog, &self.equiv, sa, sb)
    }

    // ------------------------------------------------------------------
    // Phase 3: assertions
    // ------------------------------------------------------------------

    /// Assert a relationship between two object classes of *different*
    /// schemas. Returns the newly derived assertions; a contradiction
    /// leaves the session unchanged and returns
    /// [`CoreError::Conflict`].
    pub fn assert_objects(
        &mut self,
        a: GObj,
        b: GObj,
        assertion: Assertion,
    ) -> Result<Vec<DerivedFact<GObj>>> {
        if a == b {
            return Err(CoreError::SelfAssertion(a));
        }
        if a.schema == b.schema {
            return Err(CoreError::SameSchemaAssertion(format!(
                "{} vs {}",
                self.catalog.obj_display(a),
                self.catalog.obj_display(b)
            )));
        }
        let catalog = &self.catalog;
        self.obj_engine
            .assert(a, b, assertion, |o| catalog.obj_display(o))
            .map_err(|r| CoreError::Conflict(Box::new(r)))
    }

    /// Assert a relationship between two relationship sets of different
    /// schemas.
    pub fn assert_rels(
        &mut self,
        a: GRel,
        b: GRel,
        assertion: Assertion,
    ) -> Result<Vec<DerivedFact<GRel>>> {
        if a.schema == b.schema {
            return Err(CoreError::SameSchemaAssertion(format!(
                "{} vs {}",
                self.catalog.rel_display(a),
                self.catalog.rel_display(b)
            )));
        }
        let catalog = &self.catalog;
        self.rel_engine
            .assert(a, b, assertion, |r| catalog.rel_display(r))
            .map_err(|r| CoreError::Conflict(Box::new(r)))
    }

    /// Retract the latest user assertion between two object classes
    /// (conflict repair).
    pub fn retract_objects(&mut self, a: GObj, b: GObj) -> bool {
        self.obj_engine.retract(a, b)
    }

    /// Retract the latest user assertion between two relationship sets.
    pub fn retract_rels(&mut self, a: GRel, b: GRel) -> bool {
        self.rel_engine.retract(a, b)
    }

    /// The effective assertion currently pinned for an object pair.
    pub fn effective_assertion(&self, a: GObj, b: GObj) -> Option<Assertion> {
        self.obj_engine.effective(a, b)
    }

    /// The Entity Assertion matrix of paper §3.4: "assertions between
    /// every pair of object classes are stored in an Entity Assertion
    /// matrix, where element (i,j) ... represents the assertion between
    /// object classes i and j". Rows index `sa`'s objects, columns `sb`'s;
    /// `None` where no relation is pinned (neither asserted nor
    /// derivable).
    pub fn assertion_matrix(&self, sa: SchemaId, sb: SchemaId) -> Vec<Vec<Option<Assertion>>> {
        let rows: Vec<GObj> = self.catalog.objects_of(sa).collect();
        let cols: Vec<GObj> = self.catalog.objects_of(sb).collect();
        rows.iter()
            .map(|&a| cols.iter().map(|&b| self.obj_engine.effective(a, b)).collect())
            .collect()
    }

    /// The object assertion engine (for inspection / screens).
    pub fn object_engine(&self) -> &AssertionEngine<GObj> {
        &self.obj_engine
    }

    /// The relationship assertion engine.
    pub fn rel_engine(&self) -> &AssertionEngine<GRel> {
        &self.rel_engine
    }

    // ------------------------------------------------------------------
    // Phase 4: integration
    // ------------------------------------------------------------------

    /// Integrate two registered schemas into a new
    /// [`IntegratedSchema`].
    pub fn integrate(
        &self,
        sa: SchemaId,
        sb: SchemaId,
        options: &IntegrationOptions,
    ) -> Result<IntegratedSchema> {
        // Guard hand-built or stale ids before they index the catalog —
        // a malformed request must come back as an error, not a panic.
        for sid in [sa, sb] {
            if self.catalog.try_schema(sid).is_none() {
                return Err(CoreError::UnknownElement(format!("schema id {sid:?}")));
            }
        }
        integrate(
            &self.catalog,
            &self.equiv,
            &self.obj_engine,
            &self.rel_engine,
            sa,
            sb,
            options,
        )
    }

    /// Integrate and also generate the request mappings.
    pub fn integrate_with_mappings(
        &self,
        sa: SchemaId,
        sb: SchemaId,
        options: &IntegrationOptions,
    ) -> Result<(IntegratedSchema, Mappings)> {
        let integrated = self.integrate(sa, sb, options)?;
        let mappings = Mappings::new(&self.catalog, &integrated);
        Ok((integrated, mappings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sit_ecr::fixtures;

    #[test]
    fn structural_seeds_power_screen9_derivation() {
        let mut s = Session::new();
        s.add_schema(fixtures::sc3()).unwrap();
        s.add_schema(fixtures::sc4()).unwrap();
        let instructor = s.object_named("sc3", "Instructor").unwrap();
        let grad = s.object_named("sc4", "Grad_student").unwrap();
        let student = s.object_named("sc4", "Student").unwrap();
        // Intra-schema fact seeded automatically.
        assert_eq!(s.object_engine().known(grad, student), Some(Rel5::Pp));
        // User asserts Instructor ⊆ Grad_student; Instructor ⊆ Student
        // must be derived.
        let derived = s
            .assert_objects(instructor, grad, Assertion::ContainedIn)
            .unwrap();
        assert!(derived
            .iter()
            .any(|d| d.rel == Rel5::Pp
                && ((d.a, d.b) == (instructor, student) || (d.a, d.b) == (student, instructor))),
            "derived {derived:?}");
        // The conflicting Screen 9 assertion is rejected with provenance.
        let err = s
            .assert_objects(instructor, student, Assertion::DisjointNonIntegrable)
            .unwrap_err();
        match err {
            CoreError::Conflict(report) => {
                assert_eq!(report.rejected, Assertion::DisjointNonIntegrable);
                assert_eq!(report.supports.len(), 2);
            }
            other => panic!("expected conflict, got {other}"),
        }
        // Repair as the paper suggests: change line 3 to "5" (may be).
        assert!(s.retract_objects(instructor, grad));
        s.assert_objects(instructor, grad, Assertion::MayBe).unwrap();
        assert_eq!(s.object_engine().known(instructor, student), None);
    }

    #[test]
    fn entity_set_disjointness_seeded() {
        let mut s = Session::new();
        s.add_schema(fixtures::sc1()).unwrap();
        s.add_schema(fixtures::sc2()).unwrap();
        let student = s.object_named("sc1", "Student").unwrap();
        let dept = s.object_named("sc1", "Department").unwrap();
        assert_eq!(s.object_engine().known(student, dept), Some(Rel5::Dr));
        // Cross-schema pairs start unconstrained.
        let grad = s.object_named("sc2", "Grad_student").unwrap();
        assert_eq!(s.object_engine().known(student, grad), None);
    }

    #[test]
    fn same_schema_and_self_assertions_rejected() {
        let mut s = Session::new();
        s.add_schema(fixtures::sc2()).unwrap();
        let grad = s.object_named("sc2", "Grad_student").unwrap();
        let faculty = s.object_named("sc2", "Faculty").unwrap();
        assert!(matches!(
            s.assert_objects(grad, faculty, Assertion::Equal),
            Err(CoreError::SameSchemaAssertion(_))
        ));
        assert!(matches!(
            s.assert_objects(grad, grad, Assertion::Equal),
            Err(CoreError::SelfAssertion(_))
        ));
    }

    #[test]
    fn integrate_rejects_stale_schema_ids() {
        let mut s = Session::new();
        s.add_schema(fixtures::sc1()).unwrap();
        let live = s.catalog().by_name("sc1").unwrap();
        let stale = sit_ecr::SchemaId::new(99);
        let err = s.integrate(live, stale, &Default::default()).unwrap_err();
        assert!(matches!(err, CoreError::UnknownElement(_)), "{err}");
        let err = s.integrate(stale, live, &Default::default()).unwrap_err();
        assert!(matches!(err, CoreError::UnknownElement(_)), "{err}");
    }

    #[test]
    fn rel_disjointness_seeded_within_schema() {
        let mut s = Session::new();
        s.add_schema(fixtures::sc2()).unwrap();
        let majors = s.rel_named("sc2", "Majors").unwrap();
        let works = s.rel_named("sc2", "Works").unwrap();
        assert_eq!(s.rel_engine().known(majors, works), Some(Rel5::Dr));
    }
}
