//! Transitive derivation of assertions and conflict detection.
//!
//! Screen 9 of the paper shows the two behaviours this module implements:
//!
//! * **Derivation** — "Some of the assertions may be specified by the user;
//!   the rest may be derived using rules of transitive composition of
//!   assertions (such as if a ⊆ b and b ⊆ c then a ⊆ c)." We run
//!   path-consistency over the RCC5 algebra of [`crate::assertion`], so
//!   every sound consequence of the asserted facts is derived, not just
//!   chains of ⊆.
//! * **Conflict detection** — "At the same time assertions are derived, the
//!   tool also checks for consistency of a newly defined or derived
//!   assertion with the previously defined or derived assertion." A
//!   conflict is a pair whose possible-relation set becomes empty; the
//!   [`ConflictReport`] carries the *derivation provenance* — "all the
//!   relevant assertions used in the derivation" — that the Assertion
//!   Conflict Resolution Screen displays.
//!
//! The engine is generic over the node type so the same machinery serves
//! object classes ([`crate::GObj`]) and relationship sets ([`crate::GRel`]).
//! Intra-schema facts are seeded from schema structure: a category is a
//! proper part of each single parent, and distinct entity sets of one
//! schema are disjoint ("a given entity can be a member of only one entity
//! set") — which is exactly how Screen 9's line 4
//! (`sc4.Grad_student ⊆ sc4.Student`) enters the derivation.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;

use crate::assertion::{Assertion, Rel5, Rel5Set};

/// Index of a recorded fact (user assertion or structural seed).
pub type FactId = usize;

/// Where a fact came from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FactSource {
    /// Specified by the DDA (Screen 8 / menu option 3 or 5).
    User,
    /// Seeded from one schema's own structure (category edges, entity-set
    /// disjointness).
    IntraSchema,
}

/// One recorded input fact.
#[derive(Clone, Debug)]
pub struct Fact<N> {
    /// First node of the ordered pair.
    pub a: N,
    /// Second node of the ordered pair.
    pub b: N,
    /// The constraint as stated (singleton for assertions).
    pub set: Rel5Set,
    /// The user-facing assertion, when the fact came from one.
    pub assertion: Option<Assertion>,
    /// Origin.
    pub source: FactSource,
    /// Whether a later `retract` removed it.
    pub active: bool,
}

/// A consequence the engine derived and pinned to a single relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DerivedFact<N> {
    /// First node.
    pub a: N,
    /// Second node.
    pub b: N,
    /// The single derived relation `R(a,b)`.
    pub rel: Rel5,
    /// Input facts the derivation rests on.
    pub roots: Vec<FactId>,
}

/// Everything the Assertion Conflict Resolution Screen needs to display.
#[derive(Clone, Debug, PartialEq)]
pub struct ConflictReport {
    /// Display names of the conflicting pair (`schema.Object`).
    pub pair: (String, String),
    /// The constraint already in force for the pair (possibly derived),
    /// before the rejected assertion.
    pub existing: Rel5Set,
    /// The rejected new assertion.
    pub rejected: Assertion,
    /// The input facts ("relevant assertions used in the derivation") that
    /// support the existing constraint, as display rows:
    /// `(name_a, name_b, assertion_code_or_tag, from_user)`.
    pub supports: Vec<ConflictSupport>,
}

/// One supporting row of a conflict report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictSupport {
    /// Display name of the first node.
    pub a: String,
    /// Display name of the second node.
    pub b: String,
    /// The assertion code as shown on Screen 9 (`2`, `0`, ...), or the
    /// RCC5 tag for structural seeds.
    pub label: String,
    /// `true` for DDA-specified assertions, `false` for structural seeds.
    pub from_user: bool,
}

impl fmt::Display for ConflictReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "`{}` vs `{}`: existing constraint {} contradicts new assertion `{}` (code {}); derived from:",
            self.pair.0,
            self.pair.1,
            self.existing,
            self.rejected,
            self.rejected.code()
        )?;
        for s in &self.supports {
            write!(f, "\n  {} ~ {} : {}", s.a, s.b, s.label)?;
        }
        Ok(())
    }
}

/// Ordered pair key with normalized orientation (`a < b`), plus whether the
/// caller's orientation was flipped to normalize.
fn norm<N: Ord + Copy>(a: N, b: N) -> ((N, N), bool) {
    if a <= b {
        ((a, b), false)
    } else {
        ((b, a), true)
    }
}

/// Constraint between a normalized pair.
#[derive(Clone, Debug)]
struct Edge {
    /// Possible relations for the pair in normalized orientation.
    set: Rel5Set,
    /// Input facts supporting the current refinement.
    roots: HashSet<FactId>,
}

/// The assertion/derivation engine over nodes of type `N`.
///
/// `N` is any small copyable id ([`crate::GObj`], [`crate::GRel`]). Node
/// display names for conflict reports are provided through a naming
/// closure at assertion time, keeping the engine independent of the
/// catalog.
#[derive(Clone, Debug)]
pub struct AssertionEngine<N> {
    facts: Vec<Fact<N>>,
    edges: HashMap<(N, N), Edge>,
    adjacency: HashMap<N, HashSet<N>>,
    nodes: HashSet<N>,
    /// Pairs the DDA marked disjoint-but-integrable.
    integrable_dr: HashSet<(N, N)>,
}

impl<N: Copy + Eq + Ord + Hash + fmt::Debug> Default for AssertionEngine<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N: Copy + Eq + Ord + Hash + fmt::Debug> AssertionEngine<N> {
    /// Empty engine.
    pub fn new() -> Self {
        Self {
            facts: Vec::new(),
            edges: HashMap::new(),
            adjacency: HashMap::new(),
            nodes: HashSet::new(),
            integrable_dr: HashSet::new(),
        }
    }

    /// Number of recorded input facts (active and retracted).
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// The recorded facts.
    pub fn facts(&self) -> &[Fact<N>] {
        &self.facts
    }

    /// All nodes mentioned so far.
    pub fn nodes(&self) -> impl Iterator<Item = N> + '_ {
        self.nodes.iter().copied()
    }

    /// Current constraint for a pair (universal when nothing is known).
    pub fn constraint(&self, a: N, b: N) -> Rel5Set {
        if a == b {
            return Rel5Set::only(Rel5::Eq);
        }
        let ((x, y), flipped) = norm(a, b);
        let set = self
            .edges
            .get(&(x, y))
            .map(|e| e.set)
            .unwrap_or(Rel5Set::ALL);
        if flipped {
            set.converse()
        } else {
            set
        }
    }

    /// The single known relation for a pair, if pinned down.
    pub fn known(&self, a: N, b: N) -> Option<Rel5> {
        self.constraint(a, b).singleton()
    }

    /// Whether the pair was marked disjoint-but-integrable.
    pub fn is_integrable_dr(&self, a: N, b: N) -> bool {
        let ((x, y), _) = norm(a, b);
        self.integrable_dr.contains(&(x, y))
    }

    /// The *effective assertion* for a pair, combining the pinned relation
    /// with the integrability mark: `None` when the relation is not pinned.
    pub fn effective(&self, a: N, b: N) -> Option<Assertion> {
        match self.known(a, b)? {
            Rel5::Eq => Some(Assertion::Equal),
            Rel5::Pp => Some(Assertion::ContainedIn),
            Rel5::Ppi => Some(Assertion::Contains),
            Rel5::Po => Some(Assertion::MayBe),
            Rel5::Dr => Some(if self.is_integrable_dr(a, b) {
                Assertion::DisjointIntegrable
            } else {
                Assertion::DisjointNonIntegrable
            }),
        }
    }

    /// Seed a structural (intra-schema) fact. Contradictory seeds indicate
    /// an invalid schema and are reported like assertion conflicts.
    pub fn seed(
        &mut self,
        a: N,
        b: N,
        rel: Rel5,
        name: impl Fn(N) -> String,
    ) -> Result<Vec<DerivedFact<N>>, ConflictReport> {
        self.apply(a, b, Rel5Set::only(rel), None, FactSource::IntraSchema, &name)
    }

    /// Record a DDA assertion for a pair. On success, returns the facts the
    /// propagation *newly pinned to a singleton* (the derived assertions
    /// the tool displays). On contradiction, nothing is changed and the
    /// conflict report is returned.
    pub fn assert(
        &mut self,
        a: N,
        b: N,
        assertion: Assertion,
        name: impl Fn(N) -> String,
    ) -> Result<Vec<DerivedFact<N>>, ConflictReport> {
        let _span = sit_obs::trace::span("closure.assert");
        let result = self.apply(
            a,
            b,
            Rel5Set::only(assertion.rel()),
            Some(assertion),
            FactSource::User,
            &name,
        )?;
        if assertion == Assertion::DisjointIntegrable {
            let ((x, y), _) = norm(a, b);
            self.integrable_dr.insert((x, y));
        }
        Ok(result)
    }

    /// Retract the most recent active user assertion between `a` and `b`
    /// and rebuild the derivation state from the remaining facts (the
    /// repair path the Assertion Conflict Resolution Screen offers: "the
    /// DDA is asked to change the assertions so that they do not
    /// conflict"). Returns `true` when a fact was found and removed.
    pub fn retract(&mut self, a: N, b: N) -> bool {
        let ((x, y), _) = norm(a, b);
        let found = self
            .facts
            .iter()
            .rposition(|f| {
                f.active && f.source == FactSource::User && {
                    let ((fx, fy), _) = norm(f.a, f.b);
                    (fx, fy) == (x, y)
                }
            })
            .map(|i| {
                self.facts[i].active = false;
            })
            .is_some();
        if found {
            self.rebuild();
        }
        found
    }

    /// Every pair whose relation is pinned to a singleton, with provenance
    /// — user-specified pairs included. Ordered by node pair.
    pub fn pinned(&self) -> Vec<DerivedFact<N>> {
        let mut out: Vec<DerivedFact<N>> = self
            .edges
            .iter()
            .filter_map(|(&(a, b), e)| {
                e.set.singleton().map(|rel| DerivedFact {
                    a,
                    b,
                    rel,
                    roots: sorted(&e.roots),
                })
            })
            .collect();
        out.sort_by_key(|d| (d.a, d.b));
        out
    }

    /// Pinned pairs that were *not* directly asserted (purely derived).
    pub fn derived_only(&self) -> Vec<DerivedFact<N>> {
        let direct: HashSet<(N, N)> = self
            .facts
            .iter()
            .filter(|f| f.active)
            .map(|f| norm(f.a, f.b).0)
            .collect();
        self.pinned()
            .into_iter()
            .filter(|d| !direct.contains(&norm(d.a, d.b).0))
            .collect()
    }

    fn rebuild(&mut self) {
        self.edges.clear();
        self.adjacency.clear();
        // Integrability marks are user intent attached to facts; rebuild
        // them from the facts that survive so retracting a later
        // assertion cannot erase the mark of an earlier one.
        self.integrable_dr = self
            .facts
            .iter()
            .filter(|f| f.active && f.assertion == Some(Assertion::DisjointIntegrable))
            .map(|f| norm(f.a, f.b).0)
            .collect();
        let facts = std::mem::take(&mut self.facts);
        for (id, f) in facts.iter().enumerate() {
            if f.active {
                // Re-applying previously consistent facts cannot conflict.
                let _ = Self::apply_static(
                    &mut self.edges,
                    &mut self.adjacency,
                    &mut self.nodes,
                    f.a,
                    f.b,
                    f.set,
                    Some(id),
                    &mut Vec::new(),
                );
            }
        }
        self.facts = facts;
    }

    fn apply(
        &mut self,
        a: N,
        b: N,
        set: Rel5Set,
        assertion: Option<Assertion>,
        source: FactSource,
        name: &impl Fn(N) -> String,
    ) -> Result<Vec<DerivedFact<N>>, ConflictReport> {
        let existing = self.constraint(a, b);
        if existing.intersect(set).is_empty() {
            // Contradiction: report without mutating.
            let ((x, y), _) = norm(a, b);
            let roots = self
                .edges
                .get(&(x, y))
                .map(|e| sorted(&e.roots))
                .unwrap_or_default();
            return Err(self.conflict_report(a, b, existing, assertion, roots, name));
        }
        let fact_id = self.facts.len();
        self.facts.push(Fact {
            a,
            b,
            set,
            assertion,
            source,
            active: true,
        });
        let mut pinned_now: Vec<(N, N)> = Vec::new();
        let outcome = Self::apply_static(
            &mut self.edges,
            &mut self.adjacency,
            &mut self.nodes,
            a,
            b,
            set,
            Some(fact_id),
            &mut pinned_now,
        );
        match outcome {
            Ok(()) => {
                // Newly pinned singletons (excluding the asserted pair),
                // collected during propagation.
                let target = norm(a, b).0;
                pinned_now.sort_unstable();
                pinned_now.dedup();
                let mut derived: Vec<DerivedFact<N>> = pinned_now
                    .into_iter()
                    .filter(|&k| k != target)
                    .filter_map(|(x, y)| {
                        let e = self.edges.get(&(x, y))?;
                        e.set.singleton().map(|rel| DerivedFact {
                            a: x,
                            b: y,
                            rel,
                            roots: sorted(&e.roots),
                        })
                    })
                    .collect();
                derived.sort_by_key(|d| (d.a, d.b));
                Ok(derived)
            }
            Err((x, y)) => {
                // Propagation emptied pair (x, y): undo by rebuilding
                // without the new fact, then report. The rejected fact
                // itself is excluded from the support list — Screen 9
                // shows it as the <new> row, not as a premise.
                self.facts[fact_id].active = false;
                let roots_of_conflict: Vec<FactId> = self
                    .edges
                    .get(&(x, y))
                    .map(|e| sorted(&e.roots))
                    .unwrap_or_default()
                    .into_iter()
                    .filter(|&id| id != fact_id)
                    .collect();
                self.rebuild();
                let existing = self.constraint(x, y);
                let report = self.conflict_report(x, y, existing, assertion, roots_of_conflict, name);
                // Remove the dead fact record entirely (it never held).
                self.facts.pop();
                Err(report)
            }
        }
    }

    /// Core propagation; static so `rebuild` can call it while iterating
    /// `self.facts`. Returns the pair that became empty on contradiction.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn apply_static(
        edges: &mut HashMap<(N, N), Edge>,
        adjacency: &mut HashMap<N, HashSet<N>>,
        nodes: &mut HashSet<N>,
        a: N,
        b: N,
        set: Rel5Set,
        fact: Option<FactId>,
        pinned_now: &mut Vec<(N, N)>,
    ) -> Result<(), (N, N)> {
        nodes.insert(a);
        nodes.insert(b);
        let mut queue: VecDeque<(N, N)> = VecDeque::new();
        let seed_roots: Vec<FactId> = fact.into_iter().collect();
        Self::refine(edges, adjacency, a, b, set, seed_roots, &mut queue, pinned_now)?;
        while let Some((x, y)) = queue.pop_front() {
            // Propagate through every triangle containing edge (x, y).
            let neighbors: Vec<N> = adjacency
                .get(&x)
                .into_iter()
                .flatten()
                .chain(adjacency.get(&y).into_iter().flatten())
                .copied()
                .filter(|&k| k != x && k != y)
                .collect();
            for k in neighbors {
                // (x,k) refined by (x,y) ∘ (y,k)
                let xy = Self::get_set(edges, x, y);
                let yk = Self::get_set(edges, y, k);
                // Provenance is gathered only when a refinement actually
                // tightens the edge (the common case is no change, and
                // collecting roots there dominated propagation cost).
                if !yk.is_universal() {
                    let composed = xy.compose(yk);
                    if Self::would_refine(edges, x, k, composed) {
                        let mut roots = Self::get_roots(edges, x, y);
                        roots.extend(Self::get_roots(edges, y, k));
                        Self::refine(
                            edges, adjacency, x, k, composed, roots, &mut queue, pinned_now,
                        )?;
                    }
                }
                // (k,y) refined by (k,x) ∘ (x,y)
                let kx = Self::get_set(edges, k, x);
                let xy = Self::get_set(edges, x, y);
                if !kx.is_universal() {
                    let composed = kx.compose(xy);
                    if Self::would_refine(edges, k, y, composed) {
                        let mut roots = Self::get_roots(edges, k, x);
                        roots.extend(Self::get_roots(edges, x, y));
                        Self::refine(
                            edges, adjacency, k, y, composed, roots, &mut queue, pinned_now,
                        )?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Constraint set for `(a, b)` in that orientation.
    fn get_set(edges: &HashMap<(N, N), Edge>, a: N, b: N) -> Rel5Set {
        let ((x, y), flipped) = norm(a, b);
        match edges.get(&(x, y)) {
            Some(e) if flipped => e.set.converse(),
            Some(e) => e.set,
            None => Rel5Set::ALL,
        }
    }

    /// Would intersecting the `(a, b)` constraint with `set` change it?
    fn would_refine(edges: &HashMap<(N, N), Edge>, a: N, b: N, set: Rel5Set) -> bool {
        if a == b {
            return !set.contains(Rel5::Eq);
        }
        let current = Self::get_set(edges, a, b);
        current.intersect(set) != current
    }

    /// Supporting fact ids of the `(a, b)` edge.
    fn get_roots(edges: &HashMap<(N, N), Edge>, a: N, b: N) -> Vec<FactId> {
        let ((x, y), _) = norm(a, b);
        edges
            .get(&(x, y))
            .map(|e| e.roots.iter().copied().collect())
            .unwrap_or_default()
    }

    #[allow(clippy::too_many_arguments)]
    fn refine(
        edges: &mut HashMap<(N, N), Edge>,
        adjacency: &mut HashMap<N, HashSet<N>>,
        a: N,
        b: N,
        set: Rel5Set,
        roots: Vec<FactId>,
        queue: &mut VecDeque<(N, N)>,
        pinned_now: &mut Vec<(N, N)>,
    ) -> Result<(), (N, N)> {
        if a == b {
            // Self-pairs are always EQ; a constraint excluding EQ on a
            // self-pair cannot arise from valid input.
            return if set.contains(Rel5::Eq) {
                Ok(())
            } else {
                Err((a, b))
            };
        }
        let ((x, y), flipped) = norm(a, b);
        let set = if flipped { set.converse() } else { set };
        let entry = edges.entry((x, y)).or_insert_with(|| Edge {
            set: Rel5Set::ALL,
            roots: HashSet::new(),
        });
        let new = entry.set.intersect(set);
        if new == entry.set {
            return Ok(());
        }
        entry.set = new;
        entry.roots.extend(roots);
        if new.is_empty() {
            return Err((x, y));
        }
        if new.singleton().is_some() {
            pinned_now.push((x, y));
        }
        adjacency.entry(x).or_default().insert(y);
        adjacency.entry(y).or_default().insert(x);
        queue.push_back((x, y));
        Ok(())
    }

    fn conflict_report(
        &self,
        a: N,
        b: N,
        existing: Rel5Set,
        rejected: Option<Assertion>,
        roots: Vec<FactId>,
        name: &impl Fn(N) -> String,
    ) -> ConflictReport {
        let supports = roots
            .into_iter()
            .filter_map(|id| self.facts.get(id))
            .map(|f| ConflictSupport {
                a: name(f.a),
                b: name(f.b),
                label: match f.assertion {
                    Some(assertion) => assertion.code().to_string(),
                    None => f
                        .set
                        .singleton()
                        .map(|r| r.tag().to_owned())
                        .unwrap_or_else(|| f.set.to_string()),
                },
                from_user: f.source == FactSource::User,
            })
            .collect();
        ConflictReport {
            pair: (name(a), name(b)),
            existing,
            rejected: rejected.unwrap_or(Assertion::DisjointNonIntegrable),
            supports,
        }
    }
}

fn sorted(s: &HashSet<FactId>) -> Vec<FactId> {
    let mut v: Vec<FactId> = s.iter().copied().collect();
    v.sort_unstable();
    v
}

/// Naive path consistency: recompute from scratch over all node triples
/// until a fixpoint — the textbook algorithm the incremental worklist
/// engine is benchmarked against (the ⚗ ablation of DESIGN.md §6.3).
/// Returns the non-universal constraints, or the pair that became empty.
///
/// Results agree with [`AssertionEngine`] on the same input facts (both
/// compute the path-consistent closure), which the tests verify.
pub fn naive_path_consistency<N>(
    facts: &[(N, N, Rel5Set)],
) -> std::result::Result<HashMap<(N, N), Rel5Set>, (N, N)>
where
    N: Copy + Eq + Ord + Hash,
{
    let mut nodes: Vec<N> = facts.iter().flat_map(|&(a, b, _)| [a, b]).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut cons: HashMap<(N, N), Rel5Set> = HashMap::new();
    fn get<N: Copy + Eq + Ord + Hash>(
        cons: &HashMap<(N, N), Rel5Set>,
        a: N,
        b: N,
    ) -> Rel5Set {
        if a == b {
            return Rel5Set::only(Rel5::Eq);
        }
        let ((x, y), flipped) = norm(a, b);
        let set = cons.get(&(x, y)).copied().unwrap_or(Rel5Set::ALL);
        if flipped {
            set.converse()
        } else {
            set
        }
    }
    fn put<N: Copy + Eq + Ord + Hash>(
        cons: &mut HashMap<(N, N), Rel5Set>,
        a: N,
        b: N,
        set: Rel5Set,
    ) -> bool {
        let ((x, y), flipped) = norm(a, b);
        let set = if flipped { set.converse() } else { set };
        let entry = cons.entry((x, y)).or_insert(Rel5Set::ALL);
        let new = entry.intersect(set);
        let changed = new != *entry;
        *entry = new;
        changed
    }
    for &(a, b, set) in facts {
        if a == b {
            if !set.contains(Rel5::Eq) {
                return Err((a, b));
            }
            continue;
        }
        put(&mut cons, a, b, set);
        if get(&cons, a, b).is_empty() {
            return Err(norm(a, b).0);
        }
    }
    // Fixpoint over all triples.
    loop {
        let mut changed = false;
        for &i in &nodes {
            for &j in &nodes {
                if i == j {
                    continue;
                }
                for &k in &nodes {
                    if k == i || k == j {
                        continue;
                    }
                    let ik = get(&cons, i, k);
                    let kj = get(&cons, k, j);
                    if ik.is_universal() && kj.is_universal() {
                        continue;
                    }
                    let composed = ik.compose(kj);
                    changed |= put(&mut cons, i, j, composed);
                    if get(&cons, i, j).is_empty() {
                        return Err(norm(i, j).0);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    cons.retain(|_, set| !set.is_universal());
    Ok(cons)
}

#[cfg(test)]
mod tests {
    use super::*;

    type E = AssertionEngine<u32>;

    fn nm(n: u32) -> String {
        format!("n{n}")
    }

    #[test]
    fn transitive_containment_is_derived() {
        // Screen 9's derivation: Instructor ⊆ Grad ∧ Grad ⊆ Student
        //   ⇒ Instructor ⊆ Student.
        let mut e = E::new();
        e.assert(0, 1, Assertion::ContainedIn, nm).unwrap();
        let derived = e.assert(1, 2, Assertion::ContainedIn, nm).unwrap();
        assert_eq!(e.known(0, 2), Some(Rel5::Pp));
        assert!(derived
            .iter()
            .any(|d| (d.a, d.b, d.rel) == (0, 2, Rel5::Pp)));
        // And the converse orientation reads as Contains.
        assert_eq!(e.known(2, 0), Some(Rel5::Ppi));
        assert_eq!(e.effective(0, 2), Some(Assertion::ContainedIn));
    }

    #[test]
    fn paper_intro_conflict_example() {
        // "if Employee is equivalent to Person, and Person is equivalent to
        //  Worker, then Worker cannot be a subset of Employee."
        let mut e = E::new();
        e.assert(0, 1, Assertion::Equal, nm).unwrap(); // Employee ≡ Person
        e.assert(1, 2, Assertion::Equal, nm).unwrap(); // Person ≡ Worker
        let err = e.assert(2, 0, Assertion::ContainedIn, nm).unwrap_err();
        assert_eq!(err.rejected, Assertion::ContainedIn);
        assert_eq!(err.existing, Rel5Set::only(Rel5::Eq));
        assert_eq!(err.supports.len(), 2);
        // State unchanged: the pair still reads EQ, facts still 2.
        assert_eq!(e.known(2, 0), Some(Rel5::Eq));
        assert_eq!(e.facts().iter().filter(|f| f.active).count(), 2);
    }

    #[test]
    fn screen9_conflict_has_derivation_chain() {
        // sc3.Instructor(0) ⊆ sc4.Grad_student(1) [user],
        // sc4.Grad_student(1) ⊆ sc4.Student(2)    [intra-schema seed],
        // then the DDA asserts Instructor disjoint Student → conflict,
        // with both supporting facts listed.
        let mut e = E::new();
        e.seed(1, 2, Rel5::Pp, nm).unwrap();
        e.assert(0, 1, Assertion::ContainedIn, nm).unwrap();
        let err = e
            .assert(0, 2, Assertion::DisjointNonIntegrable, nm)
            .unwrap_err();
        assert_eq!(err.existing, Rel5Set::only(Rel5::Pp));
        assert_eq!(err.supports.len(), 2);
        let labels: Vec<&str> = err.supports.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"2"), "user assertion code 2: {labels:?}");
        assert!(labels.contains(&"PP"), "structural seed: {labels:?}");
    }

    #[test]
    fn indirect_conflict_detected_during_propagation() {
        // 0 ⊆ 1, 2 ⊇ 1 asserted; then 0 DR 2 is impossible
        // (0 ⊆ 1 ⊆ 2 forces 0 ⊆ 2).
        let mut e = E::new();
        e.assert(0, 1, Assertion::ContainedIn, nm).unwrap();
        e.assert(2, 1, Assertion::Contains, nm).unwrap();
        assert_eq!(e.known(0, 2), Some(Rel5::Pp));
        let err = e
            .assert(0, 2, Assertion::DisjointNonIntegrable, nm)
            .unwrap_err();
        assert!(!err.supports.is_empty());
        // Engine state must be intact after the rejected assertion.
        assert_eq!(e.known(0, 2), Some(Rel5::Pp));
    }

    #[test]
    fn retract_reopens_the_pair() {
        let mut e = E::new();
        e.assert(0, 1, Assertion::ContainedIn, nm).unwrap();
        e.assert(1, 2, Assertion::ContainedIn, nm).unwrap();
        assert_eq!(e.known(0, 2), Some(Rel5::Pp));
        assert!(e.retract(0, 1));
        assert_eq!(e.known(0, 2), None, "derivation gone with its premise");
        assert_eq!(e.known(1, 2), Some(Rel5::Pp), "other fact survives");
        assert!(!e.retract(0, 1), "nothing left to retract");
        // Now the previously conflicting assertion is accepted.
        e.assert(0, 2, Assertion::DisjointNonIntegrable, nm).unwrap();
        assert_eq!(e.known(0, 2), Some(Rel5::Dr));
    }

    #[test]
    fn disjoint_propagates_down_containment() {
        // a ⊆ b, b DR c ⇒ a DR c (PP ∘ DR = DR).
        let mut e = E::new();
        e.assert(0, 1, Assertion::ContainedIn, nm).unwrap();
        let derived = e
            .assert(1, 2, Assertion::DisjointNonIntegrable, nm)
            .unwrap();
        assert!(derived
            .iter()
            .any(|d| (d.a, d.b, d.rel) == (0, 2, Rel5::Dr)));
    }

    #[test]
    fn overlap_composes_to_disjunctions_not_singletons() {
        // a PO b, b PO c pins nothing about (a, c).
        let mut e = E::new();
        e.assert(0, 1, Assertion::MayBe, nm).unwrap();
        let derived = e.assert(1, 2, Assertion::MayBe, nm).unwrap();
        assert!(derived.is_empty());
        assert_eq!(e.constraint(0, 2), Rel5Set::ALL);
    }

    #[test]
    fn integrability_mark_tracked_for_dr_pairs() {
        let mut e = E::new();
        e.assert(0, 1, Assertion::DisjointIntegrable, nm).unwrap();
        assert!(e.is_integrable_dr(0, 1));
        assert!(e.is_integrable_dr(1, 0));
        assert_eq!(e.effective(0, 1), Some(Assertion::DisjointIntegrable));
        e.assert(2, 3, Assertion::DisjointNonIntegrable, nm).unwrap();
        assert_eq!(e.effective(2, 3), Some(Assertion::DisjointNonIntegrable));
    }

    #[test]
    fn derived_only_excludes_direct_assertions() {
        let mut e = E::new();
        e.assert(0, 1, Assertion::ContainedIn, nm).unwrap();
        e.assert(1, 2, Assertion::ContainedIn, nm).unwrap();
        let d = e.derived_only();
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].a, d[0].b, d[0].rel), (0, 2, Rel5::Pp));
        assert_eq!(d[0].roots.len(), 2, "both premises recorded");
        let pinned = e.pinned();
        assert_eq!(pinned.len(), 3);
    }

    #[test]
    fn equality_merges_constraint_views() {
        // 0 ≡ 1 and 1 ⊆ 2 ⇒ 0 ⊆ 2.
        let mut e = E::new();
        e.assert(0, 1, Assertion::Equal, nm).unwrap();
        e.assert(1, 2, Assertion::ContainedIn, nm).unwrap();
        assert_eq!(e.known(0, 2), Some(Rel5::Pp));
    }

    #[test]
    fn long_chain_propagates() {
        let mut e = E::new();
        for i in 0..10u32 {
            e.assert(i, i + 1, Assertion::ContainedIn, nm).unwrap();
        }
        assert_eq!(e.known(0, 10), Some(Rel5::Pp));
        let err = e
            .assert(10, 0, Assertion::ContainedIn, nm)
            .unwrap_err();
        assert_eq!(err.existing, Rel5Set::only(Rel5::Ppi));
    }

    #[test]
    fn naive_and_incremental_closures_agree() {
        // A mixed fact set with chains, merges and disjointness.
        let facts: Vec<(u32, u32, Rel5Set)> = vec![
            (0, 1, Rel5Set::only(Rel5::Pp)),
            (1, 2, Rel5Set::only(Rel5::Pp)),
            (3, 2, Rel5Set::only(Rel5::Eq)),
            (4, 2, Rel5Set::only(Rel5::Dr)),
            (5, 0, Rel5Set::only(Rel5::Po)),
        ];
        let naive = naive_path_consistency(&facts).expect("consistent");
        let mut engine = E::new();
        for &(a, b, set) in &facts {
            let rel = set.singleton().unwrap();
            engine.seed(a, b, rel, nm).unwrap();
        }
        for &a in &[0u32, 1, 2, 3, 4, 5] {
            for &b in &[0u32, 1, 2, 3, 4, 5] {
                if a >= b {
                    continue;
                }
                let from_naive = naive.get(&(a, b)).copied().unwrap_or(Rel5Set::ALL);
                assert_eq!(
                    engine.constraint(a, b),
                    from_naive,
                    "({a},{b}) incremental vs naive"
                );
            }
        }
        // Both reject the same contradiction.
        let mut bad = facts.clone();
        bad.push((0, 2, Rel5Set::only(Rel5::Dr)));
        assert!(naive_path_consistency(&bad).is_err());
        assert!(engine
            .assert(0, 2, Assertion::DisjointNonIntegrable, nm)
            .is_err());
    }

    #[test]
    fn conflict_supports_exclude_the_rejected_fact() {
        // 0 ⊆ 1 asserted; asserting 1 ⊆ 0 conflicts *via propagation*
        // on the (0,1) pair itself... use a third-party pair: 0 ≡ 1 and
        // 1 ≡ 2, then 0 DR 2 empties (0,2) during propagation. The report
        // must cite only the two premises, never the rejected fact.
        let mut e = E::new();
        e.assert(0, 1, Assertion::Equal, nm).unwrap();
        e.assert(1, 2, Assertion::Equal, nm).unwrap();
        let err = e
            .assert(0, 2, Assertion::DisjointNonIntegrable, nm)
            .unwrap_err();
        assert_eq!(err.supports.len(), 2, "{err}");
        assert!(err.supports.iter().all(|s| s.label == "1"), "{err}");
    }

    #[test]
    fn retract_preserves_earlier_integrability_mark() {
        let mut e = E::new();
        e.assert(0, 1, Assertion::DisjointIntegrable, nm).unwrap();
        e.assert(0, 1, Assertion::DisjointNonIntegrable, nm).unwrap();
        // Retract the later (non-integrable) assertion: the earlier
        // integrable intent must survive the rebuild.
        assert!(e.retract(0, 1));
        assert!(e.is_integrable_dr(0, 1));
        assert_eq!(e.effective(0, 1), Some(Assertion::DisjointIntegrable));
        // Retracting the remaining fact clears it.
        assert!(e.retract(0, 1));
        assert!(!e.is_integrable_dr(0, 1));
    }

    #[test]
    fn self_assertion_constraint() {
        let e = E::new();
        assert_eq!(e.constraint(3, 3), Rel5Set::only(Rel5::Eq));
    }
}
