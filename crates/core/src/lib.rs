#![warn(missing_docs)]
//! # sit-core — the schema-integration engine
//!
//! This crate implements the methodology of *"A Tool for Integrating
//! Conceptual Schemas and User Views"* (Sheth, Larson, Cornelio, Navathe;
//! ICDE 1988): the four-phase integration of ECR component schemas into a
//! single integrated schema with mappings.
//!
//! | Phase | Paper section | Module |
//! |-------|---------------|--------|
//! | 1. Schema collection      | §3.2 | [`catalog`] (schemas come from `sit-ecr`) |
//! | 2. Equivalence classes    | §3.3 | [`equivalence`] (ACS matrix), [`resemblance`] (OCS matrix, attribute ratio, ranking) |
//! | 3. Assertion specification| §3.4 | [`assertion`] (the five assertions), [`closure`] (transitive derivation, conflict detection) |
//! | 4. Integration            | §3.5 | [`cluster`], [`integrate`], [`mapping`] |
//!
//! The [`session::Session`] type ties the phases together behind one
//! programmatic API; the interactive tool in `sit-tui` is a thin shell over
//! it, and [`nary`] folds more than two schemas through repeated binary
//! integration (the paper: "a result of integration of two schemas can be
//! integrated with another schema").
//!
//! ```
//! use sit_core::session::Session;
//! use sit_core::assertion::Assertion;
//!
//! let mut s = Session::new();
//! let sc1 = s.add_schema(sit_ecr::fixtures::sc1()).unwrap();
//! let sc2 = s.add_schema(sit_ecr::fixtures::sc2()).unwrap();
//!
//! // Phase 2: the DDA declares attribute equivalences.
//! s.declare_equivalent_named("sc1", "Student", "Name", "sc2", "Grad_student", "Name").unwrap();
//!
//! // Phase 3: assertions, with automatic derivation + conflict checks.
//! let dept1 = s.object_named("sc1", "Department").unwrap();
//! let dept2 = s.object_named("sc2", "Department").unwrap();
//! s.assert_objects(dept1, dept2, Assertion::Equal).unwrap();
//!
//! // Phase 4: integrate.
//! let result = s.integrate(sc1, sc2, &Default::default()).unwrap();
//! assert!(result.schema.object_by_name("E_Department").is_some());
//! ```

pub mod assertion;
pub mod catalog;
pub mod closure;
pub mod cluster;
pub mod equivalence;
pub mod error;
pub mod integrate;
pub mod mapping;
pub mod nary;
pub mod resemblance;
pub mod script;
pub mod session;

pub use assertion::{Assertion, Rel5, Rel5Set};
pub use catalog::{Catalog, GAttr, GObj, GRel};
pub use closure::{AssertionEngine, ConflictReport, DerivedFact, FactId, FactSource};
pub use equivalence::{ClassNo, EquivalenceRegistry};
pub use error::{CoreError, Result};
pub use integrate::{IntegratedSchema, IntegrationOptions};
pub use resemblance::{ocs_matrix, ranked_pairs, ranked_rel_pairs, CandidatePair};
pub use session::Session;
