//! Object-class lattice construction and schema assembly.
//!
//! The first half of phase 4: merge *equals* groups, place IS-A edges for
//! containment (with transitive reduction so only Hasse edges appear as
//! category links), generate derived superclasses for overlap and
//! disjoint-integrable pairs, and topologically assemble the object side of
//! the integrated schema.

use std::collections::{HashMap, VecDeque};

use sit_ecr::{ObjectId, RelId, SchemaBuilder};

use super::attrs::Placement;
use super::names::{derived_object_name, equivalent_object_name, NamePool};
use super::{AttrProvenance, IntegrationOptions, NodeOrigin, RelOrigin};
use crate::assertion::Rel5;
use crate::catalog::{Catalog, GObj, GRel};
use crate::closure::AssertionEngine;
use crate::cluster::Dsu;
use crate::error::{CoreError, Result};

/// A proto-node of the integrated object lattice.
#[derive(Clone, Debug)]
pub(super) struct Node {
    /// Component objects merged into this node (empty for derived nodes).
    pub members: Vec<GObj>,
    /// Parent node indexes (IS-A, post transitive reduction, plus derived
    /// superclass edges).
    pub parents: Vec<usize>,
    /// For derived nodes: the two child node indexes.
    pub derived_children: Option<(usize, usize)>,
    /// Display name within the integrated schema (assigned pre-assembly,
    /// final uniquification happens at claim time).
    pub name: String,
}

/// The object lattice: nodes plus a parents-first topological order.
#[derive(Clone, Debug)]
pub(super) struct Lattice {
    pub nodes: Vec<Node>,
    /// Node indexes, parents before children.
    pub topo: Vec<usize>,
}

impl Lattice {
    /// All (transitive) ancestors of node `i`, nearest first (BFS).
    pub fn ancestors(&self, i: usize) -> Vec<usize> {
        let mut seen = vec![false; self.nodes.len()];
        let mut out = Vec::new();
        let mut q = VecDeque::from([i]);
        seen[i] = true;
        while let Some(x) = q.pop_front() {
            for &p in &self.nodes[x].parents {
                if !seen[p] {
                    seen[p] = true;
                    out.push(p);
                    q.push_back(p);
                }
            }
        }
        out
    }
}

/// Build the node lattice from the pinned object relations.
pub(super) fn build_lattice(
    catalog: &Catalog,
    engine: &AssertionEngine<GObj>,
    universe: &[GObj],
) -> Result<Lattice> {
    // 1. Merge `equals` groups.
    let index: HashMap<GObj, usize> = universe.iter().copied().zip(0..).collect();
    let mut dsu = Dsu::new(universe.len());
    for (i, &a) in universe.iter().enumerate() {
        for (j, &b) in universe.iter().enumerate().skip(i + 1) {
            if engine.known(a, b) == Some(Rel5::Eq) {
                dsu.union(i, j);
            }
        }
    }
    let mut groups: HashMap<usize, Vec<GObj>> = HashMap::new();
    for &o in universe {
        groups.entry(dsu.find(index[&o])).or_default().push(o);
    }
    let mut nodes: Vec<Node> = groups
        .into_values()
        .map(|mut members| {
            members.sort_unstable();
            Node {
                members,
                parents: Vec::new(),
                derived_children: None,
                name: String::new(),
            }
        })
        .collect();
    nodes.sort_by(|a, b| a.members[0].cmp(&b.members[0]));

    // 2. Node-level relation: intersection over member pairs.
    let n = nodes.len();
    let node_rel = |x: usize, y: usize| -> crate::assertion::Rel5Set {
        let mut set = crate::assertion::Rel5Set::ALL;
        for &a in &nodes[x].members {
            for &b in &nodes[y].members {
                set = set.intersect(engine.constraint(a, b));
            }
        }
        set
    };

    // 3. Containment order (PP) and derived pairs (PO / integrable DR).
    let mut pp = vec![vec![false; n]; n]; // pp[x][y]: x ⊂ y
    let mut derived_pairs: Vec<(usize, usize)> = Vec::new();
    for x in 0..n {
        for y in (x + 1)..n {
            let set = node_rel(x, y);
            if set.is_empty() {
                return Err(CoreError::InconsistentLattice(format!(
                    "no relation possible between `{}` and `{}` after equals-merging",
                    catalog.obj_display(nodes[x].members[0]),
                    catalog.obj_display(nodes[y].members[0]),
                )));
            }
            match set.singleton() {
                Some(Rel5::Pp) => pp[x][y] = true,
                Some(Rel5::Ppi) => pp[y][x] = true,
                Some(Rel5::Po) => derived_pairs.push((x, y)),
                Some(Rel5::Dr) => {
                    let integrable = nodes[x].members.iter().any(|&a| {
                        nodes[y].members.iter().any(|&b| engine.is_integrable_dr(a, b))
                    });
                    if integrable {
                        derived_pairs.push((x, y));
                    }
                }
                Some(Rel5::Eq) => {
                    return Err(CoreError::InconsistentLattice(format!(
                        "`{}` and `{}` are equal but were not merged",
                        catalog.obj_display(nodes[x].members[0]),
                        catalog.obj_display(nodes[y].members[0]),
                    )))
                }
                None => {}
            }
        }
    }

    // 4. Transitive closure of PP, then reduction to Hasse edges.
    let mut closure = pp.clone();
    for k in 0..n {
        for i in 0..n {
            if closure[i][k] {
                let (head, tail) = if i < k {
                    let (a, b) = closure.split_at_mut(k);
                    (&mut a[i], &b[0])
                } else {
                    let (a, b) = closure.split_at_mut(i);
                    (&mut b[0], &a[k])
                };
                for (dst, &src) in head.iter_mut().zip(tail.iter()) {
                    *dst = *dst || src;
                }
            }
        }
    }
    for (i, row) in closure.iter().enumerate() {
        if row[i] {
            return Err(CoreError::InconsistentLattice(
                "containment cycle among merged nodes".to_owned(),
            ));
        }
    }
    for x in 0..n {
        for y in 0..n {
            if !closure[x][y] {
                continue;
            }
            let redundant = (0..n).any(|z| z != x && z != y && closure[x][z] && closure[z][y]);
            if !redundant {
                nodes[x].parents.push(y);
            }
        }
    }

    // 4b. Structural category edges that no pinned PP fact covers: a
    //     multi-parent category is a subset of the *union* of its parents,
    //     so no binary PP fact is seeded for it — but the edge must
    //     survive into the integrated schema. Add any member's structural
    //     parent edge whose target is not already reachable upward.
    let node_of: HashMap<GObj, usize> = nodes
        .iter()
        .enumerate()
        .flat_map(|(i, node)| node.members.iter().map(move |&m| (m, i)))
        .collect();
    let mut struct_edges: Vec<(usize, usize)> = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        for &m in &node.members {
            for &p in catalog.schema(m.schema).object(m.object).parents() {
                let parent = node_of[&GObj::new(m.schema, p)];
                if parent != i {
                    struct_edges.push((i, parent));
                }
            }
        }
    }
    for (child, parent) in struct_edges {
        if !reachable_up(&nodes, child, parent) {
            nodes[child].parents.push(parent);
        }
    }

    // 5. Derived superclasses for overlap / disjoint-integrable pairs.
    for (x, y) in derived_pairs {
        let d = nodes.len();
        nodes.push(Node {
            members: Vec::new(),
            parents: Vec::new(),
            derived_children: Some((x, y)),
            name: String::new(),
        });
        nodes[x].parents.push(d);
        nodes[y].parents.push(d);
    }

    // 6. Names: base nodes first (derived names reference child names).
    for node in &mut nodes {
        if node.derived_children.is_some() {
            continue;
        }
        let names: Vec<&str> = node
            .members
            .iter()
            .map(|&m| catalog.schema(m.schema).object(m.object).name.as_str())
            .collect();
        node.name = if names.len() == 1 {
            names[0].to_owned()
        } else {
            equivalent_object_name(&names)
        };
    }
    for i in 0..nodes.len() {
        if let Some((x, y)) = nodes[i].derived_children {
            let name = derived_object_name(&[nodes[x].name.as_str(), nodes[y].name.as_str()]);
            nodes[i].name = name;
        }
    }

    // 7. Topological order, parents first.
    let topo = topo_order(&nodes).ok_or_else(|| {
        CoreError::InconsistentLattice("cycle in integrated IS-A graph".to_owned())
    })?;

    Ok(Lattice { nodes, topo })
}

/// Is `target` reachable from `from` by walking parent edges?
fn reachable_up(nodes: &[Node], from: usize, target: usize) -> bool {
    let mut seen = vec![false; nodes.len()];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(x) = stack.pop() {
        for &p in &nodes[x].parents {
            if p == target {
                return true;
            }
            if !seen[p] {
                seen[p] = true;
                stack.push(p);
            }
        }
    }
    false
}

fn topo_order(nodes: &[Node]) -> Option<Vec<usize>> {
    let n = nodes.len();
    let mut indeg = vec![0usize; n]; // number of parents not yet emitted
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in nodes.iter().enumerate() {
        indeg[i] = node.parents.len();
        for &p in &node.parents {
            children[p].push(i);
        }
    }
    let mut q: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut out = Vec::with_capacity(n);
    while let Some(i) = q.pop_front() {
        out.push(i);
        for &c in &children[i] {
            indeg[c] -= 1;
            if indeg[c] == 0 {
                q.push_back(c);
            }
        }
    }
    (out.len() == n).then_some(out)
}

/// Schema assembly state shared between the object and relationship
/// passes.
pub(super) struct Assembled {
    pub builder: SchemaBuilder,
    pub object_origin: Vec<NodeOrigin>,
    pub object_attr_prov: Vec<Vec<AttrProvenance>>,
    pub object_map: HashMap<GObj, ObjectId>,
    /// Integrated object id per lattice node index.
    pub node_ids: Vec<ObjectId>,
    pub pool: NamePool,
    pub rel_origin: Vec<RelOrigin>,
    pub rel_attr_prov: Vec<Vec<AttrProvenance>>,
    pub rel_lattice: Vec<(RelId, RelId)>,
    pub rel_map: HashMap<GRel, RelId>,
}

/// Emit the object classes of the integrated schema from the lattice and
/// the attribute placements.
pub(super) fn assemble(
    catalog: &Catalog,
    lattice: &Lattice,
    placements: Vec<Vec<Placement>>,
    schema_name: &str,
    options: &IntegrationOptions,
) -> Result<Assembled> {
    let mut builder = SchemaBuilder::new(schema_name);
    let mut pool = NamePool::with_overrides(options.rename.clone());
    let n = lattice.nodes.len();
    let mut node_ids = vec![ObjectId::new(0); n];
    let mut object_origin_by_node: Vec<Option<NodeOrigin>> = vec![None; n];
    let mut attr_prov_by_node: Vec<Vec<AttrProvenance>> = vec![Vec::new(); n];

    for &i in &lattice.topo {
        let node = &lattice.nodes[i];
        let name = pool.claim(&node.name);
        let parent_ids: Vec<ObjectId> = node.parents.iter().map(|&p| node_ids[p]).collect();
        let mut ob = if parent_ids.is_empty() {
            builder.entity_set(name)
        } else {
            builder.category(name, parent_ids)
        };
        let mut prov_row = Vec::new();
        // Attribute names must be unique within the object.
        let mut attr_pool = NamePool::default();
        for placement in &placements[i] {
            let attr_name = attr_pool.claim(&placement.name());
            ob = if placement.key {
                ob.attr_key(attr_name, placement.domain.clone())
            } else {
                ob.attr(attr_name, placement.domain.clone())
            };
            prov_row.push(AttrProvenance {
                components: placement.components.clone(),
            });
        }
        let oid = ob.finish();
        node_ids[i] = oid;
        attr_prov_by_node[i] = prov_row;
    }

    // Origins are resolved only now: a derived superclass is emitted
    // before its children (parents-first order), so the children's ids
    // exist only after the loop.
    for (i, node) in lattice.nodes.iter().enumerate() {
        object_origin_by_node[i] = Some(match node.derived_children {
            Some((x, y)) => NodeOrigin::DerivedSuper {
                children: vec![node_ids[x], node_ids[y]],
            },
            None if node.members.len() == 1 => NodeOrigin::Copied(node.members[0]),
            None => NodeOrigin::Merged(node.members.clone()),
        });
    }
    let _ = catalog; // retained in the signature for future name needs

    // Re-order per integrated ObjectId (emission order == topo order).
    let mut object_origin = Vec::with_capacity(n);
    let mut object_attr_prov = Vec::with_capacity(n);
    for &i in &lattice.topo {
        object_origin.push(object_origin_by_node[i].clone().expect("emitted"));
        object_attr_prov.push(std::mem::take(&mut attr_prov_by_node[i]));
    }
    let object_map: HashMap<GObj, ObjectId> = lattice
        .nodes
        .iter()
        .enumerate()
        .flat_map(|(i, node)| node.members.iter().map(move |&m| (m, i)))
        .map(|(m, i)| (m, node_ids[i]))
        .collect();

    Ok(Assembled {
        builder,
        object_origin,
        object_attr_prov,
        object_map,
        node_ids,
        pool,
        rel_origin: Vec::new(),
        rel_attr_prov: Vec::new(),
        rel_lattice: Vec::new(),
        rel_map: HashMap::new(),
    })
}
