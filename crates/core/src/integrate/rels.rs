//! Relationship-set integration — the second lattice of phase 4.
//!
//! "Relationship set integration can be performed in a manner similar to
//! object class integration" (paper §1 phase 4): *equals* merges two
//! relationship sets into an `E_` set (the paper's `E_Stud_Majo`),
//! containment and overlap build a lattice of relationship sets (recorded
//! as [`super::IntegratedSchema::rel_lattice`] edges, since the base ECR
//! model has no sub-relationship construct), and unasserted relationship
//! sets are copied with their participants rebound to the integrated
//! object classes.
//!
//! Merging participants: two legs pair up when their integrated object
//! classes are identical or comparable in the integrated IS-A lattice; the
//! merged leg binds to the more general class (`sc1.Majors(Student, ...)` +
//! `sc2.Majors(Grad_student, ...)` → a leg on `Student`, since
//! `Grad_student ⊆ Student`). Structural constraints widen so the merged
//! set admits every instance either component admitted; a derived (union)
//! relationship set lowers minimums to zero and sums maximums.

use std::collections::HashMap;

use sit_ecr::{Cardinality, ObjectId, ObjectKind, RelId};

use super::names::{derived_rel_name, equivalent_rel_name, merged_attr_name};
use super::objects::Assembled;
use super::{AttrProvenance, ComponentAttrInfo, IntegrationOptions, RelOrigin};
use crate::assertion::Rel5;
use crate::catalog::{Catalog, GAttr, GRel};
use crate::closure::AssertionEngine;
use crate::cluster::Dsu;
use crate::equivalence::{ClassNo, EquivalenceRegistry};
use crate::error::{CoreError, Result};

/// One leg of a relationship set being assembled.
#[derive(Clone, Debug)]
struct Leg {
    object: ObjectId,
    cardinality: Cardinality,
    role: Option<String>,
}

/// One relationship node prior to emission.
#[derive(Clone, Debug)]
struct RelNode {
    members: Vec<GRel>,
    derived_children: Option<(usize, usize)>,
    /// Child → parent lattice edges land on these indexes.
    pp_parents: Vec<usize>,
}

/// Integrate relationship sets into `assembled` (object side already
/// emitted).
pub(super) fn integrate_rels(
    catalog: &Catalog,
    equiv: &EquivalenceRegistry,
    engine: &AssertionEngine<GRel>,
    sa: sit_ecr::SchemaId,
    sb: sit_ecr::SchemaId,
    options: &IntegrationOptions,
    assembled: &mut Assembled,
) -> Result<()> {
    let universe: Vec<GRel> = catalog.rels_of(sa).chain(catalog.rels_of(sb)).collect();
    if universe.is_empty() {
        return Ok(());
    }

    // Ancestor table over the emitted objects (for leg comparability).
    let ancestors = object_ancestors(assembled);

    // 1. Merge `equals` groups.
    let index: HashMap<GRel, usize> = universe.iter().copied().zip(0..).collect();
    let mut dsu = Dsu::new(universe.len());
    for (i, &a) in universe.iter().enumerate() {
        for (j, &b) in universe.iter().enumerate().skip(i + 1) {
            if engine.known(a, b) == Some(Rel5::Eq) {
                dsu.union(i, j);
            }
        }
    }
    let mut groups: HashMap<usize, Vec<GRel>> = HashMap::new();
    for &r in &universe {
        groups.entry(dsu.find(index[&r])).or_default().push(r);
    }
    let mut nodes: Vec<RelNode> = groups
        .into_values()
        .map(|mut members| {
            members.sort_unstable();
            RelNode {
                members,
                derived_children: None,
                pp_parents: Vec::new(),
            }
        })
        .collect();
    nodes.sort_by(|a, b| a.members[0].cmp(&b.members[0]));

    // 2. Node-level relations: lattice edges and derived pairs.
    let n = nodes.len();
    let mut derived_pairs = Vec::new();
    for x in 0..n {
        for y in (x + 1)..n {
            let mut set = crate::assertion::Rel5Set::ALL;
            for &a in &nodes[x].members {
                for &b in &nodes[y].members {
                    set = set.intersect(engine.constraint(a, b));
                }
            }
            match set.singleton() {
                Some(Rel5::Pp) => nodes[x].pp_parents.push(y),
                Some(Rel5::Ppi) => nodes[y].pp_parents.push(x),
                Some(Rel5::Po) => derived_pairs.push((x, y)),
                Some(Rel5::Dr) => {
                    let integrable = nodes[x].members.iter().any(|&a| {
                        nodes[y].members.iter().any(|&b| engine.is_integrable_dr(a, b))
                    });
                    if integrable {
                        derived_pairs.push((x, y));
                    }
                }
                _ => {}
            }
        }
    }
    for (x, y) in derived_pairs {
        let d = nodes.len();
        nodes.push(RelNode {
            members: Vec::new(),
            derived_children: Some((x, y)),
            pp_parents: Vec::new(),
        });
        nodes[x].pp_parents.push(d);
        nodes[y].pp_parents.push(d);
    }

    // 3. Emit base nodes first (derived need their children's legs),
    //    collecting legs/attrs/names per node.
    let total = nodes.len();
    let mut legs_of: Vec<Vec<Leg>> = vec![Vec::new(); total];
    let mut attrs_of: Vec<Vec<RelAttrSlot>> = vec![Vec::new(); total];
    let mut name_of: Vec<String> = vec![String::new(); total];
    for (i, node) in nodes.iter().enumerate() {
        if node.derived_children.is_some() {
            continue;
        }
        let (legs, attrs, name) =
            merge_member_rels(catalog, equiv, assembled, &ancestors, &node.members)?;
        legs_of[i] = legs;
        attrs_of[i] = attrs;
        name_of[i] = name;
    }
    for i in 0..total {
        let Some((x, y)) = nodes[i].derived_children else {
            continue;
        };
        let legs = union_legs(assembled, &ancestors, &legs_of[x], &legs_of[y])
            .ok_or(CoreError::RelLegMismatch {
                a: nodes[x].members[0],
                b: nodes[y].members[0],
            })?;
        legs_of[i] = legs;
        name_of[i] = derived_rel_name(&[name_of[x].as_str(), name_of[y].as_str()]);
        if options.pull_up_common_attrs {
            attrs_of[i] = common_attr_slots(&attrs_of[x], &attrs_of[y]);
        }
    }

    // 4. Emit into the schema builder in node order, then record lattice
    //    edges using the assigned RelIds.
    let mut rel_ids = vec![RelId::new(0); total];
    for i in 0..total {
        let claimed = assembled.pool.claim(&name_of[i]);
        let mut rb = assembled.builder.relationship(claimed);
        for leg in &legs_of[i] {
            rb = match &leg.role {
                Some(role) => rb.participant_role(leg.object, leg.cardinality, role.clone()),
                None => rb.participant(leg.object, leg.cardinality),
            };
        }
        let mut prov_row = Vec::new();
        let mut attr_pool = super::names::NamePool::default();
        for slot in &attrs_of[i] {
            let names: Vec<&str> = slot.components.iter().map(|c| c.attr.name.as_str()).collect();
            let aname = attr_pool.claim(&merged_attr_name(&names));
            rb = if slot.key {
                rb.attr_key(aname, slot.domain.clone())
            } else {
                rb.attr(aname, slot.domain.clone())
            };
            prov_row.push(AttrProvenance {
                components: slot.components.clone(),
            });
        }
        let rid = rb.finish();
        rel_ids[i] = rid;
        assembled.rel_attr_prov.push(prov_row);
        assembled.rel_origin.push(match nodes[i].derived_children {
            Some((x, y)) => RelOrigin::DerivedSuper {
                children: vec![rel_ids[x], rel_ids[y]],
            },
            None if nodes[i].members.len() == 1 => RelOrigin::Copied(nodes[i].members[0]),
            None => RelOrigin::Merged(nodes[i].members.clone()),
        });
        for &m in &nodes[i].members {
            assembled.rel_map.insert(m, rid);
        }
    }
    for (i, node) in nodes.iter().enumerate() {
        for &p in &node.pp_parents {
            assembled.rel_lattice.push((rel_ids[i], rel_ids[p]));
        }
    }
    Ok(())
}

/// An attribute slot of a relationship node.
#[derive(Clone, Debug)]
struct RelAttrSlot {
    class: Option<ClassNo>,
    domain: sit_ecr::Domain,
    key: bool,
    components: Vec<ComponentAttrInfo>,
}

impl RelAttrSlot {
    fn absorb(&mut self, other: &RelAttrSlot) {
        for c in &other.components {
            if !self.components.contains(c) {
                self.domain = self.domain.generalize(&c.attr.domain);
                self.key = self.key && c.attr.is_key();
                self.components.push(c.clone());
            }
        }
    }
}

/// Merge the member relationship sets of one node: pair legs, widen
/// constraints, collapse equivalent attributes, and compute the node name.
fn merge_member_rels(
    catalog: &Catalog,
    equiv: &EquivalenceRegistry,
    assembled: &Assembled,
    ancestors: &[Vec<ObjectId>],
    members: &[GRel],
) -> Result<(Vec<Leg>, Vec<RelAttrSlot>, String)> {
    debug_assert!(!members.is_empty());
    // Start from the first member's legs.
    let first = members[0];
    let fs = catalog.schema(first.schema);
    let frel = fs.relationship(first.rel);
    let mut legs: Vec<Leg> = frel
        .participants
        .iter()
        .map(|p| Leg {
            object: assembled
                .object_map
                .get(&crate::catalog::GObj::new(first.schema, p.object))
                .copied()
                .expect("participant object was integrated"),
            cardinality: p.cardinality,
            role: p.role.clone(),
        })
        .collect();
    for &m in &members[1..] {
        let ms = catalog.schema(m.schema);
        let mrel = ms.relationship(m.rel);
        let mut used = vec![false; legs.len()];
        for p in &mrel.participants {
            let obj = assembled
                .object_map
                .get(&crate::catalog::GObj::new(m.schema, p.object))
                .copied()
                .expect("participant object was integrated");
            // Prefer an exact node match, then a comparable one.
            let exact = legs
                .iter()
                .enumerate()
                .position(|(i, l)| !used[i] && l.object == obj);
            let slot = exact.or_else(|| {
                legs.iter().enumerate().position(|(i, l)| {
                    !used[i] && comparable(ancestors, l.object, obj).is_some()
                })
            });
            match slot {
                Some(i) => {
                    used[i] = true;
                    let general = comparable(ancestors, legs[i].object, obj)
                        .expect("matched legs are comparable");
                    legs[i].object = general;
                    legs[i].cardinality = legs[i].cardinality.widen(&p.cardinality);
                    if legs[i].role.is_none() {
                        legs[i].role = p.role.clone();
                    }
                }
                None => {
                    return Err(CoreError::RelLegMismatch { a: first, b: m });
                }
            }
        }
    }

    // Attributes, collapsed by equivalence class.
    let mut slots: Vec<RelAttrSlot> = Vec::new();
    let mut class_slot: HashMap<ClassNo, usize> = HashMap::new();
    for &m in members {
        let ms = catalog.schema(m.schema);
        let mrel = ms.relationship(m.rel);
        for (aid, attr) in mrel.attributes.iter().enumerate() {
            let ga = GAttr::rel(m.schema, m.rel, sit_ecr::AttrId::new(aid as u32));
            let class = equiv.class_no(ga);
            let info = ComponentAttrInfo {
                schema: ms.name().to_owned(),
                owner: mrel.name.clone(),
                owner_kind: 'R',
                attr: attr.clone(),
            };
            let slot = RelAttrSlot {
                class,
                domain: attr.domain.clone(),
                key: attr.is_key(),
                components: vec![info],
            };
            match class.and_then(|c| class_slot.get(&c).copied()) {
                Some(i) => slots[i].absorb(&slot),
                None => {
                    if let Some(c) = class {
                        class_slot.insert(c, slots.len());
                    }
                    slots.push(slot);
                }
            }
        }
    }

    // Name: original for a copied set, `E_...` for a merge.
    let name = if members.len() == 1 {
        frel.name.clone()
    } else {
        let names: Vec<&str> = members
            .iter()
            .map(|&m| catalog.schema(m.schema).relationship(m.rel).name.as_str())
            .collect();
        let first_participant = frel
            .participants
            .first()
            .map(|p| catalog.schema(first.schema).object(p.object).name.clone())
            .unwrap_or_default();
        equivalent_rel_name(&names, &first_participant)
    };
    Ok((legs, slots, name))
}

/// Legs of a derived (union) relationship set over two children: pair the
/// children's legs, bind to the most specific common superclass (siblings
/// under a derived class bind to that class), lower minimums to zero (an
/// instance of the general class may participate in neither child) and
/// sum maximums.
fn union_legs(
    _assembled: &Assembled,
    ancestors: &[Vec<ObjectId>],
    a: &[Leg],
    b: &[Leg],
) -> Option<Vec<Leg>> {
    if a.len() != b.len() {
        return None;
    }
    let mut used = vec![false; b.len()];
    let mut out = Vec::with_capacity(a.len());
    for la in a {
        let i = b.iter().enumerate().position(|(i, lb)| {
            !used[i] && common_general(ancestors, la.object, lb.object).is_some()
        })?;
        used[i] = true;
        let lb = &b[i];
        let general = common_general(ancestors, la.object, lb.object).expect("matched");
        let max = match (la.cardinality.max, lb.cardinality.max) {
            (Some(x), Some(y)) => Some(x.saturating_add(y)),
            _ => None,
        };
        out.push(Leg {
            object: general,
            cardinality: Cardinality::new(0, max),
            role: la.role.clone().or_else(|| lb.role.clone()),
        });
    }
    Some(out)
}

/// Most specific common superclass of `a` and `b` in the integrated IS-A
/// graph (either object itself when they are comparable, else the deepest
/// shared ancestor — e.g. two classes just put under one derived `D_`
/// parent).
fn common_general(ancestors: &[Vec<ObjectId>], a: ObjectId, b: ObjectId) -> Option<ObjectId> {
    if let Some(g) = comparable(ancestors, a, b) {
        return Some(g);
    }
    let bs: Vec<ObjectId> = std::iter::once(b).chain(ancestors[b.index()].iter().copied()).collect();
    std::iter::once(a)
        .chain(ancestors[a.index()].iter().copied())
        .filter(|x| bs.contains(x))
        // Deepest = the candidate with the most ancestors of its own.
        .max_by_key(|x| ancestors[x.index()].len())
}

/// Attribute slots common (by class) to both children — pull-up for
/// derived relationship sets.
fn common_attr_slots(a: &[RelAttrSlot], b: &[RelAttrSlot]) -> Vec<RelAttrSlot> {
    let mut out = Vec::new();
    for sa in a {
        let Some(c) = sa.class else { continue };
        if let Some(sb) = b.iter().find(|s| s.class == Some(c)) {
            let mut merged = sa.clone();
            merged.absorb(sb);
            out.push(merged);
        }
    }
    out
}

/// If one object equals or (transitively) contains the other in the
/// integrated IS-A graph, return the more general one.
fn comparable(ancestors: &[Vec<ObjectId>], a: ObjectId, b: ObjectId) -> Option<ObjectId> {
    if a == b || ancestors[b.index()].contains(&a) {
        Some(a)
    } else if ancestors[a.index()].contains(&b) {
        Some(b)
    } else {
        None
    }
}

/// Transitive ancestors of each emitted object (index = integrated
/// ObjectId), computed from the builder's category structure.
fn object_ancestors(assembled: &Assembled) -> Vec<Vec<ObjectId>> {
    // Objects were emitted parents-first, so a single pass over category
    // parent lists (which already include derived-superclass edges)
    // accumulates transitive ancestors.
    let node_count = assembled.node_ids.len();
    let mut parents: Vec<Vec<ObjectId>> = vec![Vec::new(); node_count];
    for (i, obj) in assembled.builder.pending_objects().iter().enumerate() {
        if let ObjectKind::Category { parents: ps } = &obj.kind {
            for &p in ps {
                if !parents[i].contains(&p) {
                    parents[i].push(p);
                }
            }
        }
    }
    // Transitive closure (ids are topologically ordered: parents first).
    let mut anc: Vec<Vec<ObjectId>> = vec![Vec::new(); node_count];
    for i in 0..node_count {
        let mut acc: Vec<ObjectId> = Vec::new();
        for &p in &parents[i] {
            if !acc.contains(&p) {
                acc.push(p);
            }
            for &g in &anc[p.index()] {
                if !acc.contains(&g) {
                    acc.push(g);
                }
            }
        }
        anc[i] = acc;
    }
    anc
}
