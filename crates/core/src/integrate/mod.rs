//! Phase 4 — integration proper.
//!
//! Paper §3.5: "Upon completing the third phase, the tool performs
//! integration. This involves creating clusters of entity sets. ... First,
//! entity sets and categories are integrated to form a lattice structure of
//! interdependent object classes. Next, relationship sets are integrated to
//! form lattices of relationship sets. Finally, two lattices are merged to
//! form the integrated schema."
//!
//! Given the catalog, the equivalence registry (phase 2), and the assertion
//! engines (phase 3), [`integrate`] produces an [`IntegratedSchema`]: a
//! plain ECR [`Schema`] plus the provenance metadata the viewer screens
//! (Screens 10–12) and the mapping generator need:
//!
//! * *equals* pairs merge into a single `E_` object class;
//! * *contains* / *contained in* pairs become IS-A (category) edges;
//! * *may be* and *disjoint integrable* pairs generate a derived `D_`
//!   superclass with both classes as categories;
//! * *disjoint non-integrable* pairs stay separate;
//! * equivalent attributes collapse into derived (`D_`) attributes whose
//!   component attributes are recorded exactly as the Component Attribute
//!   Screen displays them.

mod attrs;
mod names;
mod objects;
mod rels;

pub use names::{
    derived_object_name, derived_rel_name, equivalent_object_name, equivalent_rel_name,
    merged_attr_name, trunc4, NamePool,
};

use std::collections::HashMap;

use sit_ecr::{Attribute, ObjectId, RelId, Schema, SchemaId};

use crate::catalog::{Catalog, GObj, GRel};
use crate::closure::AssertionEngine;
use crate::cluster::{clusters, Clusters};
use crate::equivalence::EquivalenceRegistry;
use crate::error::Result;

/// Tunables for one integration run.
#[derive(Clone, Debug, Default)]
pub struct IntegrationOptions {
    /// Name of the integrated schema; defaults to `<a>+<b>`.
    pub schema_name: Option<String>,
    /// When `true`, attributes equivalent across the two children of a
    /// derived (`D_`) superclass are pulled up into the superclass. The
    /// paper's tool leaves them on the children (Screen 12 shows `D_Name`
    /// living on the `Student` category, not on `D_Stud_Facu`), so the
    /// default is `false`; the ablation benchmark measures both.
    pub pull_up_common_attrs: bool,
    /// Rename computed element names (computed → desired), applied before
    /// uniquification.
    pub rename: HashMap<String, String>,
}

/// Provenance of one component attribute — the exact fields of the paper's
/// Component Attribute Screen (Screen 12).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentAttrInfo {
    /// `original Schema Name`.
    pub schema: String,
    /// `original Object Name`.
    pub owner: String,
    /// `original type` — `E`, `C`, or `R`.
    pub owner_kind: char,
    /// The component attribute itself (name, domain, key).
    pub attr: Attribute,
}

/// Provenance of one integrated attribute: the component attributes it was
/// derived from (a single entry for plainly copied attributes).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct AttrProvenance {
    /// Component attributes, in `(schema, object)` order.
    pub components: Vec<ComponentAttrInfo>,
}

impl AttrProvenance {
    /// `true` when the integrated attribute merges several component
    /// attributes (and hence carries the `D_` prefix).
    pub fn is_derived(&self) -> bool {
        self.components.len() > 1
    }
}

/// How an integrated object class came to be.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeOrigin {
    /// Copied from one component schema (possibly with rebound parents).
    Copied(GObj),
    /// `E_` merge of component classes asserted equal.
    Merged(Vec<GObj>),
    /// `D_` derived superclass over the given integrated children.
    DerivedSuper {
        /// Integrated ids of the child classes.
        children: Vec<ObjectId>,
    },
}

impl NodeOrigin {
    /// Component objects directly behind this node (empty for derived).
    pub fn members(&self) -> &[GObj] {
        match self {
            NodeOrigin::Copied(o) => std::slice::from_ref(o),
            NodeOrigin::Merged(v) => v,
            NodeOrigin::DerivedSuper { .. } => &[],
        }
    }
}

/// How an integrated relationship set came to be.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelOrigin {
    /// Copied from one component schema with rebound participants.
    Copied(GRel),
    /// `E_` merge of relationship sets asserted equal.
    Merged(Vec<GRel>),
    /// `D_` derived relationship set over the given integrated children.
    DerivedSuper {
        /// Integrated ids of the child relationship sets.
        children: Vec<RelId>,
    },
}

impl RelOrigin {
    /// Component relationship sets directly behind this node.
    pub fn members(&self) -> &[GRel] {
        match self {
            RelOrigin::Copied(r) => std::slice::from_ref(r),
            RelOrigin::Merged(v) => v,
            RelOrigin::DerivedSuper { .. } => &[],
        }
    }
}

/// The output of phase 4: a valid ECR schema plus full provenance.
#[derive(Clone, Debug)]
pub struct IntegratedSchema {
    /// The integrated schema itself (validated).
    pub schema: Schema,
    /// Origin of each integrated object class (indexed by [`ObjectId`]).
    pub object_origin: Vec<NodeOrigin>,
    /// Provenance of each object attribute:
    /// `object_attr_prov[obj][attr]`.
    pub object_attr_prov: Vec<Vec<AttrProvenance>>,
    /// Origin of each integrated relationship set.
    pub rel_origin: Vec<RelOrigin>,
    /// Provenance of each relationship attribute.
    pub rel_attr_prov: Vec<Vec<AttrProvenance>>,
    /// Relationship lattice edges `(child, parent)` — specialization among
    /// integrated relationship sets ("lattices of relationship sets").
    pub rel_lattice: Vec<(RelId, RelId)>,
    /// Component object → integrated object.
    pub object_map: HashMap<GObj, ObjectId>,
    /// Component relationship set → integrated relationship set.
    pub rel_map: HashMap<GRel, RelId>,
    /// The clusters phase 4 partitioned the object classes into.
    pub object_clusters: Clusters<GObj>,
    /// Names of the two component schemas.
    pub sources: (String, String),
}

impl IntegratedSchema {
    /// Integrated object carrying a component object.
    pub fn node_of(&self, o: GObj) -> Option<ObjectId> {
        self.object_map.get(&o).copied()
    }

    /// Integrated relationship carrying a component relationship set.
    pub fn rel_of(&self, r: GRel) -> Option<RelId> {
        self.rel_map.get(&r).copied()
    }

    /// Objects of the integrated schema whose origin is a derived (`D_`)
    /// superclass.
    pub fn derived_objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.object_origin
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, NodeOrigin::DerivedSuper { .. }))
            .map(|(i, _)| ObjectId::new(i as u32))
    }

    /// Objects whose origin is an `E_` merge.
    pub fn equivalent_objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.object_origin
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, NodeOrigin::Merged(_)))
            .map(|(i, _)| ObjectId::new(i as u32))
    }
}

/// Run phase 4 for the schema pair `(sa, sb)`.
pub fn integrate(
    catalog: &Catalog,
    equiv: &EquivalenceRegistry,
    obj_engine: &AssertionEngine<GObj>,
    rel_engine: &AssertionEngine<GRel>,
    sa: SchemaId,
    sb: SchemaId,
    options: &IntegrationOptions,
) -> Result<IntegratedSchema> {
    let _span = sit_obs::trace::span("integrate");
    if sa == sb {
        return Err(crate::error::CoreError::InconsistentLattice(
            "cannot integrate a schema with itself".to_owned(),
        ));
    }
    let universe: Vec<GObj> = catalog
        .objects_of(sa)
        .chain(catalog.objects_of(sb))
        .collect();
    let object_clusters = clusters(obj_engine, &universe);

    // Object lattice (nodes, IS-A edges, names).
    let lattice = {
        let _span = sit_obs::trace::span("integrate.lattice");
        objects::build_lattice(catalog, obj_engine, &universe)?
    };

    // Attribute placement with absorption and provenance.
    let placements = {
        let _span = sit_obs::trace::span("integrate.attrs");
        attrs::place_attributes(catalog, equiv, &lattice, options)
    };

    // Assemble the object side of the schema.
    let name = options.schema_name.clone().unwrap_or_else(|| {
        format!(
            "{}+{}",
            catalog.schema(sa).name(),
            catalog.schema(sb).name()
        )
    });
    let mut assembled = {
        let _span = sit_obs::trace::span("integrate.assemble");
        objects::assemble(catalog, &lattice, placements, &name, options)?
    };

    // Relationship lattice on top of the assembled objects.
    {
        let _span = sit_obs::trace::span("integrate.rels");
        rels::integrate_rels(catalog, equiv, rel_engine, sa, sb, options, &mut assembled)?;
    }

    let objects::Assembled {
        builder,
        object_origin,
        object_attr_prov,
        object_map,
        rel_origin,
        rel_attr_prov,
        rel_lattice,
        rel_map,
        ..
    } = assembled;

    let schema = builder
        .build()
        .map_err(|e| crate::error::CoreError::InvalidResult(e.to_string()))?;

    Ok(IntegratedSchema {
        schema,
        object_origin,
        object_attr_prov,
        rel_origin,
        rel_attr_prov,
        rel_lattice,
        object_map,
        rel_map,
        object_clusters,
        sources: (
            catalog.schema(sa).name().to_owned(),
            catalog.schema(sb).name().to_owned(),
        ),
    })
}
