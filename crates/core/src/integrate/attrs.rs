//! Attribute placement during integration.
//!
//! Rules (from §2, §3.5 and the Component Attribute Screen):
//!
//! * Within an `E_` merge, attributes in the same equivalence class
//!   collapse into a single derived attribute carrying every component.
//! * Along a containment edge, an attribute of the contained class that is
//!   equivalent to an attribute of a (transitive) container is *absorbed*
//!   into the container's attribute — Screen 12's `D_Name` on `Student`
//!   combines `sc1.Student.Name` with `sc2.Grad_student.Name`; the
//!   contained class keeps only its specific attributes.
//! * Attributes of the two children of a derived superclass are pulled up
//!   into it only when [`IntegrationOptions::pull_up_common_attrs`] is set
//!   (the paper's tool leaves them down).
//! * A derived attribute is a key only when every component is a key, and
//!   its domain is the least generalization of the component domains.

use std::collections::HashMap;

use sit_ecr::{Domain, ObjectKind};

use super::names::merged_attr_name;
use super::objects::Lattice;
use super::{ComponentAttrInfo, IntegrationOptions};
use crate::catalog::{Catalog, GAttr, GObj};
use crate::equivalence::{ClassNo, EquivalenceRegistry};

/// One attribute slot of an integrated object class, before final naming.
#[derive(Clone, Debug)]
pub(super) struct Placement {
    /// Equivalence class of the slot (drives absorption).
    pub class: Option<ClassNo>,
    /// Generalized domain.
    pub domain: Domain,
    /// Key only when every component is a key.
    pub key: bool,
    /// Component provenance, in `(schema, object)` order.
    pub components: Vec<ComponentAttrInfo>,
}

impl Placement {
    /// The integrated attribute name per the paper's `D_` conventions.
    pub fn name(&self) -> String {
        let names: Vec<&str> = self
            .components
            .iter()
            .map(|c| c.attr.name.as_str())
            .collect();
        merged_attr_name(&names)
    }

    fn absorb(&mut self, other: Placement) {
        for c in other.components {
            if !self.components.contains(&c) {
                self.domain = self.domain.generalize(&c.attr.domain);
                self.key = self.key && c.attr.is_key();
                self.components.push(c);
            }
        }
    }
}

/// Compute the attribute slots of every lattice node (indexed like
/// `lattice.nodes`).
pub(super) fn place_attributes(
    catalog: &Catalog,
    equiv: &EquivalenceRegistry,
    lattice: &Lattice,
    options: &IntegrationOptions,
) -> Vec<Vec<Placement>> {
    let n = lattice.nodes.len();
    let mut placed: Vec<Vec<Placement>> = vec![Vec::new(); n];
    // class → nodes (and slot index) where an attribute of that class is
    // already placed.
    let mut class_sites: HashMap<ClassNo, Vec<(usize, usize)>> = HashMap::new();

    for &i in &lattice.topo {
        let node = &lattice.nodes[i];
        let groups = if let Some((x, y)) = node.derived_children {
            if options.pull_up_common_attrs {
                pulled_up_groups(catalog, equiv, lattice, x, y)
            } else {
                Vec::new()
            }
        } else {
            member_groups(catalog, equiv, &node.members)
        };
        let ancestors = lattice.ancestors(i);
        for group in groups {
            // Absorb into the nearest ancestor already holding the class.
            let site = group.class.and_then(|c| {
                let sites = class_sites.get(&c)?;
                ancestors
                    .iter()
                    .find_map(|a| sites.iter().find(|(node, _)| node == a))
                    .copied()
            });
            match site {
                Some((anode, slot)) => {
                    placed[anode][slot].absorb(group);
                }
                None => {
                    let slot = placed[i].len();
                    if let Some(c) = group.class {
                        class_sites.entry(c).or_default().push((i, slot));
                    }
                    placed[i].push(group);
                }
            }
        }
    }

    // Pulled-up classes must not re-place on the children: when pull-up is
    // enabled the children's groups were computed after the derived parent
    // in topo order, so absorption above already routed them upward.
    placed
}

/// Group the attributes of a node's member objects by equivalence class.
fn member_groups(
    catalog: &Catalog,
    equiv: &EquivalenceRegistry,
    members: &[GObj],
) -> Vec<Placement> {
    let mut by_class: Vec<Placement> = Vec::new();
    let mut class_slot: HashMap<ClassNo, usize> = HashMap::new();
    for &m in members {
        let schema = catalog.schema(m.schema);
        let obj = schema.object(m.object);
        for (aid, attr) in obj.attributes.iter().enumerate() {
            let ga = GAttr::object(m.schema, m.object, sit_ecr::AttrId::new(aid as u32));
            let class = equiv.class_no(ga);
            let info = ComponentAttrInfo {
                schema: schema.name().to_owned(),
                owner: obj.name.clone(),
                owner_kind: owner_kind(&obj.kind),
                attr: attr.clone(),
            };
            match class.and_then(|c| class_slot.get(&c).copied()) {
                Some(slot) => by_class[slot].absorb(Placement {
                    class,
                    domain: attr.domain.clone(),
                    key: attr.is_key(),
                    components: vec![info],
                }),
                None => {
                    if let Some(c) = class {
                        class_slot.insert(c, by_class.len());
                    }
                    by_class.push(Placement {
                        class,
                        domain: attr.domain.clone(),
                        key: attr.is_key(),
                        components: vec![info],
                    });
                }
            }
        }
    }
    by_class
}

/// Classes present (via members) in both children of a derived node, as
/// merged placements — the optional pull-up.
fn pulled_up_groups(
    catalog: &Catalog,
    equiv: &EquivalenceRegistry,
    lattice: &Lattice,
    x: usize,
    y: usize,
) -> Vec<Placement> {
    let gx = member_groups(catalog, equiv, &lattice.nodes[x].members);
    let gy = member_groups(catalog, equiv, &lattice.nodes[y].members);
    let mut out = Vec::new();
    for px in gx {
        let Some(c) = px.class else { continue };
        if let Some(py) = gy.iter().find(|p| p.class == Some(c)) {
            let mut merged = px.clone();
            merged.absorb(py.clone());
            out.push(merged);
        }
    }
    out
}

fn owner_kind(kind: &ObjectKind) -> char {
    match kind {
        ObjectKind::EntitySet => 'E',
        ObjectKind::Category { .. } => 'C',
    }
}
