//! Mapping generation and request translation.
//!
//! Phase 4 ends with mappings between each component schema and the
//! integrated schema (paper §1): in the **logical database design** context
//! requests against component schemas (views) are converted into requests
//! against the integrated schema; in the **global schema design** context
//! requests against the integrated (global) schema are mapped into requests
//! against the component schemas. [`Mappings`] supports both directions
//! over the [`query::Query`] request language:
//!
//! * [`Mappings::to_integrated`] — view → integrated (one rewritten query);
//! * [`Mappings::to_components`] — integrated → components (a
//!   [`query::UnionPlan`]: one branch per contributing component, a union
//!   for derived classes, duplicate branches for `E_` merges).
//!
//! Everything is driven by the provenance recorded in
//! [`crate::integrate::IntegratedSchema`], so the mappings are guaranteed
//! to agree with what integration actually did (including attribute
//! absorption: `sc2.Grad_student.Name` maps to `Student.D_Name`, which
//! lives on an ancestor of `Grad_student` in the integrated schema).

pub mod query;

pub use query::{CmpOp, ComponentQuery, Filter, Query, UnionPlan};

use std::collections::HashMap;

use sit_ecr::ObjectId;

use crate::catalog::Catalog;
use crate::error::{CoreError, Result};
use crate::integrate::{IntegratedSchema, NodeOrigin};

/// Component-side attribute key: `(schema name, owner name, attr name)`.
type ComponentAttrKey = (String, String, String);
/// Integrated-side attribute key: `(object name, attr name)`.
type IntegratedAttrKey = (String, String);

/// Bidirectional mappings between component schemas and one integrated
/// schema.
#[derive(Clone, Debug)]
pub struct Mappings {
    /// `(schema name, object name)` → integrated object name.
    object_up: HashMap<(String, String), String>,
    /// `(schema name, owner name, attr name)` → integrated
    /// `(object name, attr name)`.
    attr_up: HashMap<ComponentAttrKey, IntegratedAttrKey>,
    /// Integrated object name → node description.
    nodes: HashMap<String, NodeDesc>,
    /// Integrated `(object name, attr name incl. inherited)` → component
    /// attrs: `(schema, owner, attr name)`.
    attr_down: HashMap<IntegratedAttrKey, Vec<ComponentAttrKey>>,
}

/// Down-translation shape of one integrated object.
#[derive(Clone, Debug)]
enum NodeDesc {
    /// Backed by component objects `(schema name, object name)`;
    /// `equivalent` when they are an `E_` merge of one extension.
    Backed {
        members: Vec<(String, String)>,
        equivalent: bool,
    },
    /// Derived superclass: union of the named integrated children.
    Derived { children: Vec<String> },
}

impl Mappings {
    /// Build the mappings for an integration result. `catalog` must be the
    /// catalog the integration ran against (component names are resolved
    /// through it).
    pub fn new(catalog: &Catalog, integrated: &IntegratedSchema) -> Mappings {
        let schema = &integrated.schema;
        let mut object_up = HashMap::new();
        let mut nodes = HashMap::new();
        for (oid, origin) in integrated.object_origin.iter().enumerate() {
            let oid = ObjectId::new(oid as u32);
            let iname = schema.object(oid).name.clone();
            match origin {
                NodeOrigin::Copied(_) | NodeOrigin::Merged(_) => {
                    let members: Vec<(String, String)> = origin
                        .members()
                        .iter()
                        .map(|&g| {
                            (
                                catalog.schema(g.schema).name().to_owned(),
                                catalog.schema(g.schema).object(g.object).name.clone(),
                            )
                        })
                        .collect();
                    for m in &members {
                        object_up.insert(m.clone(), iname.clone());
                    }
                    nodes.insert(
                        iname,
                        NodeDesc::Backed {
                            equivalent: members.len() > 1,
                            members,
                        },
                    );
                }
                NodeOrigin::DerivedSuper { children } => {
                    let children = children
                        .iter()
                        .map(|&c| schema.object(c).name.clone())
                        .collect();
                    nodes.insert(iname, NodeDesc::Derived { children });
                }
            }
        }

        // Attribute maps from provenance (both directions).
        let mut attr_up = HashMap::new();
        let mut attr_down: HashMap<IntegratedAttrKey, Vec<ComponentAttrKey>> = HashMap::new();
        for (oid, prov_row) in integrated.object_attr_prov.iter().enumerate() {
            let oid = ObjectId::new(oid as u32);
            let obj = schema.object(oid);
            for (aid, prov) in prov_row.iter().enumerate() {
                let aname = obj.attributes[aid].name.clone();
                for c in &prov.components {
                    attr_up.insert(
                        (c.schema.clone(), c.owner.clone(), c.attr.name.clone()),
                        (obj.name.clone(), aname.clone()),
                    );
                    attr_down
                        .entry((obj.name.clone(), aname.clone()))
                        .or_default()
                        .push((c.schema.clone(), c.owner.clone(), c.attr.name.clone()));
                }
            }
        }
        // Relationship attributes participate in up-translation too.
        for (rid, prov_row) in integrated.rel_attr_prov.iter().enumerate() {
            let rid = sit_ecr::RelId::new(rid as u32);
            let rel = schema.relationship(rid);
            for (aid, prov) in prov_row.iter().enumerate() {
                let aname = rel.attributes[aid].name.clone();
                for c in &prov.components {
                    attr_up.insert(
                        (c.schema.clone(), c.owner.clone(), c.attr.name.clone()),
                        (rel.name.clone(), aname.clone()),
                    );
                    attr_down
                        .entry((rel.name.clone(), aname.clone()))
                        .or_default()
                        .push((c.schema.clone(), c.owner.clone(), c.attr.name.clone()));
                }
            }
        }
        // Relationship sets translate by name as well.
        for (g, &rid) in &integrated.rel_map {
            let s = catalog.schema(g.schema);
            object_up.insert(
                (s.name().to_owned(), s.relationship(g.rel).name.clone()),
                schema.relationship(rid).name.clone(),
            );
            nodes
                .entry(schema.relationship(rid).name.clone())
                .or_insert_with(|| NodeDesc::Backed {
                    members: Vec::new(),
                    equivalent: false,
                });
            if let Some(NodeDesc::Backed { members, equivalent }) =
                nodes.get_mut(&schema.relationship(rid).name)
            {
                members.push((s.name().to_owned(), s.relationship(g.rel).name.clone()));
                *equivalent = members.len() > 1;
            }
        }

        Mappings {
            object_up,
            attr_up,
            nodes,
            attr_down,
        }
    }

    /// Render the mappings as the plain-text "data dictionary" the
    /// paper's future-work section wants shared between design tools: one
    /// line per element correspondence, component side → integrated side.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("# mapping dictionary\n");
        let mut objects: Vec<(&(String, String), &String)> = self.object_up.iter().collect();
        objects.sort();
        for ((schema, object), target) in objects {
            let _ = writeln!(out, "object {schema}.{object} -> {target}");
        }
        let mut attrs: Vec<(&ComponentAttrKey, &IntegratedAttrKey)> = self.attr_up.iter().collect();
        attrs.sort();
        for ((schema, owner, attr), (tobj, tattr)) in attrs {
            let _ = writeln!(out, "attr   {schema}.{owner}.{attr} -> {tobj}.{tattr}");
        }
        out
    }

    /// Logical-design direction: rewrite a request against a component
    /// schema (view) into a request against the integrated schema.
    pub fn to_integrated(&self, schema: &str, q: &Query) -> Result<Query> {
        let key = (schema.to_owned(), q.object.clone());
        let target = self
            .object_up
            .get(&key)
            .ok_or_else(|| CoreError::UnknownName(format!("{schema}.{}", q.object)))?;
        let map_attr = |attr: &str| -> Result<String> {
            self.attr_up
                .get(&(schema.to_owned(), q.object.clone(), attr.to_owned()))
                .map(|(_, a)| a.clone())
                .ok_or_else(|| {
                    CoreError::UnknownName(format!("{schema}.{}.{attr}", q.object))
                })
        };
        let project = q
            .project
            .iter()
            .map(|a| map_attr(a))
            .collect::<Result<Vec<_>>>()?;
        let filter = match &q.filter {
            Some(f) => Some(Filter {
                attr: map_attr(&f.attr)?,
                op: f.op,
                value: f.value.clone(),
            }),
            None => None,
        };
        Ok(Query {
            object: target.clone(),
            project,
            filter,
        })
    }

    /// Global-design direction: map a request against the integrated
    /// (global) schema into requests against the component schemas.
    pub fn to_components(&self, q: &Query) -> Result<UnionPlan> {
        let mut branches = Vec::new();
        let equivalent = self.expand(&q.object, q, &mut branches)?;
        Ok(UnionPlan {
            branches,
            equivalent,
        })
    }

    fn expand(
        &self,
        object: &str,
        q: &Query,
        branches: &mut Vec<ComponentQuery>,
    ) -> Result<bool> {
        match self.nodes.get(object) {
            None => Err(CoreError::UnknownName(object.to_owned())),
            Some(NodeDesc::Derived { children }) => {
                for child in children {
                    self.expand(child, q, branches)?;
                }
                Ok(false)
            }
            Some(NodeDesc::Backed { members, equivalent }) => {
                for (schema, owner) in members {
                    branches.push(self.branch(schema, owner, object, q));
                }
                Ok(*equivalent && members.len() > 1)
            }
        }
    }

    /// Build the branch for one component member: each projected
    /// integrated attribute maps back through `attr_down` to the member's
    /// own attribute when it contributed one.
    fn branch(&self, schema: &str, owner: &str, object: &str, q: &Query) -> ComponentQuery {
        let mut project = Vec::new();
        let mut missing = Vec::new();
        let resolve = |attr: &str| -> Option<String> {
            self.attr_down
                .get(&(object.to_owned(), attr.to_owned()))
                .and_then(|comps| {
                    comps
                        .iter()
                        .find(|(s, o, _)| s == schema && o == owner)
                        .or_else(|| comps.iter().find(|(s, _, _)| s == schema))
                })
                .map(|(_, _, a)| a.clone())
        };
        for attr in &q.project {
            match resolve(attr) {
                Some(a) => project.push(a),
                None => missing.push(attr.clone()),
            }
        }
        let filter = q.filter.as_ref().and_then(|f| {
            resolve(&f.attr).map(|attr| Filter {
                attr,
                op: f.op,
                value: f.value.clone(),
            })
        });
        ComponentQuery {
            schema: schema.to_owned(),
            query: Query {
                object: owner.to_owned(),
                project,
                filter,
            },
            missing,
        }
    }
}
