//! A minimal query language used to exercise the generated mappings.
//!
//! The paper (phase 4): "Following integration, mappings between each
//! component schema and the integrated schema are generated. Mappings are
//! used to translate requests in an operational system after integration."
//! To make the mappings testable we define the smallest request shape that
//! demonstrates both translation directions: project a set of attributes of
//! one object class, optionally filtered by a comparison on one attribute.

use std::fmt;

/// Comparison operators for [`Filter`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A selection predicate: `attr op literal`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Filter {
    /// Attribute the predicate tests.
    pub attr: String,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal value (kept textual; the engine never evaluates it).
    pub value: String,
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attr, self.op, self.value)
    }
}

/// A request against one schema: `select <project> from <object>
/// [where <filter>]`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    /// Target object class (or relationship set) name.
    pub object: String,
    /// Projected attribute names.
    pub project: Vec<String>,
    /// Optional selection.
    pub filter: Option<Filter>,
}

impl Query {
    /// Projection-only query.
    pub fn select(object: impl Into<String>, project: &[&str]) -> Self {
        Self {
            object: object.into(),
            project: project.iter().map(|s| (*s).to_owned()).collect(),
            filter: None,
        }
    }

    /// Attach a filter.
    pub fn filtered(mut self, attr: impl Into<String>, op: CmpOp, value: impl Into<String>) -> Self {
        self.filter = Some(Filter {
            attr: attr.into(),
            op,
            value: value.into(),
        });
        self
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select {} from {}", self.project.join(", "), self.object)?;
        if let Some(filter) = &self.filter {
            write!(f, " where {filter}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Query {
    type Err = String;

    /// Parse `select a, b from X [where c OP value]` (case-insensitive
    /// keywords; the value is kept verbatim).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_lowercase();
        let sel = lower
            .find("select")
            .ok_or_else(|| "expected `select`".to_owned())?;
        let from = lower
            .find(" from ")
            .ok_or_else(|| "expected `from`".to_owned())?;
        if from < sel + 6 {
            return Err("`from` before the projection".to_owned());
        }
        let project: Vec<String> = s[sel + 6..from]
            .split(',')
            .map(|p| p.trim().to_owned())
            .filter(|p| !p.is_empty())
            .collect();
        if project.is_empty() {
            return Err("empty projection".to_owned());
        }
        let rest = &s[from + 6..];
        let (object, filter) = match rest.to_lowercase().find(" where ") {
            Some(w) => {
                let object = rest[..w].trim().to_owned();
                let cond = rest[w + 7..].trim();
                let (attr, op, value) = parse_condition(cond)?;
                (object, Some(Filter { attr, op, value }))
            }
            None => (rest.trim().to_owned(), None),
        };
        if object.is_empty() {
            return Err("empty target".to_owned());
        }
        Ok(Query {
            object,
            project,
            filter,
        })
    }
}

fn parse_condition(cond: &str) -> Result<(String, CmpOp, String), String> {
    // Longest operators first so `<=` wins over `<`.
    for (sym, op) in [
        ("<=", CmpOp::Le),
        (">=", CmpOp::Ge),
        ("<>", CmpOp::Ne),
        ("=", CmpOp::Eq),
        ("<", CmpOp::Lt),
        (">", CmpOp::Gt),
    ] {
        if let Some((attr, value)) = cond.split_once(sym) {
            let attr = attr.trim();
            let value = value.trim();
            if attr.is_empty() || value.is_empty() {
                return Err(format!("incomplete condition `{cond}`"));
            }
            return Ok((attr.to_owned(), op, value.to_owned()));
        }
    }
    Err(format!("no comparison operator in `{cond}`"))
}

/// One branch of a translated global request: the component schema to ask
/// and the query to run there. `missing` lists projected attributes the
/// component cannot supply (the operational system would return nulls).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ComponentQuery {
    /// Component schema name.
    pub schema: String,
    /// The rewritten query.
    pub query: Query,
    /// Projected attributes with no counterpart in this component.
    pub missing: Vec<String>,
}

/// A translated global request: the union of the branch results answers
/// the original query. When `equivalent` is `true` the branches hold the
/// same extension (an `E_` merge), so any single branch suffices.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnionPlan {
    /// The branches to union.
    pub branches: Vec<ComponentQuery>,
    /// `true` when branches are duplicates of one extension.
    pub equivalent: bool,
}

impl fmt::Display for UnionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let connector = if self.equivalent { "≡" } else { "∪" };
        for (i, b) in self.branches.iter().enumerate() {
            if i > 0 {
                write!(f, "\n{connector} ")?;
            }
            write!(f, "[{}] {}", b.schema, b.query)?;
            if !b.missing.is_empty() {
                write!(f, " (missing: {})", b.missing.join(", "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_display() {
        let q = Query::select("Student", &["Name", "GPA"]).filtered("GPA", CmpOp::Gt, "3.5");
        assert_eq!(q.to_string(), "select Name, GPA from Student where GPA > 3.5");
    }

    #[test]
    fn union_plan_display() {
        let plan = UnionPlan {
            branches: vec![
                ComponentQuery {
                    schema: "sc1".into(),
                    query: Query::select("Student", &["Name"]),
                    missing: vec![],
                },
                ComponentQuery {
                    schema: "sc2".into(),
                    query: Query::select("Grad_student", &["Name"]),
                    missing: vec!["Office".into()],
                },
            ],
            equivalent: false,
        };
        let s = plan.to_string();
        assert!(s.contains("[sc1] select Name from Student"), "{s}");
        assert!(s.contains("∪ [sc2]"), "{s}");
        assert!(s.contains("missing: Office"), "{s}");
    }

    #[test]
    fn parse_roundtrips_display() {
        for text in [
            "select Name from Student",
            "select Name, GPA from Student where GPA > 3.5",
            "select D_Name from D_Stud_Facu where D_Name = 'Smith'",
        ] {
            let q: Query = text.parse().unwrap();
            assert_eq!(q.to_string(), text);
        }
    }

    #[test]
    fn parse_accepts_keyword_case_and_spacing() {
        let q: Query = "SELECT Name , GPA FROM Student WHERE GPA <= 4".parse().unwrap();
        assert_eq!(q.project, vec!["Name", "GPA"]);
        assert_eq!(q.object, "Student");
        let f = q.filter.unwrap();
        assert_eq!((f.attr.as_str(), f.op, f.value.as_str()), ("GPA", CmpOp::Le, "4"));
    }

    #[test]
    fn parse_rejects_malformed_queries() {
        assert!("Name from Student".parse::<Query>().is_err());
        assert!("select from Student".parse::<Query>().is_err());
        assert!("select Name from".parse::<Query>().is_err());
        assert!("select Name from X where GPA".parse::<Query>().is_err());
        assert!("select Name from X where = 3".parse::<Query>().is_err());
    }

    #[test]
    fn cmp_ops_render() {
        for (op, s) in [
            (CmpOp::Eq, "="),
            (CmpOp::Ne, "<>"),
            (CmpOp::Lt, "<"),
            (CmpOp::Le, "<="),
            (CmpOp::Gt, ">"),
            (CmpOp::Ge, ">="),
        ] {
            assert_eq!(op.to_string(), s);
        }
    }
}
