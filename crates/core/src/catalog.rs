//! The catalog of component schemas registered in an integration session,
//! and globally qualified element references.
//!
//! Phase 1 of the methodology ("schema collection") ends with a set of named
//! component schemas. The catalog owns them, assigns [`SchemaId`]s, and
//! resolves the `schema.object.attribute` dotted names the tool's screens
//! use.

use std::fmt;

use sit_ecr::{AttrId, AttrOwner, Attribute, ObjectId, RelId, Schema, SchemaId};

use crate::error::{CoreError, Result};

/// Globally qualified object class: `(schema, object)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GObj {
    /// Owning schema.
    pub schema: SchemaId,
    /// Object class within the schema.
    pub object: ObjectId,
}

impl GObj {
    /// Construct from parts.
    pub const fn new(schema: SchemaId, object: ObjectId) -> Self {
        Self { schema, object }
    }
}

impl fmt::Display for GObj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.schema, self.object)
    }
}

/// Globally qualified relationship set: `(schema, relationship)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GRel {
    /// Owning schema.
    pub schema: SchemaId,
    /// Relationship set within the schema.
    pub rel: RelId,
}

impl GRel {
    /// Construct from parts.
    pub const fn new(schema: SchemaId, rel: RelId) -> Self {
        Self { schema, rel }
    }
}

impl fmt::Display for GRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.schema, self.rel)
    }
}

/// Globally qualified attribute: `(schema, owner, attribute)` — the unit
/// the ACS matrix is indexed by.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GAttr {
    /// Owning schema.
    pub schema: SchemaId,
    /// Owning object class or relationship set.
    pub owner: AttrOwner,
    /// The attribute within its owner.
    pub attr: AttrId,
}

impl GAttr {
    /// Construct from parts.
    pub const fn new(schema: SchemaId, owner: AttrOwner, attr: AttrId) -> Self {
        Self {
            schema,
            owner,
            attr,
        }
    }

    /// Attribute of an object class.
    pub const fn object(schema: SchemaId, object: ObjectId, attr: AttrId) -> Self {
        Self {
            schema,
            owner: AttrOwner::Object(object),
            attr,
        }
    }

    /// Attribute of a relationship set.
    pub const fn rel(schema: SchemaId, rel: RelId, attr: AttrId) -> Self {
        Self {
            schema,
            owner: AttrOwner::Rel(rel),
            attr,
        }
    }
}

/// Ordered collection of the session's component schemas.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    schemas: Vec<Schema>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a schema; names must be unique across the session.
    pub fn add(&mut self, schema: Schema) -> Result<SchemaId> {
        if self.by_name(schema.name()).is_some() {
            return Err(CoreError::DuplicateSchema(schema.name().to_owned()));
        }
        self.schemas.push(schema);
        Ok(SchemaId::new((self.schemas.len() - 1) as u32))
    }

    /// Number of registered schemas.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// `true` when no schema is registered.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Schema by id (panics when out of range — ids only come from `add`).
    pub fn schema(&self, id: SchemaId) -> &Schema {
        &self.schemas[id.index()]
    }

    /// Schema by id, if present.
    pub fn try_schema(&self, id: SchemaId) -> Option<&Schema> {
        self.schemas.get(id.index())
    }

    /// Resolve a schema name.
    pub fn by_name(&self, name: &str) -> Option<SchemaId> {
        self.schemas
            .iter()
            .position(|s| s.name() == name)
            .map(|i| SchemaId::new(i as u32))
    }

    /// All schema ids in registration order.
    pub fn schema_ids(&self) -> impl Iterator<Item = SchemaId> {
        (0..self.schemas.len() as u32).map(SchemaId::new)
    }

    /// Iterate `(id, schema)` pairs.
    pub fn schemas(&self) -> impl Iterator<Item = (SchemaId, &Schema)> {
        self.schemas
            .iter()
            .enumerate()
            .map(|(i, s)| (SchemaId::new(i as u32), s))
    }

    /// All object classes of one schema, globally qualified.
    pub fn objects_of(&self, schema: SchemaId) -> impl Iterator<Item = GObj> + '_ {
        self.schema(schema)
            .object_ids()
            .map(move |o| GObj::new(schema, o))
    }

    /// All relationship sets of one schema, globally qualified.
    pub fn rels_of(&self, schema: SchemaId) -> impl Iterator<Item = GRel> + '_ {
        self.schema(schema)
            .rel_ids()
            .map(move |r| GRel::new(schema, r))
    }

    /// All attributes of one schema in definition order: object attributes
    /// first (object order), then relationship attributes — the
    /// registration order that reproduces the paper's `Eq_class #`
    /// numbering on Screen 7.
    pub fn attrs_of(&self, schema: SchemaId) -> Vec<GAttr> {
        let s = self.schema(schema);
        let mut out = Vec::new();
        for (oid, obj) in s.objects() {
            for aid in obj.attr_ids() {
                out.push(GAttr::object(schema, oid, aid));
            }
        }
        for (rid, rel) in s.relationships() {
            for i in 0..rel.attr_count() as u32 {
                out.push(GAttr::rel(schema, rid, AttrId::new(i)));
            }
        }
        out
    }

    /// Resolve `schema.object`.
    pub fn object_named(&self, schema: &str, object: &str) -> Result<GObj> {
        let sid = self
            .by_name(schema)
            .ok_or_else(|| CoreError::UnknownName(schema.to_owned()))?;
        let oid = self
            .schema(sid)
            .object_by_name(object)
            .ok_or_else(|| CoreError::UnknownName(format!("{schema}.{object}")))?;
        Ok(GObj::new(sid, oid))
    }

    /// Resolve `schema.relationship`.
    pub fn rel_named(&self, schema: &str, rel: &str) -> Result<GRel> {
        let sid = self
            .by_name(schema)
            .ok_or_else(|| CoreError::UnknownName(schema.to_owned()))?;
        let rid = self
            .schema(sid)
            .rel_by_name(rel)
            .ok_or_else(|| CoreError::UnknownName(format!("{schema}.{rel}")))?;
        Ok(GRel::new(sid, rid))
    }

    /// Resolve `schema.owner.attr` where `owner` may be an object class or
    /// a relationship set.
    pub fn attr_named(&self, schema: &str, owner: &str, attr: &str) -> Result<GAttr> {
        let sid = self
            .by_name(schema)
            .ok_or_else(|| CoreError::UnknownName(schema.to_owned()))?;
        let s = self.schema(sid);
        if let Some(oid) = s.object_by_name(owner) {
            let (aid, _) = s
                .object(oid)
                .attr_by_name(attr)
                .ok_or_else(|| CoreError::UnknownName(format!("{schema}.{owner}.{attr}")))?;
            return Ok(GAttr::object(sid, oid, aid));
        }
        if let Some(rid) = s.rel_by_name(owner) {
            let (aid, _) = s
                .relationship(rid)
                .attr_by_name(attr)
                .ok_or_else(|| CoreError::UnknownName(format!("{schema}.{owner}.{attr}")))?;
            return Ok(GAttr::rel(sid, rid, aid));
        }
        Err(CoreError::UnknownName(format!("{schema}.{owner}")))
    }

    /// The attribute behind a [`GAttr`].
    pub fn attr(&self, a: GAttr) -> Result<&Attribute> {
        self.try_schema(a.schema)
            .and_then(|s| s.attr_of(a.owner, a.attr))
            .ok_or_else(|| CoreError::UnknownElement(format!("{}.{:?}.{}", a.schema, a.owner, a.attr)))
    }

    /// Dotted display name `schema.Object` of an object class.
    pub fn obj_display(&self, o: GObj) -> String {
        match self.try_schema(o.schema).and_then(|s| s.try_object(o.object)) {
            Some(obj) => format!("{}.{}", self.schema(o.schema).name(), obj.name),
            None => o.to_string(),
        }
    }

    /// Dotted display name `schema.Rel` of a relationship set.
    pub fn rel_display(&self, r: GRel) -> String {
        match self
            .try_schema(r.schema)
            .and_then(|s| s.try_relationship(r.rel))
        {
            Some(rel) => format!("{}.{}", self.schema(r.schema).name(), rel.name),
            None => r.to_string(),
        }
    }

    /// Dotted display name `schema.Owner.attr` of an attribute.
    pub fn attr_display(&self, a: GAttr) -> String {
        let Some(s) = self.try_schema(a.schema) else {
            return format!("{}.?", a.schema);
        };
        let owner = s.owner_name(a.owner).unwrap_or("?");
        let attr = s
            .attr_of(a.owner, a.attr)
            .map(|x| x.name.as_str())
            .unwrap_or("?");
        format!("{}.{owner}.{attr}", s.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sit_ecr::fixtures;

    fn cat() -> Catalog {
        let mut c = Catalog::new();
        c.add(fixtures::sc1()).unwrap();
        c.add(fixtures::sc2()).unwrap();
        c
    }

    #[test]
    fn add_and_lookup() {
        let c = cat();
        assert_eq!(c.len(), 2);
        let sc1 = c.by_name("sc1").unwrap();
        assert_eq!(c.schema(sc1).name(), "sc1");
        assert!(c.by_name("nope").is_none());
    }

    #[test]
    fn duplicate_schema_rejected() {
        let mut c = cat();
        assert!(matches!(
            c.add(fixtures::sc1()),
            Err(CoreError::DuplicateSchema(_))
        ));
    }

    #[test]
    fn name_resolution() {
        let c = cat();
        let student = c.object_named("sc1", "Student").unwrap();
        assert_eq!(c.obj_display(student), "sc1.Student");
        let majors = c.rel_named("sc2", "Majors").unwrap();
        assert_eq!(c.rel_display(majors), "sc2.Majors");
        let gpa = c.attr_named("sc1", "Student", "GPA").unwrap();
        assert_eq!(c.attr_display(gpa), "sc1.Student.GPA");
        let since = c.attr_named("sc1", "Majors", "Since").unwrap();
        assert!(matches!(since.owner, AttrOwner::Rel(_)));
        assert!(c.object_named("sc1", "Ghost").is_err());
        assert!(c.attr_named("sc1", "Student", "Ghost").is_err());
        assert!(c.attr_named("ghost", "Student", "Name").is_err());
    }

    #[test]
    fn attrs_of_matches_screen7_numbering_order() {
        let c = cat();
        let sc2 = c.by_name("sc2").unwrap();
        let attrs = c.attrs_of(sc2);
        // sc2's first attributes are Grad_student's Name, GPA, Support_type.
        let names: Vec<String> = attrs.iter().take(3).map(|&a| c.attr_display(a)).collect();
        assert_eq!(
            names,
            vec![
                "sc2.Grad_student.Name",
                "sc2.Grad_student.GPA",
                "sc2.Grad_student.Support_type"
            ]
        );
        // Relationship attributes come after all object attributes.
        let last = attrs.last().copied().unwrap();
        assert!(matches!(last.owner, AttrOwner::Rel(_)));
    }

    #[test]
    fn attr_dereference() {
        let c = cat();
        let name = c.attr_named("sc2", "Faculty", "Name").unwrap();
        let a = c.attr(name).unwrap();
        assert!(a.is_key());
    }
}
