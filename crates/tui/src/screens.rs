//! Render functions for the thirteen screens, laid out as in the paper.
//!
//! Each function is pure: screen data in, [`Frame`] out. The [`crate::app`]
//! state machine owns the data and the transitions; keeping rendering
//! separate makes every screen golden-testable on its own.

use crate::screen::{Frame, ListWindow};

/// Standard chrome: border, centered title block, and a rule under it.
fn chrome(title: &str, subtitle: &str) -> Frame {
    let mut f = Frame::new();
    f.border();
    f.put_centered(1, title);
    if !subtitle.is_empty() {
        f.put_centered(2, &format!("< {subtitle} >"));
    }
    f.hline(3);
    f
}

fn prompt(f: &mut Frame, text: &str) {
    let row = f.height() - 2;
    f.hline(row - 1);
    f.put(row, 2, text);
}

/// Screen 1 — the main menu. "The six tasks in the main menu closely
/// follow the four phases of schema integration methodology."
pub fn main_menu() -> Frame {
    let mut f = chrome("SCHEMA INTEGRATION TOOL", "Main Menu");
    let tasks = [
        "1.  Collect schema definitions",
        "2.  Specify equivalence among attributes of object classes",
        "3.  Specify assertions between object classes",
        "4.  Specify equivalence among attributes of relationship sets",
        "5.  Specify assertions between relationship sets",
        "6.  View the results of integration",
    ];
    for (i, t) in tasks.iter().enumerate() {
        f.put(5 + 2 * i, 8, t);
    }
    prompt(&mut f, "Choose a task (1-6), or (E)xit =>");
    f
}

/// Screen 2 — Schema Name Collection.
pub fn schema_name(names: &[String], pending: Option<&str>) -> Frame {
    let mut f = chrome("SCHEMA COLLECTION", "Schema Name Collection Screen");
    f.put(5, 4, "Schema Names");
    f.hline(6);
    for (i, n) in names.iter().enumerate().take(12) {
        f.put(7 + i, 4, &format!("{}> {n}", i + 1));
    }
    match pending {
        Some(question) => prompt(&mut f, question),
        None => prompt(
            &mut f,
            "Choose: (A)dd (D)elete (U)pdate (E)xit =>",
        ),
    }
    f
}

/// One row of Screen 3.
#[derive(Clone, Debug)]
pub struct StructureRow {
    /// Structure name.
    pub name: String,
    /// `e`, `c`, or `r`.
    pub kind: char,
    /// Number of attributes.
    pub attrs: usize,
}

/// Screen 3 — Structure Information Collection.
pub fn structure_info(
    schema: &str,
    rows: &[StructureRow],
    win: &ListWindow,
    pending: Option<&str>,
) -> Frame {
    let mut f = chrome("SCHEMA COLLECTION", "Structure Information Collection Screen");
    f.put(4, 4, &format!("SCHEMA NAME: {schema}"));
    f.columns(6, &[4, 30, 48], &["Object Name", "Type (E/C/R)", "# of attributes"]);
    f.hline(7);
    for (line, i) in win.visible(rows.len()).enumerate() {
        let r = &rows[i];
        f.columns(
            8 + line,
            &[4, 30, 48],
            &[
                &format!("{}> {}", i + 1, r.name),
                &r.kind.to_string(),
                &r.attrs.to_string(),
            ],
        );
    }
    match pending {
        Some(q) => prompt(&mut f, q),
        None => prompt(
            &mut f,
            "Choose: (S)croll (A)dd (D)elete (U)pdate (E)xit =>",
        ),
    }
    f
}

/// Screen 4 — Relationship Information Collection.
pub fn relationship_info(
    schema: &str,
    rel: &str,
    legs: &[(String, String)],
    pending: Option<&str>,
) -> Frame {
    let mut f = chrome(
        "SCHEMA COLLECTION",
        "Relationship Information Collection Screen",
    );
    f.put(4, 4, &format!("SCHEMA NAME: {schema}   RELATIONSHIP NAME: {rel}"));
    f.columns(6, &[4, 40], &["Participating Object", "Cardinality (min,max)"]);
    f.hline(7);
    for (i, (obj, card)) in legs.iter().enumerate().take(10) {
        f.columns(8 + i, &[4, 40], &[&format!("{}> {obj}", i + 1), card]);
    }
    match pending {
        Some(q) => prompt(&mut f, q),
        None => prompt(&mut f, "Choose: (A)dd (E)xit =>"),
    }
    f
}

/// Screen 5 — Attribute Information Collection.
pub fn attribute_info(
    schema: &str,
    owner: &str,
    kind: char,
    rows: &[(String, String, char)],
    pending: Option<&str>,
) -> Frame {
    let mut f = chrome("SCHEMA COLLECTION", "Attribute Information Collection Screen");
    f.put(
        4,
        4,
        &format!("SCHEMA NAME: {schema}   OBJECT NAME: {owner}   TYPE: {kind}"),
    );
    f.columns(6, &[4, 34, 58], &["Attribute Name", "Domain", "Key (y/n)"]);
    f.hline(7);
    for (i, (name, domain, key)) in rows.iter().enumerate().take(10) {
        f.columns(
            8 + i,
            &[4, 34, 58],
            &[&format!("{}> {name}", i + 1), domain, &key.to_string()],
        );
    }
    match pending {
        Some(q) => prompt(&mut f, q),
        None => prompt(&mut f, "Choose: (S)croll (A)dd (D)elete (E)xit =>"),
    }
    f
}

/// Category Information Collection (for structures of type `c`).
pub fn category_info(schema: &str, category: &str, parents: &[String], pending: Option<&str>) -> Frame {
    let mut f = chrome("SCHEMA COLLECTION", "Category Information Collection Screen");
    f.put(4, 4, &format!("SCHEMA NAME: {schema}   CATEGORY NAME: {category}"));
    f.put(6, 4, "Connected entities and categories:");
    f.hline(7);
    for (i, p) in parents.iter().enumerate().take(10) {
        f.put(8 + i, 4, &format!("{}> {p}", i + 1));
    }
    match pending {
        Some(q) => prompt(&mut f, q),
        None => prompt(&mut f, "Choose: (A)dd (E)xit =>"),
    }
    f
}

/// Schema Name Selection (phase 2 entry).
pub fn schema_select(names: &[String], pending: Option<&str>) -> Frame {
    let mut f = chrome("EQUIVALENCE SPECIFICATION", "Schema Name Selection Screen");
    f.put(5, 4, "Defined schemas:");
    for (i, n) in names.iter().enumerate().take(12) {
        f.put(7 + i, 6, &format!("{}> {n}", i + 1));
    }
    match pending {
        Some(q) => prompt(&mut f, q),
        None => prompt(&mut f, "Enter the two schema names to integrate =>"),
    }
    f
}

/// Screen 6 — Entity/Category Name Selection.
pub fn object_select(
    s1: &str,
    objs1: &[(String, char)],
    s2: &str,
    objs2: &[(String, char)],
    pending: Option<&str>,
) -> Frame {
    let mut f = chrome("EQUIVALENCE SPECIFICATION", "Entity/Category Name Selection Screen");
    f.columns(5, &[6, 42], &[&format!("schema: {s1}"), &format!("schema: {s2}")]);
    f.hline(6);
    let rows = objs1.len().max(objs2.len()).min(12);
    for i in 0..rows {
        if let Some((n, k)) = objs1.get(i) {
            f.put(7 + i, 6, &format!("{}> {n} ({k})", i + 1));
        }
        if let Some((n, k)) = objs2.get(i) {
            f.put(7 + i, 42, &format!("{}> {n} ({k})", i + 1));
        }
    }
    match pending {
        Some(q) => prompt(&mut f, q),
        None => prompt(&mut f, "Pick one object from each schema (name name), or (E)xit =>"),
    }
    f
}

/// Screen 7 — Equivalence Class Creation and Deletion.
#[allow(clippy::too_many_arguments)]
pub fn equivalence(
    o1: &str,
    rows1: &[(String, u32)],
    o2: &str,
    rows2: &[(String, u32)],
    pending: Option<&str>,
) -> Frame {
    let mut f = chrome(
        "EQUIVALENCE SPECIFICATION",
        "Equivalence Class Creation and Deletion Screen",
    );
    f.columns(4, &[4, 42], &[&format!("(schema.object1) {o1}"), &format!("(schema.object2) {o2}")]);
    f.columns(6, &[4, 24, 42, 62], &["Attribute Name", "Eq_class #", "Attribute Name", "Eq_class #"]);
    f.hline(7);
    let rows = rows1.len().max(rows2.len()).min(10);
    for i in 0..rows {
        if let Some((name, class)) = rows1.get(i) {
            f.columns(
                8 + i,
                &[4, 24],
                &[&format!("{}> {name}", i + 1), &class.to_string()],
            );
        }
        if let Some((name, class)) = rows2.get(i) {
            f.columns(
                8 + i,
                &[42, 62],
                &[&format!("{}> {name}", i + 1), &class.to_string()],
            );
        }
    }
    match pending {
        Some(q) => prompt(&mut f, q),
        None => prompt(
            &mut f,
            "(S)croll (A)dd or (D)elete from equiv. class (E)xit =>",
        ),
    }
    f
}

/// One row of Screen 8.
#[derive(Clone, Debug)]
pub struct AssertionRow {
    /// `Schema_Name1.Obj_Class1`.
    pub left: String,
    /// `Schema_Name2.Obj_Class2`.
    pub right: String,
    /// The attribute ratio.
    pub ratio: f64,
    /// The code entered so far, if any.
    pub entered: Option<u8>,
}

/// The assertion-code legend shared by Screens 8 and 9.
fn assertion_legend(f: &mut Frame, start_row: usize) {
    let lines = [
        "1 - OB_CL_name_1 'equals' OB_CL_name_2",
        "2 - OB_CL_name_1 'contained in' OB_CL_name_2",
        "3 - OB_CL_name_1 'contains' OB_CL_name_2",
        "4 - OB_CL_name_1 and OB_CL_name_2 are disjoint but integratable",
        "5 - OB_CL_name_1 and OB_CL_name_2 may be integratable",
        "0 - OB_CL_name_1 and OB_CL_name_2 are disjoint & non-integratable",
    ];
    for (i, l) in lines.iter().enumerate() {
        f.put(start_row + i, 4, l);
    }
}

/// Screen 8 — Assertion Collection For Object Pairs.
pub fn assertion_collection(rows: &[AssertionRow], current: usize, rels: bool) -> Frame {
    let what = if rels { "Relationship Pairs" } else { "Object Pairs" };
    let mut f = chrome(
        "ASSERTION SPECIFICATION",
        &format!("Assertion Collection For {what} Screen"),
    );
    f.columns(
        5,
        &[2, 26, 50, 62],
        &["Schema_Name1.Obj_Class1", "Schema_Name2.Obj_Class2", "ATTRIBUTE", "ENTER"],
    );
    f.columns(6, &[50, 62], &["RATIO", "ASSERTION"]);
    f.hline(7);
    for (i, r) in rows.iter().enumerate().take(6) {
        // The paper prints `=>` before every entered code; the current
        // row shows a bare `=>` awaiting input.
        let entered = match (r.entered, i == current) {
            (Some(c), _) => format!("=>{c}"),
            (None, true) => "=>".to_owned(),
            (None, false) => String::new(),
        };
        f.columns(
            8 + i,
            &[2, 26, 50, 62],
            &[&r.left, &r.right, &format!("{:.4}", r.ratio), &entered],
        );
    }
    assertion_legend(&mut f, 15);
    prompt(&mut f, "Enter an assertion code (1,2,3,4,5,0), (S)kip or (E)xit =>");
    f
}

/// One row of Screen 9.
#[derive(Clone, Debug)]
pub struct ConflictRow {
    /// `SCHEMA_NAME1.OBJ_CLASS1`.
    pub left: String,
    /// `SCHEMA_NAME2.OBJ_CLASS2`.
    pub right: String,
    /// Assertion code or tag.
    pub current: String,
    /// Annotation: `<derived>(CONFLICT)`, `<new>(CONFLICT)`, or empty.
    pub note: String,
}

/// Screen 9 — Assertion Conflict Resolution.
pub fn conflict_resolution(rows: &[ConflictRow]) -> Frame {
    let mut f = chrome("ASSERTION SPECIFICATION", "Assertion Conflict Resolution Screen");
    f.columns(
        5,
        &[2, 26, 48, 56],
        &["SCHEMA_NAME1.OBJ_CLASS1", "SCHEMA_NAME2.OBJ_CLASS2", "CURRENT", "NEW"],
    );
    f.columns(6, &[48, 56], &["ASSERTION", "ASSERTION"]);
    f.hline(7);
    for (i, r) in rows.iter().enumerate().take(6) {
        f.columns(
            8 + i,
            &[2, 26, 48, 56],
            &[&r.left, &r.right, &r.current, &r.note],
        );
    }
    assertion_legend(&mut f, 15);
    prompt(&mut f, "(C)hange an earlier assertion, or any key to revise the new one =>");
    f
}

/// Screen 10 — Object Class Screen.
pub fn object_class(
    entities: &[String],
    categories: &[String],
    relationships: &[String],
) -> Frame {
    let mut f = chrome("INTEGRATED SCHEMA", "Object Class Screen");
    f.columns(
        5,
        &[4, 30, 54],
        &[
            &format!("Entities({})", entities.len()),
            &format!("Categories({})", categories.len()),
            &format!("Relationships({})", relationships.len()),
        ],
    );
    f.hline(6);
    let rows = entities.len().max(categories.len()).max(relationships.len()).min(9);
    for i in 0..rows {
        if let Some(n) = entities.get(i) {
            f.put(7 + i, 4, n);
        }
        if let Some(n) = categories.get(i) {
            f.put(7 + i, 30, n);
        }
        if let Some(n) = relationships.get(i) {
            f.put(7 + i, 54, n);
        }
    }
    f.put(
        18,
        4,
        "To view details, choose an object class name followed by",
    );
    f.put(
        19,
        4,
        "<A>ttributes, <C>ategories, <E>ntities, <R>elationships,",
    );
    prompt(&mut f, "or e<x>it =>");
    f
}

/// Entity Screen / Screen 11 (Category Screen) / Relationship Screen —
/// all show parents and children of one element.
pub fn element_view(
    kind_label: &str,
    name: &str,
    parents: &[(String, char)],
    children: &[(String, char)],
) -> Frame {
    let mut f = chrome("INTEGRATED SCHEMA", &format!("{kind_label} Screen"));
    f.put_centered(4, &format!("< {name} >"));
    f.columns(
        6,
        &[4, 42],
        &[
            &format!("Parent Object({}) (type)", parents.len()),
            &format!("Child Object({}) (type)", children.len()),
        ],
    );
    f.hline(7);
    let rows = parents.len().max(children.len()).min(9);
    for i in 0..rows {
        if let Some((n, k)) = parents.get(i) {
            f.put(8 + i, 4, &format!("{n} ({k})"));
        }
        if let Some((n, k)) = children.get(i) {
            f.put(8 + i, 42, &format!("{n} ({k})"));
        }
    }
    prompt(
        &mut f,
        "Choose: <A>ttributes e<Q>uivalents <P>articipants, or e<x>it =>",
    );
    f
}

/// Attribute Screen — all attributes of one object class or relationship
/// set; derived attributes are marked.
pub fn attribute_view(
    owner: &str,
    owner_kind: &str,
    rows: &[(String, String, char, bool)],
) -> Frame {
    let mut f = chrome("INTEGRATED SCHEMA", "Attribute Screen");
    f.put_centered(4, &format!("< {owner} : {owner_kind} >"));
    f.columns(6, &[4, 34, 52, 62], &["Attribute Name", "Domain", "Key", "Derived?"]);
    f.hline(7);
    for (i, (name, domain, key, derived)) in rows.iter().enumerate().take(10) {
        f.columns(
            8 + i,
            &[4, 34, 52, 62],
            &[
                &format!("{}> {name}", i + 1),
                domain,
                &key.to_string(),
                if *derived { "yes" } else { "no" },
            ],
        );
    }
    prompt(
        &mut f,
        "Choose an attribute number for its c<O>mponents, or e<x>it =>",
    );
    f
}

/// Data of Screens 12a/12b — one component of a derived attribute.
pub struct ComponentView {
    /// Owning object/relationship name in the integrated schema.
    pub owner: String,
    /// `entity` / `category` / `relationship`.
    pub owner_kind: String,
    /// The derived attribute's name.
    pub attr: String,
    /// Component attribute name.
    pub comp_name: String,
    /// Component domain tag.
    pub domain: String,
    /// Component key flag.
    pub key: bool,
    /// `original Object Name`.
    pub original_object: String,
    /// `original type` (E/C/R).
    pub original_type: char,
    /// `original Schema Name`.
    pub original_schema: String,
    /// Which component this is (1-based) out of how many.
    pub index: usize,
    /// Total component count.
    pub total: usize,
}

/// Screens 12a/12b — Component Attribute Screen.
pub fn component_attribute(v: &ComponentView) -> Frame {
    let mut f = chrome("COMPONENT ATTRIBUTE SCREEN", "");
    f.put_centered(2, &format!("< {} : {} >", v.owner, v.owner_kind));
    f.put_centered(3, &format!("< {} ({} of {}) >", v.attr, v.index, v.total));
    let fields = [
        ("Attribute Name", v.comp_name.clone()),
        ("Domain", v.domain.clone()),
        ("Key", if v.key { "YES".into() } else { "NO".into() }),
        ("original Object Name", v.original_object.clone()),
        ("original type", v.original_type.to_string()),
        ("original Schema Name", v.original_schema.clone()),
    ];
    for (i, (label, value)) in fields.iter().enumerate() {
        f.put(6 + 2 * i, 8, &format!("{label:<22}: {value}"));
    }
    prompt(&mut f, "Press any key to continue, or <Q>uit =>");
    f
}

/// Equivalent Screen — the components of an `E_` merge.
pub fn equivalent_view(name: &str, members: &[String]) -> Frame {
    let mut f = chrome("INTEGRATED SCHEMA", "Equivalent Screen");
    f.put_centered(4, &format!("< {name} >"));
    f.put(6, 4, "Obtained by integrating:");
    f.hline(7);
    for (i, m) in members.iter().enumerate().take(10) {
        f.put(8 + i, 6, &format!("{}> {m}", i + 1));
    }
    prompt(&mut f, "Press any key to continue =>");
    f
}

/// Participating Objects In Relationship Screen.
pub fn participating_view(rel: &str, rows: &[(String, char, String)]) -> Frame {
    let mut f = chrome(
        "INTEGRATED SCHEMA",
        "Participating Objects In Relationship Screen",
    );
    f.put_centered(4, &format!("< {rel} >"));
    f.columns(6, &[4, 40, 56], &["Object", "Type", "Cardinality"]);
    f.hline(7);
    for (i, (name, kind, card)) in rows.iter().enumerate().take(10) {
        f.columns(
            8 + i,
            &[4, 40, 56],
            &[&format!("{}> {name}", i + 1), &kind.to_string(), card],
        );
    }
    prompt(&mut f, "Press any key to continue =>");
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_menu_lists_six_tasks() {
        let f = main_menu();
        assert!(f.contains("SCHEMA INTEGRATION TOOL"));
        for i in 1..=6 {
            assert!(f.contains(&format!("{i}. ")), "task {i} listed");
        }
        assert!(f.contains("(E)xit"));
    }

    #[test]
    fn screen3_layout_matches_paper_example() {
        let rows = vec![
            StructureRow { name: "Student".into(), kind: 'e', attrs: 2 },
            StructureRow { name: "Department".into(), kind: 'e', attrs: 1 },
            StructureRow { name: "Majors".into(), kind: 'r', attrs: 1 },
        ];
        let f = structure_info("sc1", &rows, &ListWindow::new(10), None);
        assert!(f.contains("SCHEMA NAME: sc1"));
        assert!(f.contains("1> Student"));
        assert!(f.contains("3> Majors"));
        assert!(f.contains("(S)croll (A)dd (D)elete (U)pdate (E)xit"));
    }

    #[test]
    fn screen7_shows_class_numbers() {
        let f = equivalence(
            "sc1.Student",
            &[("Name".into(), 1), ("GPA".into(), 2)],
            "sc2.Grad_student",
            &[("Name".into(), 1), ("GPA".into(), 6), ("Support_type".into(), 7)],
            None,
        );
        assert!(f.contains("sc1.Student"));
        assert!(f.contains("sc2.Grad_student"));
        assert!(f.contains("Support_type"));
        assert!(f.contains("Eq_class #"));
        // GPA rows carry different class numbers.
        let row = f.find("2> GPA").unwrap();
        let text = f.row_text(row);
        assert!(text.contains('2') && text.contains('6'), "{text}");
    }

    #[test]
    fn screen8_shows_ratio_and_legend() {
        let rows = vec![
            AssertionRow {
                left: "sc1.Department".into(),
                right: "sc2.Department".into(),
                ratio: 0.5,
                entered: Some(1),
            },
            AssertionRow {
                left: "sc1.Student".into(),
                right: "sc2.Faculty".into(),
                ratio: 1.0 / 3.0,
                entered: None,
            },
        ];
        let f = assertion_collection(&rows, 1, false);
        assert!(f.contains("0.5000"));
        assert!(f.contains("0.3333"));
        assert!(f.contains("'equals'"));
        assert!(f.contains("disjoint & non-integratable"));
        assert!(f.contains("=>1"), "entered code shown");
    }

    #[test]
    fn screen9_marks_conflicts() {
        let rows = vec![
            ConflictRow {
                left: "sc3.Instructor".into(),
                right: "sc4.Student".into(),
                current: "2".into(),
                note: "<derived>(CONFLICT)".into(),
            },
            ConflictRow {
                left: "sc3.Instructor".into(),
                right: "sc4.Student".into(),
                current: "0".into(),
                note: "<new>(CONFLICT)".into(),
            },
        ];
        let f = conflict_resolution(&rows);
        assert!(f.contains("<derived>(CONFLICT)"));
        assert!(f.contains("<new>(CONFLICT)"));
        assert!(f.contains("Assertion Conflict Resolution"));
    }

    #[test]
    fn screen10_counts_lists() {
        let f = object_class(
            &["E_Department".into(), "D_Stud_Facu".into()],
            &["Student".into(), "Grad_student".into(), "Faculty".into()],
            &["E_Stud_Majo".into(), "Works".into()],
        );
        assert!(f.contains("Entities(2)"));
        assert!(f.contains("Categories(3)"));
        assert!(f.contains("Relationships(2)"));
        assert!(f.contains("D_Stud_Facu"));
    }

    #[test]
    fn screen11_shows_parents_and_children() {
        let f = element_view(
            "Category",
            "Student",
            &[("D_Stud_Facu".into(), 'E')],
            &[("sc2.Grad_stud".into(), 'C')],
        );
        assert!(f.contains("< Student >"));
        assert!(f.contains("Parent Object(1)"));
        assert!(f.contains("D_Stud_Facu (E)"));
        assert!(f.contains("sc2.Grad_stud (C)"));
    }

    #[test]
    fn screen12_component_fields() {
        let v = ComponentView {
            owner: "Student".into(),
            owner_kind: "category".into(),
            attr: "D_Name".into(),
            comp_name: "Name".into(),
            domain: "char".into(),
            key: true,
            original_object: "Student".into(),
            original_type: 'E',
            original_schema: "sc1".into(),
            index: 1,
            total: 2,
        };
        let f = component_attribute(&v);
        assert!(f.contains("< Student : category >"));
        assert!(f.contains("< D_Name (1 of 2) >"));
        assert!(f.contains("original Schema Name"));
        assert!(f.contains(": sc1"));
        assert!(f.contains(": YES"));
    }
}
