//! Screen identities and the control-flow graph of the paper's Figure 6.
//!
//! Figure 6 shows the hierarchy of the eight *viewer* screens of phase 4,
//! "where the annotation on an arc between two screens shows the menu
//! choice made in the screen at the tail of the arc to invoke the screen
//! at the head". [`viewer_flow`] reproduces those arcs; the full
//! [`ScreenId`] enumeration also covers the collection/specification
//! screens (Screens 1–9).

/// Every screen of the tool, numbered as in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ScreenId {
    /// Screen 1 — main menu.
    MainMenu,
    /// Screen 2 — Schema Name Collection.
    SchemaName,
    /// Screen 3 — Structure Information Collection.
    StructureInfo,
    /// Screen 4 — Relationship Information Collection.
    RelationshipInfo,
    /// Screen 5 — Attribute Information Collection.
    AttributeInfo,
    /// Category Information Collection (named in §3.2, not numbered).
    CategoryInfo,
    /// Schema Name Selection (phase 2 entry, §3.3).
    SchemaSelect,
    /// Screen 6 — Entity/Category Name Selection.
    ObjectSelect,
    /// Screen 7 — Equivalence Class Creation and Deletion.
    Equivalence,
    /// Screen 8 — Assertion Collection For Object Pairs.
    AssertionCollection,
    /// Screen 9 — Assertion Conflict Resolution.
    ConflictResolution,
    /// Screen 10 — Object Class Screen (viewer root).
    ObjectClass,
    /// Entity Screen.
    EntityView,
    /// Screen 11 — Category Screen.
    CategoryView,
    /// Relationship Screen.
    RelationshipView,
    /// Attribute Screen.
    AttributeView,
    /// Screens 12a/b — Component Attribute Screen.
    ComponentAttribute,
    /// Equivalent Screen.
    EquivalentView,
    /// Participating Objects In Relationship Screen.
    ParticipatingView,
}

/// One arc of the Figure 6 viewer flow: `(from, menu choice, to)`.
pub type FlowArc = (ScreenId, char, ScreenId);

/// The arcs of Figure 6: which menu choice on which screen invokes which
/// viewer screen.
pub fn viewer_flow() -> Vec<FlowArc> {
    use ScreenId::*;
    vec![
        // From the Object Class Screen: <A>ttributes, <C>ategories,
        // <E>ntities, <R>elationships.
        (ObjectClass, 'e', EntityView),
        (ObjectClass, 'c', CategoryView),
        (ObjectClass, 'r', RelationshipView),
        (ObjectClass, 'a', AttributeView),
        // Attribute Screen → Component Attribute Screen for derived
        // attributes.
        (AttributeView, 'o', ComponentAttribute),
        // Entity/Category/Relationship screens → Equivalent Screen.
        (EntityView, 'q', EquivalentView),
        (CategoryView, 'q', EquivalentView),
        (RelationshipView, 'q', EquivalentView),
        // Relationship Screen → Participating Objects.
        (RelationshipView, 'p', ParticipatingView),
        // Entity/Category screens can open the Attribute Screen for the
        // viewed object.
        (EntityView, 'a', AttributeView),
        (CategoryView, 'a', AttributeView),
    ]
}

/// Screens reachable from `from` in the viewer flow.
pub fn reachable_from(from: ScreenId) -> Vec<ScreenId> {
    viewer_flow()
        .into_iter()
        .filter(|(f, _, _)| *f == from)
        .map(|(_, _, t)| t)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn figure6_has_eight_viewer_screens() {
        let mut screens: HashSet<ScreenId> = HashSet::new();
        for (f, _, t) in viewer_flow() {
            screens.insert(f);
            screens.insert(t);
        }
        // "The result of schema integration can be viewed using the set of
        // eight screens arranged in a hierarchy."
        assert_eq!(screens.len(), 8, "{screens:?}");
    }

    #[test]
    fn object_class_screen_is_the_root() {
        let targets = reachable_from(ScreenId::ObjectClass);
        assert_eq!(targets.len(), 4);
        assert!(targets.contains(&ScreenId::EntityView));
        assert!(targets.contains(&ScreenId::CategoryView));
        assert!(targets.contains(&ScreenId::RelationshipView));
        assert!(targets.contains(&ScreenId::AttributeView));
        // Nothing flows INTO the root.
        assert!(viewer_flow().iter().all(|(_, _, t)| *t != ScreenId::ObjectClass));
    }

    #[test]
    fn every_screen_reachable_from_the_root() {
        let arcs = viewer_flow();
        let mut reached: HashSet<ScreenId> = HashSet::from([ScreenId::ObjectClass]);
        let mut grew = true;
        while grew {
            grew = false;
            for (f, _, t) in &arcs {
                if reached.contains(f) && reached.insert(*t) {
                    grew = true;
                }
            }
        }
        assert_eq!(reached.len(), 8);
    }

    #[test]
    fn component_attribute_reachable_only_via_attribute_screen() {
        let sources: Vec<ScreenId> = viewer_flow()
            .into_iter()
            .filter(|(_, _, t)| *t == ScreenId::ComponentAttribute)
            .map(|(f, _, _)| f)
            .collect();
        assert_eq!(sources, vec![ScreenId::AttributeView]);
    }

    #[test]
    fn equivalent_screen_reachable_from_three_views() {
        let sources: HashSet<ScreenId> = viewer_flow()
            .into_iter()
            .filter(|(_, _, t)| *t == ScreenId::EquivalentView)
            .map(|(f, _, _)| f)
            .collect();
        assert_eq!(sources.len(), 3);
    }
}
