#![warn(missing_docs)]
//! # sit-tui — the interactive schema-integration tool
//!
//! The paper's tool "is written in C and runs on Apollo in the UNIX
//! environment. The tool is interactive; the user interface of the tool is
//! menu and form based and largely terminal independent. All screen and
//! cursor movements are performed using a UNIX library package called
//! curses. Each screen is made up of multiple windows, some of which can
//! be scrolled ..." (§3.1)
//!
//! This crate reproduces that tool as a *deterministic, scriptable*
//! terminal UI (see DESIGN.md's substitution table: the dialogue structure
//! is the contribution, not the curses calls):
//!
//! * [`screen`] — a terminal-independent frame/window engine (the curses
//!   substitute): an 80×24 character grid with boxes, centered titles,
//!   column layout and scrolling windows.
//! * [`event`] — the input alphabet: single keys (menu choices) and typed
//!   lines (form fields).
//! * [`app`] — the tool itself: a state machine over the thirteen screens
//!   of the paper (main menu + Screens 2–12), driving a
//!   [`sit_core::session::Session`] underneath.
//! * [`flow`] — the screen control-flow graph of the paper's Figure 6.
//! * [`session`] — the scripted runner: feed a list of events, get every
//!   rendered frame back, ready for golden-file comparison.
//!
//! ```
//! use sit_tui::app::App;
//! use sit_tui::event::Event;
//!
//! let mut app = App::new();
//! // The main menu is on screen; entering '1' opens Schema Collection.
//! let frame = app.render();
//! assert!(frame.to_string().contains("SCHEMA INTEGRATION TOOL"));
//! app.handle(Event::Key('1'));
//! assert!(app.render().to_string().contains("Schema Name Collection"));
//! ```

pub mod app;
pub mod event;
pub mod flow;
pub mod screen;
pub mod screens;
pub mod session;

pub use app::App;
pub use event::Event;
pub use flow::{viewer_flow, ScreenId};
pub use screen::Frame;
pub use session::{run_script, Capture};
