//! Scripted session runner.
//!
//! Feeds a list of events to an [`App`] and captures the frame after every
//! event — the deterministic substitute for a DDA at a terminal, and the
//! mechanism the `figures` binary uses to regenerate the paper's screens.

use crate::app::App;
use crate::event::Event;
use crate::screen::Frame;

/// One step of a captured session.
#[derive(Clone, Debug)]
pub struct Capture {
    /// The event that was delivered (`None` for the initial frame).
    pub event: Option<Event>,
    /// The frame rendered after handling it.
    pub frame: Frame,
}

/// Run `events` through `app`, capturing the initial frame and the frame
/// after each event.
pub fn run_script(app: &mut App, events: Vec<Event>) -> Vec<Capture> {
    let mut out = vec![Capture {
        event: None,
        frame: app.render(),
    }];
    for event in events {
        app.handle(event.clone());
        out.push(Capture {
            event: Some(event),
            frame: app.render(),
        });
    }
    out
}

/// The last frame of a capture list.
pub fn final_frame(captures: &[Capture]) -> &Frame {
    &captures.last().expect("captures never empty").frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::keys;

    #[test]
    fn captures_initial_and_per_event_frames() {
        let mut app = App::new();
        let caps = run_script(&mut app, keys("1"));
        assert_eq!(caps.len(), 2);
        assert!(caps[0].frame.contains("Main Menu"));
        assert!(caps[1].frame.contains("Schema Name Collection"));
        assert!(final_frame(&caps).contains("Schema Name Collection"));
        assert_eq!(caps[1].event, Some(Event::Key('1')));
    }
}
