//! The tool's input alphabet.
//!
//! The paper's screens take two kinds of input: single-character menu
//! choices (`Choose: (S)croll (A)dd (D)elete (U)pdate (E)xit`) and typed
//! form fields (names, domains, cardinalities). Events are either, plus a
//! convenience constructor set used by scripted sessions.

/// One input event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Event {
    /// A single-character menu choice (case-insensitive).
    Key(char),
    /// A typed line submitted with return (form field content).
    Text(String),
}

impl Event {
    /// Typed-line constructor.
    pub fn text(s: impl Into<String>) -> Event {
        Event::Text(s.into())
    }

    /// The event as a menu choice, lowercased (`None` for text).
    pub fn key(&self) -> Option<char> {
        match self {
            Event::Key(c) => Some(c.to_ascii_lowercase()),
            Event::Text(_) => None,
        }
    }

    /// The event as field text (`None` for keys).
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Event::Text(s) => Some(s),
            Event::Key(_) => None,
        }
    }
}

/// Shorthand for scripting: keys from a literal (`keys("1ae")`).
pub fn keys(s: &str) -> Vec<Event> {
    s.chars().map(Event::Key).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Event::Key('A').key(), Some('a'));
        assert_eq!(Event::Key('A').as_text(), None);
        let t = Event::text("hello");
        assert_eq!(t.as_text(), Some("hello"));
        assert_eq!(t.key(), None);
    }

    #[test]
    fn keys_shorthand() {
        assert_eq!(
            keys("1e"),
            vec![Event::Key('1'), Event::Key('e')]
        );
    }
}
