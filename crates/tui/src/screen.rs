//! The frame/window engine — the terminal-independent substitute for
//! curses.
//!
//! A [`Frame`] is a fixed-size character grid. Drawing is by absolute
//! row/column, with helpers for the layouts the paper's screens share:
//! full-width boxes, centered headings, ruled separators, and column rows.
//! Scrolling is handled by the windows themselves: a [`ListWindow`] shows a
//! slice of its items and tracks the scroll offset (the paper: "some of
//! which can be scrolled to supply and display additional information").

use std::fmt;

/// Default screen width (a VT100-era terminal).
pub const WIDTH: usize = 78;
/// Default screen height.
pub const HEIGHT: usize = 24;

/// A rendered character grid.
#[derive(Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    cells: Vec<char>,
}

impl Frame {
    /// Blank frame of the default size.
    pub fn new() -> Self {
        Self::sized(WIDTH, HEIGHT)
    }

    /// Blank frame of a custom size.
    pub fn sized(width: usize, height: usize) -> Self {
        Self {
            width,
            cells: vec![' '; width * height],
        }
    }

    /// Frame width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height.
    pub fn height(&self) -> usize {
        self.cells.len() / self.width
    }

    /// Write `text` starting at `(row, col)`, clipped to the frame.
    pub fn put(&mut self, row: usize, col: usize, text: &str) {
        if row >= self.height() {
            return;
        }
        for (i, c) in text.chars().enumerate() {
            let x = col + i;
            if x >= self.width {
                break;
            }
            self.cells[row * self.width + x] = c;
        }
    }

    /// Write `text` centered on `row`.
    pub fn put_centered(&mut self, row: usize, text: &str) {
        let len = text.chars().count().min(self.width);
        let col = (self.width - len) / 2;
        self.put(row, col, text);
    }

    /// Horizontal rule across the full width of `row`.
    pub fn hline(&mut self, row: usize) {
        let line: String = "-".repeat(self.width);
        self.put(row, 0, &line);
    }

    /// Draw a box border around the whole frame.
    pub fn border(&mut self) {
        let h = self.height();
        let w = self.width;
        for col in 0..w {
            self.cells[col] = '-';
            self.cells[(h - 1) * w + col] = '-';
        }
        for row in 0..h {
            self.cells[row * w] = '|';
            self.cells[row * w + w - 1] = '|';
        }
        for (r, c) in [(0, 0), (0, w - 1), (h - 1, 0), (h - 1, w - 1)] {
            self.cells[r * w + c] = '+';
        }
    }

    /// Write fields at the given column stops on `row`.
    pub fn columns(&mut self, row: usize, stops: &[usize], fields: &[&str]) {
        for (stop, field) in stops.iter().zip(fields) {
            self.put(row, *stop, field);
        }
    }

    /// The text of one row, right-trimmed.
    pub fn row_text(&self, row: usize) -> String {
        let start = row * self.width;
        let s: String = self.cells[start..start + self.width].iter().collect();
        s.trim_end().to_owned()
    }

    /// `true` when any row contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        (0..self.height()).any(|r| self.row_text(r).contains(needle))
    }

    /// Row index of the first row containing `needle`.
    pub fn find(&self, needle: &str) -> Option<usize> {
        (0..self.height()).find(|&r| self.row_text(r).contains(needle))
    }
}

impl Default for Frame {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in 0..self.height() {
            writeln!(f, "{}", self.row_text(row))?;
        }
        Ok(())
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Frame({}x{})\n{self}", self.width, self.height())
    }
}

/// A scrollable list window: renders `page_size` items from `offset`, with
/// the paper's `(n)` length annotation and `(S)croll` affordance.
#[derive(Clone, Debug, Default)]
pub struct ListWindow {
    /// Scroll offset (index of the first visible item).
    pub offset: usize,
    /// Items per page.
    pub page_size: usize,
}

impl ListWindow {
    /// Window with the given page size.
    pub fn new(page_size: usize) -> Self {
        Self {
            offset: 0,
            page_size,
        }
    }

    /// Advance one page, wrapping to the top past the end — the behaviour
    /// of the paper's `(S)croll` menu choice.
    pub fn scroll(&mut self, total: usize) {
        if total == 0 {
            return;
        }
        self.offset += self.page_size;
        if self.offset >= total {
            self.offset = 0;
        }
    }

    /// The visible index range for `total` items.
    pub fn visible(&self, total: usize) -> std::ops::Range<usize> {
        let start = self.offset.min(total);
        let end = (start + self.page_size).min(total);
        start..end
    }

    /// Whether a scroll affordance is needed.
    pub fn needs_scroll(&self, total: usize) -> bool {
        total > self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_read_back() {
        let mut f = Frame::new();
        f.put(3, 5, "hello");
        assert_eq!(f.row_text(3), "     hello");
        assert!(f.contains("hello"));
        assert_eq!(f.find("hello"), Some(3));
        assert!(f.find("absent").is_none());
    }

    #[test]
    fn clipping_at_edges() {
        let mut f = Frame::sized(10, 3);
        f.put(1, 7, "overflow");
        assert_eq!(f.row_text(1), "       ove");
        f.put(99, 0, "nowhere"); // silently ignored
        assert_eq!(f.height(), 3);
        assert_eq!(f.width(), 10);
    }

    #[test]
    fn centered_and_rules() {
        let mut f = Frame::sized(20, 4);
        f.put_centered(0, "TITLE");
        assert!(f.row_text(0).starts_with("       TITLE"));
        f.hline(1);
        assert_eq!(f.row_text(1), "-".repeat(20));
    }

    #[test]
    fn border_corners() {
        let mut f = Frame::sized(8, 4);
        f.border();
        assert_eq!(f.row_text(0), "+------+");
        assert_eq!(f.row_text(3), "+------+");
        assert!(f.row_text(1).starts_with('|'));
        assert!(f.row_text(1).ends_with('|'));
    }

    #[test]
    fn columns_layout() {
        let mut f = Frame::sized(40, 2);
        f.columns(0, &[0, 15, 30], &["Name", "Type", "Attrs"]);
        let row = f.row_text(0);
        assert_eq!(&row[0..4], "Name");
        assert_eq!(&row[15..19], "Type");
        assert_eq!(&row[30..35], "Attrs");
    }

    #[test]
    fn list_window_scrolls_and_wraps() {
        let mut w = ListWindow::new(3);
        assert_eq!(w.visible(8), 0..3);
        assert!(w.needs_scroll(8));
        w.scroll(8);
        assert_eq!(w.visible(8), 3..6);
        w.scroll(8);
        assert_eq!(w.visible(8), 6..8);
        w.scroll(8);
        assert_eq!(w.visible(8), 0..3, "wraps");
        // Short lists need no scrolling and never move.
        let mut w = ListWindow::new(5);
        assert!(!w.needs_scroll(4));
        assert_eq!(w.visible(4), 0..4);
        w.scroll(0);
        assert_eq!(w.offset, 0);
    }
}
