//! The tool's state machine: thirteen screens over one integration
//! session.
//!
//! "When the tool is invoked, the user is presented with the main menu,
//! which describes the tasks required for integration. ... The DDA
//! generally performs the tasks in the serial order." (§3.1–§3.2)
//!
//! The [`App`] owns a [`sit_core::session::Session`] and a `State`; every
//! [`Event`] may change both, and [`App::render`] draws the current screen.
//! All interaction is deterministic, so full sessions can be scripted and
//! their frames golden-tested (see [`crate::session`]).

use sit_core::assertion::Assertion;
use sit_core::catalog::{GAttr, GObj, GRel};
use sit_core::error::CoreError;
use sit_core::integrate::{IntegratedSchema, IntegrationOptions, NodeOrigin, RelOrigin};
use sit_core::resemblance::CandidatePair;
use sit_core::session::Session;
use sit_ecr::{AttrId, Cardinality, Domain, ObjectKind, SchemaBuilder, SchemaId};

use crate::event::Event;
use crate::screen::{Frame, ListWindow};
use crate::screens::{self, AssertionRow, ConflictRow, StructureRow};

/// A structure being collected on Screens 3–5.
#[derive(Clone, Debug, Default)]
struct PendingStructure {
    name: String,
    kind: char, // 'e' | 'c' | 'r'
    parents: Vec<String>,
    legs: Vec<(String, Cardinality)>,
    attrs: Vec<(String, Domain, bool)>,
}

/// A schema being collected in task 1.
#[derive(Clone, Debug, Default)]
struct PendingSchema {
    name: String,
    structures: Vec<PendingStructure>,
    win: ListWindow,
}

impl PendingSchema {
    fn build(&self) -> Result<sit_ecr::Schema, String> {
        let mut b = SchemaBuilder::new(self.name.clone());
        // Objects first (in collection order so categories can reference
        // earlier structures), then relationships.
        for s in &self.structures {
            match s.kind {
                'e' => {
                    let mut ob = b.entity_set(s.name.clone());
                    for (n, d, k) in &s.attrs {
                        ob = if *k {
                            ob.attr_key(n.clone(), d.clone())
                        } else {
                            ob.attr(n.clone(), d.clone())
                        };
                    }
                    ob.finish();
                }
                'c' => {
                    let parents: Vec<&str> = s.parents.iter().map(String::as_str).collect();
                    let mut ob = b
                        .category_of(s.name.clone(), &parents)
                        .map_err(|e| e.to_string())?;
                    for (n, d, k) in &s.attrs {
                        ob = if *k {
                            ob.attr_key(n.clone(), d.clone())
                        } else {
                            ob.attr(n.clone(), d.clone())
                        };
                    }
                    ob.finish();
                }
                _ => {}
            }
        }
        for s in &self.structures {
            if s.kind != 'r' {
                continue;
            }
            let mut legs = Vec::new();
            for (obj, card) in &s.legs {
                let oid = b
                    .object_by_name(obj)
                    .ok_or_else(|| format!("unknown participant `{obj}`"))?;
                legs.push((oid, *card));
            }
            let mut rb = b.relationship(s.name.clone());
            for (oid, card) in legs {
                rb = rb.participant(oid, card);
            }
            for (n, d, k) in &s.attrs {
                rb = if *k {
                    rb.attr_key(n.clone(), d.clone())
                } else {
                    rb.attr(n.clone(), d.clone())
                };
            }
            rb.finish();
        }
        b.build().map_err(|e| e.to_string())
    }
}

/// The attribute owners selected on Screen 6 (objects for task 2,
/// relationship sets for task 4).
#[derive(Clone, Copy, Debug)]
enum EqTarget {
    Object(GObj),
    Rel(GRel),
}

/// Where the tool currently is.
#[derive(Clone, Debug)]
enum State {
    MainMenu,
    // ---- Task 1: schema collection ----
    SchemaNames,
    AskSchemaName,
    Structures,
    AskStructName,
    AskStructType,
    AskCategoryParents,
    AskRelLeg,
    AskAttr,
    // ---- Tasks 2 / 4: equivalence ----
    EqSchemaSelect { rels: bool },
    EqObjectSelect { rels: bool },
    EqClasses { rels: bool },
    AskEqAdd { rels: bool },
    AskEqDel { rels: bool },
    // ---- Tasks 3 / 5: assertions ----
    Assertions { rels: bool, idx: usize },
    Conflict { rels: bool, idx: usize, rows: Vec<ConflictRow> },
    AskConflictChange { rels: bool, idx: usize },
    // ---- Task 6: viewer ----
    ViewObjects { selected: Option<String> },
    ViewElement { name: String, is_rel: bool },
    ViewAttrs { name: String, is_rel: bool },
    ViewComponent { name: String, is_rel: bool, attr: usize, comp: usize },
    ViewEquivalent { name: String, is_rel: bool },
    ViewParticipating { name: String },
}

/// The interactive tool.
pub struct App {
    session: Session,
    state: State,
    pending: Option<PendingSchema>,
    /// The two schemas being integrated (chosen in task 2, reused by
    /// tasks 3–6).
    pair: Option<(SchemaId, SchemaId)>,
    eq_targets: Option<(EqTarget, EqTarget)>,
    /// Cached candidate rows for the assertion screen.
    obj_rows: Vec<(CandidatePair<GObj>, Option<u8>)>,
    rel_rows: Vec<(CandidatePair<GRel>, Option<u8>)>,
    integrated: Option<IntegratedSchema>,
    status: Option<String>,
}

impl Default for App {
    fn default() -> Self {
        Self::new()
    }
}

impl App {
    /// A fresh tool at the main menu.
    pub fn new() -> App {
        App {
            session: Session::new(),
            state: State::MainMenu,
            pending: None,
            pair: None,
            eq_targets: None,
            obj_rows: Vec::new(),
            rel_rows: Vec::new(),
            integrated: None,
            status: None,
        }
    }

    /// A tool over an existing session (schemas pre-registered), as tests
    /// and examples usually want.
    pub fn with_session(session: Session) -> App {
        App {
            session,
            ..App::new()
        }
    }

    /// The underlying session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// The last integration result computed by task 6.
    pub fn integrated(&self) -> Option<&IntegratedSchema> {
        self.integrated.as_ref()
    }

    /// Handle one input event.
    pub fn handle(&mut self, event: Event) {
        self.status = None;
        let state = self.state.clone();
        match state {
            State::MainMenu => self.main_menu(event),
            State::SchemaNames => self.schema_names(event),
            State::AskSchemaName => self.ask_schema_name(event),
            State::Structures => self.structures(event),
            State::AskStructName => self.ask_struct_name(event),
            State::AskStructType => self.ask_struct_type(event),
            State::AskCategoryParents => self.ask_category_parents(event),
            State::AskRelLeg => self.ask_rel_leg(event),
            State::AskAttr => self.ask_attr(event),
            State::EqSchemaSelect { rels } => self.eq_schema_select(event, rels),
            State::EqObjectSelect { rels } => self.eq_object_select(event, rels),
            State::EqClasses { rels } => self.eq_classes(event, rels),
            State::AskEqAdd { rels } => self.ask_eq_edit(event, rels, true),
            State::AskEqDel { rels } => self.ask_eq_edit(event, rels, false),
            State::Assertions { rels, idx } => self.assertions(event, rels, idx),
            State::Conflict { rels, idx, .. } => self.conflict(event, rels, idx),
            State::AskConflictChange { rels, idx } => self.ask_conflict_change(event, rels, idx),
            State::ViewObjects { selected } => self.view_objects(event, selected),
            State::ViewElement { name, is_rel } => self.view_element(event, name, is_rel),
            State::ViewAttrs { name, is_rel } => self.view_attrs(event, name, is_rel),
            State::ViewComponent { name, is_rel, attr, comp } => {
                self.view_component(event, name, is_rel, attr, comp)
            }
            State::ViewEquivalent { name, is_rel } => {
                let _ = (name, is_rel, event);
                self.state = State::ViewObjects { selected: None };
            }
            State::ViewParticipating { name } => {
                let _ = (name, event);
                self.state = State::ViewObjects { selected: None };
            }
        }
    }

    // ------------------------------------------------------------------
    // Main menu
    // ------------------------------------------------------------------

    fn main_menu(&mut self, event: Event) {
        match event.key() {
            Some('1') => self.state = State::SchemaNames,
            Some('2') => self.state = State::EqSchemaSelect { rels: false },
            Some('3') => self.enter_assertions(false),
            Some('4') => self.state = State::EqSchemaSelect { rels: true },
            Some('5') => self.enter_assertions(true),
            Some('6') => self.enter_viewer(),
            Some('e') => {} // exiting the tool keeps the final screen
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Task 1: schema collection
    // ------------------------------------------------------------------

    fn schema_names(&mut self, event: Event) {
        match event.key() {
            Some('a') => self.state = State::AskSchemaName,
            Some('u') | Some('d') => {
                // Committed schemas anchor equivalences and assertions;
                // in-place edits would silently invalidate them. The
                // supported path is the session script (paper §4's data
                // dictionary): save, edit, reload.
                self.status = Some(
                    "edit committed schemas via a saved session script (--save / --load)".into(),
                );
            }
            Some('e') => self.state = State::MainMenu,
            _ => {}
        }
    }

    fn ask_schema_name(&mut self, event: Event) {
        if let Some(name) = event.as_text() {
            let name = name.trim();
            if name.is_empty() {
                self.state = State::SchemaNames;
                return;
            }
            self.pending = Some(PendingSchema {
                name: name.to_owned(),
                structures: Vec::new(),
                win: ListWindow::new(10),
            });
            self.state = State::Structures;
        }
    }

    fn structures(&mut self, event: Event) {
        match event.key() {
            Some('a') => self.state = State::AskStructName,
            Some('s') => {
                if let Some(p) = &mut self.pending {
                    let total = p.structures.len();
                    p.win.scroll(total);
                }
            }
            Some('e') => {
                // Commit the pending schema to the session.
                if let Some(p) = self.pending.take() {
                    match p.build().and_then(|s| {
                        self.session.add_schema(s).map_err(|e| e.to_string())
                    }) {
                        Ok(_) => self.status = Some(format!("schema `{}` defined", p.name)),
                        Err(e) => {
                            self.status = Some(format!("error: {e}"));
                            self.pending = Some(p);
                            return;
                        }
                    }
                }
                self.state = State::SchemaNames;
            }
            _ => {}
        }
    }

    fn ask_struct_name(&mut self, event: Event) {
        if let Some(name) = event.as_text() {
            let name = name.trim().to_owned();
            if name.is_empty() {
                self.state = State::Structures;
                return;
            }
            if let Some(p) = &mut self.pending {
                p.structures.push(PendingStructure {
                    name,
                    ..Default::default()
                });
            }
            self.state = State::AskStructType;
        }
    }

    fn ask_struct_type(&mut self, event: Event) {
        let Some(kind) = event.key() else { return };
        if !"ecr".contains(kind) {
            self.status = Some("type must be e, c or r".into());
            return;
        }
        if let Some(s) = self.pending.as_mut().and_then(|p| p.structures.last_mut()) {
            s.kind = kind;
        }
        self.state = match kind {
            'c' => State::AskCategoryParents,
            'r' => State::AskRelLeg,
            _ => State::AskAttr,
        };
    }

    fn ask_category_parents(&mut self, event: Event) {
        if let Some(text) = event.as_text() {
            let text = text.trim();
            if text.is_empty() {
                self.state = State::AskAttr;
                return;
            }
            if let Some(s) = self.pending.as_mut().and_then(|p| p.structures.last_mut()) {
                s.parents.push(text.to_owned());
            }
        }
    }

    /// Relationship legs are typed as `Object (min,max)`, `max` possibly
    /// `n`.
    fn ask_rel_leg(&mut self, event: Event) {
        if let Some(text) = event.as_text() {
            let text = text.trim();
            if text.is_empty() {
                self.state = State::AskAttr;
                return;
            }
            match parse_leg(text) {
                Some((obj, card)) => {
                    if let Some(s) = self.pending.as_mut().and_then(|p| p.structures.last_mut()) {
                        s.legs.push((obj, card));
                    }
                }
                None => self.status = Some(format!("cannot parse leg `{text}`")),
            }
        }
    }

    /// Attributes are typed as `name domain [key]`.
    fn ask_attr(&mut self, event: Event) {
        if let Some(text) = event.as_text() {
            let text = text.trim();
            if text.is_empty() {
                self.state = State::Structures;
                return;
            }
            match parse_attr(text) {
                Some(attr) => {
                    if let Some(s) = self.pending.as_mut().and_then(|p| p.structures.last_mut()) {
                        s.attrs.push(attr);
                    }
                }
                None => self.status = Some(format!("cannot parse attribute `{text}`")),
            }
        }
    }

    // ------------------------------------------------------------------
    // Tasks 2 / 4: equivalence specification
    // ------------------------------------------------------------------

    fn eq_schema_select(&mut self, event: Event, rels: bool) {
        match &event {
            Event::Key(k) if k.eq_ignore_ascii_case(&'e') => self.state = State::MainMenu,
            Event::Text(text) => {
                let names: Vec<&str> = text.split_whitespace().collect();
                if names.len() != 2 {
                    self.status = Some("enter exactly two schema names".into());
                    return;
                }
                match (
                    self.session.catalog().by_name(names[0]),
                    self.session.catalog().by_name(names[1]),
                ) {
                    (Some(a), Some(b)) if a != b => {
                        self.pair = Some((a, b));
                        self.state = State::EqObjectSelect { rels };
                    }
                    _ => self.status = Some("unknown or identical schema names".into()),
                }
            }
            _ => {}
        }
    }

    fn eq_object_select(&mut self, event: Event, rels: bool) {
        match &event {
            Event::Key(k) if k.eq_ignore_ascii_case(&'e') => self.state = State::MainMenu,
            Event::Text(text) => {
                let Some((sa, sb)) = self.pair else {
                    self.status = Some("select schemas first".into());
                    return;
                };
                let names: Vec<&str> = text.split_whitespace().collect();
                if names.len() != 2 {
                    self.status = Some("enter one name from each schema".into());
                    return;
                }
                let catalog = self.session.catalog();
                let target = |sid: SchemaId, name: &str| -> Option<EqTarget> {
                    let schema = catalog.schema(sid);
                    if rels {
                        schema
                            .rel_by_name(name)
                            .map(|r| EqTarget::Rel(GRel::new(sid, r)))
                    } else {
                        schema
                            .object_by_name(name)
                            .map(|o| EqTarget::Object(GObj::new(sid, o)))
                    }
                };
                match (target(sa, names[0]), target(sb, names[1])) {
                    (Some(a), Some(b)) => {
                        self.eq_targets = Some((a, b));
                        self.state = State::EqClasses { rels };
                    }
                    _ => self.status = Some("unknown object/relationship name".into()),
                }
            }
            _ => {}
        }
    }

    fn eq_classes(&mut self, event: Event, rels: bool) {
        match event.key() {
            Some('a') => self.state = State::AskEqAdd { rels },
            Some('d') => self.state = State::AskEqDel { rels },
            Some('e') => self.state = State::EqObjectSelect { rels },
            _ => {}
        }
    }

    /// Equivalence edits are typed as two 1-based attribute numbers
    /// (`add`: left and right; `delete`: side `1`/`2` and number).
    fn ask_eq_edit(&mut self, event: Event, rels: bool, add: bool) {
        let Some(text) = event.as_text() else { return };
        let nums: Vec<usize> = text
            .split_whitespace()
            .filter_map(|t| t.parse().ok())
            .collect();
        self.state = State::EqClasses { rels };
        let Some((ta, tb)) = self.eq_targets else {
            self.status = Some("select objects first".into());
            return;
        };
        if nums.len() != 2 || nums[0] == 0 || nums[1] == 0 {
            self.status = Some("enter two numbers".into());
            return;
        }
        if add {
            let (Some(a), Some(b)) = (
                self.attr_ref(ta, nums[0] - 1),
                self.attr_ref(tb, nums[1] - 1),
            ) else {
                self.status = Some("attribute number out of range".into());
                return;
            };
            match self.session.declare_equivalent(a, b) {
                Ok(()) => self.status = Some("equivalence recorded".into()),
                Err(e) => self.status = Some(format!("error: {e}")),
            }
        } else {
            let side = if nums[0] == 1 { ta } else { tb };
            let Some(a) = self.attr_ref(side, nums[1] - 1) else {
                self.status = Some("attribute number out of range".into());
                return;
            };
            if self.session.remove_from_class(a) {
                self.status = Some("attribute removed from its class".into());
            } else {
                self.status = Some("attribute was not in a class".into());
            }
        }
    }

    fn attr_ref(&self, t: EqTarget, idx: usize) -> Option<GAttr> {
        let catalog = self.session.catalog();
        match t {
            EqTarget::Object(o) => {
                let obj = catalog.schema(o.schema).object(o.object);
                (idx < obj.attr_count())
                    .then(|| GAttr::object(o.schema, o.object, AttrId::new(idx as u32)))
            }
            EqTarget::Rel(r) => {
                let rel = catalog.schema(r.schema).relationship(r.rel);
                (idx < rel.attr_count())
                    .then(|| GAttr::rel(r.schema, r.rel, AttrId::new(idx as u32)))
            }
        }
    }

    // ------------------------------------------------------------------
    // Tasks 3 / 5: assertion specification
    // ------------------------------------------------------------------

    fn enter_assertions(&mut self, rels: bool) {
        let Some((sa, sb)) = self.pair else {
            self.status = Some("run task 2 first to pick the schemas".into());
            return;
        };
        if rels {
            self.rel_rows = self
                .session
                .rel_candidates(sa, sb)
                .into_iter()
                .map(|p| (p, None))
                .collect();
        } else {
            self.obj_rows = self
                .session
                .candidates(sa, sb)
                .into_iter()
                .map(|p| (p, None))
                .collect();
        }
        self.state = State::Assertions { rels, idx: 0 };
    }

    fn assertions(&mut self, event: Event, rels: bool, idx: usize) {
        let row_count = if rels { self.rel_rows.len() } else { self.obj_rows.len() };
        match event.key() {
            Some('e') => self.state = State::MainMenu,
            Some('s')
                if row_count > 0 => {
                    self.state = State::Assertions { rels, idx: (idx + 1) % row_count };
                }
            Some(c) if c.is_ascii_digit() => {
                let Some(assertion) = Assertion::from_code(c as u8 - b'0') else {
                    self.status = Some("codes are 0-5".into());
                    return;
                };
                if idx >= row_count {
                    return;
                }
                let outcome = if rels {
                    let pair = self.rel_rows[idx].0.clone();
                    self.session
                        .assert_rels(pair.left, pair.right, assertion)
                        .map(|d| d.len())
                } else {
                    let pair = self.obj_rows[idx].0.clone();
                    self.session
                        .assert_objects(pair.left, pair.right, assertion)
                        .map(|d| d.len())
                };
                match outcome {
                    Ok(derived) => {
                        if rels {
                            self.rel_rows[idx].1 = Some(assertion.code());
                        } else {
                            self.obj_rows[idx].1 = Some(assertion.code());
                        }
                        if derived > 0 {
                            self.status =
                                Some(format!("{derived} assertion(s) derived automatically"));
                        }
                        let next = (idx + 1).min(row_count.saturating_sub(1));
                        self.state = State::Assertions { rels, idx: next };
                    }
                    Err(CoreError::Conflict(report)) => {
                        let mut rows = vec![ConflictRow {
                            left: report.pair.0.clone(),
                            right: report.pair.1.clone(),
                            current: report
                                .existing
                                .singleton()
                                .map(rel_code)
                                .unwrap_or_else(|| report.existing.to_string()),
                            note: "<derived>(CONFLICT)".into(),
                        }];
                        rows.push(ConflictRow {
                            left: report.pair.0.clone(),
                            right: report.pair.1.clone(),
                            current: report.rejected.code().to_string(),
                            note: "<new>(CONFLICT)".into(),
                        });
                        for s in &report.supports {
                            rows.push(ConflictRow {
                                left: s.a.clone(),
                                right: s.b.clone(),
                                current: s.label.clone(),
                                note: String::new(),
                            });
                        }
                        self.state = State::Conflict { rels, idx, rows };
                    }
                    Err(e) => self.status = Some(format!("error: {e}")),
                }
            }
            _ => {}
        }
    }

    fn conflict(&mut self, event: Event, rels: bool, idx: usize) {
        match event.key() {
            Some('c') => self.state = State::AskConflictChange { rels, idx },
            _ => self.state = State::Assertions { rels, idx },
        }
    }

    /// Conflict repair: `<left> <right> <code>` retracts the user
    /// assertion between the named pair and records the new code
    /// (dotted `schema.Object` names as displayed on the screen).
    fn ask_conflict_change(&mut self, event: Event, rels: bool, idx: usize) {
        let Some(text) = event.as_text() else { return };
        self.state = State::Assertions { rels, idx };
        let parts: Vec<&str> = text.split_whitespace().collect();
        if parts.len() != 3 {
            self.status = Some("enter: <schema.Object> <schema.Object> <code>".into());
            return;
        }
        let Some(assertion) = parts[2]
            .parse::<u8>()
            .ok()
            .and_then(Assertion::from_code)
        else {
            self.status = Some("bad assertion code".into());
            return;
        };
        let resolve = |dotted: &str| -> Option<GObj> {
            let (schema, object) = dotted.split_once('.')?;
            self.session.object_named(schema, object).ok()
        };
        if rels {
            self.status = Some("conflict repair for relationships: retract via API".into());
            return;
        }
        let (Some(a), Some(b)) = (resolve(parts[0]), resolve(parts[1])) else {
            self.status = Some("cannot resolve the pair".into());
            return;
        };
        if !self.session.retract_objects(a, b) {
            self.status = Some("no user assertion between that pair".into());
            return;
        }
        match self.session.assert_objects(a, b, assertion) {
            Ok(_) => self.status = Some("assertion changed".into()),
            Err(e) => self.status = Some(format!("error: {e}")),
        }
    }

    // ------------------------------------------------------------------
    // Task 6: viewer
    // ------------------------------------------------------------------

    fn enter_viewer(&mut self) {
        let Some((sa, sb)) = self.pair else {
            self.status = Some("run tasks 2-5 first".into());
            return;
        };
        match self.session.integrate(sa, sb, &IntegrationOptions::default()) {
            Ok(integrated) => {
                self.integrated = Some(integrated);
                self.state = State::ViewObjects { selected: None };
            }
            Err(e) => self.status = Some(format!("integration failed: {e}")),
        }
    }

    fn view_objects(&mut self, event: Event, selected: Option<String>) {
        match &event {
            Event::Text(name) => {
                self.state = State::ViewObjects {
                    selected: Some(name.trim().to_owned()),
                };
            }
            Event::Key(k) => {
                let k = k.to_ascii_lowercase();
                if k == 'x' {
                    self.state = State::MainMenu;
                    return;
                }
                let Some(name) = selected else {
                    self.status = Some("type an object class name first".into());
                    return;
                };
                let Some(integrated) = &self.integrated else { return };
                let is_rel = integrated.schema.rel_by_name(&name).is_some();
                let is_obj = integrated.schema.object_by_name(&name).is_some();
                match k {
                    'a' if is_obj || is_rel => {
                        self.state = State::ViewAttrs { name, is_rel };
                    }
                    'e' | 'c' if is_obj => {
                        self.state = State::ViewElement { name, is_rel: false };
                    }
                    'r' if is_rel => {
                        self.state = State::ViewElement { name, is_rel: true };
                    }
                    _ => {
                        self.status = Some(format!("`{name}` does not support that view"));
                        self.state = State::ViewObjects { selected: Some(name) };
                    }
                }
            }
        }
    }

    fn view_element(&mut self, event: Event, name: String, is_rel: bool) {
        match event.key() {
            Some('a') => self.state = State::ViewAttrs { name, is_rel },
            Some('q') => self.state = State::ViewEquivalent { name, is_rel },
            Some('p') if is_rel => self.state = State::ViewParticipating { name },
            Some('x') => self.state = State::ViewObjects { selected: None },
            _ => self.state = State::ViewElement { name, is_rel },
        }
    }

    fn view_attrs(&mut self, event: Event, name: String, is_rel: bool) {
        match &event {
            Event::Key(k) if k.eq_ignore_ascii_case(&'x') => {
                self.state = State::ViewObjects { selected: None };
            }
            Event::Key(k) if k.is_ascii_digit() => {
                let attr = (*k as u8 - b'0') as usize;
                if attr == 0 {
                    return;
                }
                self.state = State::ViewComponent {
                    name,
                    is_rel,
                    attr: attr - 1,
                    comp: 0,
                };
            }
            _ => self.state = State::ViewAttrs { name, is_rel },
        }
    }

    fn view_component(
        &mut self,
        event: Event,
        name: String,
        is_rel: bool,
        attr: usize,
        comp: usize,
    ) {
        if event.key() == Some('q') {
            self.state = State::ViewAttrs { name, is_rel };
            return;
        }
        // Any key: advance to the next component, cycling back to the
        // attribute screen after the last (Screens 12a → 12b → back).
        let total = self
            .component_count(&name, is_rel, attr)
            .unwrap_or(0);
        if comp + 1 < total {
            self.state = State::ViewComponent { name, is_rel, attr, comp: comp + 1 };
        } else {
            self.state = State::ViewAttrs { name, is_rel };
        }
    }

    fn component_count(&self, name: &str, is_rel: bool, attr: usize) -> Option<usize> {
        let integrated = self.integrated.as_ref()?;
        if is_rel {
            let rid = integrated.schema.rel_by_name(name)?;
            integrated
                .rel_attr_prov
                .get(rid.index())?
                .get(attr)
                .map(|p| p.components.len())
        } else {
            let oid = integrated.schema.object_by_name(name)?;
            integrated
                .object_attr_prov
                .get(oid.index())?
                .get(attr)
                .map(|p| p.components.len())
        }
    }

    // ------------------------------------------------------------------
    // Rendering
    // ------------------------------------------------------------------

    /// Render the current screen.
    pub fn render(&self) -> Frame {
        let mut frame = self.render_inner();
        if let Some(status) = &self.status {
            let row = frame.height() - 4;
            frame.put(row, 2, &format!("* {status}"));
        }
        frame
    }

    fn render_inner(&self) -> Frame {
        match &self.state {
            State::MainMenu => screens::main_menu(),
            State::SchemaNames => screens::schema_name(&self.schema_names_list(), None),
            State::AskSchemaName => {
                screens::schema_name(&self.schema_names_list(), Some("Schema name =>"))
            }
            State::Structures => self.render_structures(None),
            State::AskStructName => self.render_structures(Some("Object name =>")),
            State::AskStructType => self.render_structures(Some("Type (E/C/R) =>")),
            State::AskCategoryParents => {
                let p = self.pending.as_ref().and_then(|p| p.structures.last());
                screens::category_info(
                    self.pending_name(),
                    p.map(|s| s.name.as_str()).unwrap_or(""),
                    &p.map(|s| s.parents.clone()).unwrap_or_default(),
                    Some("Connected entity/category (empty line ends) =>"),
                )
            }
            State::AskRelLeg => {
                let p = self.pending.as_ref().and_then(|p| p.structures.last());
                let legs: Vec<(String, String)> = p
                    .map(|s| {
                        s.legs
                            .iter()
                            .map(|(o, c)| (o.clone(), c.to_string()))
                            .collect()
                    })
                    .unwrap_or_default();
                screens::relationship_info(
                    self.pending_name(),
                    p.map(|s| s.name.as_str()).unwrap_or(""),
                    &legs,
                    Some("Participant `Object (min,max)` (empty line ends) =>"),
                )
            }
            State::AskAttr => {
                let p = self.pending.as_ref().and_then(|p| p.structures.last());
                let rows: Vec<(String, String, char)> = p
                    .map(|s| {
                        s.attrs
                            .iter()
                            .map(|(n, d, k)| (n.clone(), d.tag(), if *k { 'y' } else { 'n' }))
                            .collect()
                    })
                    .unwrap_or_default();
                screens::attribute_info(
                    self.pending_name(),
                    p.map(|s| s.name.as_str()).unwrap_or(""),
                    p.map(|s| s.kind).unwrap_or('e'),
                    &rows,
                    Some("Attribute `name domain [key]` (empty line ends) =>"),
                )
            }
            State::EqSchemaSelect { .. } => {
                screens::schema_select(&self.schema_names_list(), None)
            }
            State::EqObjectSelect { rels } => self.render_object_select(*rels),
            State::EqClasses { .. } => self.render_eq_classes(None),
            State::AskEqAdd { .. } => {
                self.render_eq_classes(Some("Add: left# right# =>"))
            }
            State::AskEqDel { .. } => {
                self.render_eq_classes(Some("Delete: side(1/2) attr# =>"))
            }
            State::Assertions { rels, idx } => self.render_assertions(*rels, *idx),
            State::Conflict { rows, .. } => screens::conflict_resolution(rows),
            State::AskConflictChange { .. } => {
                let mut f = screens::conflict_resolution(&[]);
                f.put(10, 4, "Change: <schema.Object> <schema.Object> <code>");
                f
            }
            State::ViewObjects { .. } => self.render_object_class(),
            State::ViewElement { name, is_rel } => self.render_element(name, *is_rel),
            State::ViewAttrs { name, is_rel } => self.render_attr_view(name, *is_rel),
            State::ViewComponent { name, is_rel, attr, comp } => {
                self.render_component(name, *is_rel, *attr, *comp)
            }
            State::ViewEquivalent { name, is_rel } => self.render_equivalent(name, *is_rel),
            State::ViewParticipating { name } => self.render_participating(name),
        }
    }

    fn schema_names_list(&self) -> Vec<String> {
        self.session
            .catalog()
            .schemas()
            .map(|(_, s)| s.name().to_owned())
            .collect()
    }

    fn pending_name(&self) -> &str {
        self.pending.as_ref().map(|p| p.name.as_str()).unwrap_or("")
    }

    fn render_structures(&self, pending: Option<&str>) -> Frame {
        let empty = ListWindow::new(10);
        let (name, rows, win) = match &self.pending {
            Some(p) => (
                p.name.as_str(),
                p.structures
                    .iter()
                    .map(|s| StructureRow {
                        name: s.name.clone(),
                        kind: s.kind,
                        attrs: s.attrs.len(),
                    })
                    .collect(),
                &p.win,
            ),
            None => ("", Vec::new(), &empty),
        };
        screens::structure_info(name, &rows, win, pending)
    }

    fn render_object_select(&self, rels: bool) -> Frame {
        let Some((sa, sb)) = self.pair else {
            return screens::object_select("?", &[], "?", &[], None);
        };
        let catalog = self.session.catalog();
        let list = |sid: SchemaId| -> Vec<(String, char)> {
            let schema = catalog.schema(sid);
            if rels {
                schema
                    .relationships()
                    .map(|(_, r)| (r.name.clone(), 'r'))
                    .collect()
            } else {
                schema
                    .objects()
                    .map(|(_, o)| (o.name.clone(), o.kind.tag()))
                    .collect()
            }
        };
        screens::object_select(
            catalog.schema(sa).name(),
            &list(sa),
            catalog.schema(sb).name(),
            &list(sb),
            None,
        )
    }

    fn render_eq_classes(&self, pending: Option<&str>) -> Frame {
        let Some((ta, tb)) = self.eq_targets else {
            return screens::equivalence("?", &[], "?", &[], pending);
        };
        let catalog = self.session.catalog();
        let equiv = self.session.equivalences();
        let rows = |t: EqTarget| -> (String, Vec<(String, u32)>) {
            match t {
                EqTarget::Object(o) => {
                    let schema = catalog.schema(o.schema);
                    let obj = schema.object(o.object);
                    let rows = obj
                        .attributes
                        .iter()
                        .enumerate()
                        .map(|(i, a)| {
                            let ga = GAttr::object(o.schema, o.object, AttrId::new(i as u32));
                            (a.name.clone(), equiv.class_no(ga).unwrap_or(0))
                        })
                        .collect();
                    (format!("{}.{}", schema.name(), obj.name), rows)
                }
                EqTarget::Rel(r) => {
                    let schema = catalog.schema(r.schema);
                    let rel = schema.relationship(r.rel);
                    let rows = rel
                        .attributes
                        .iter()
                        .enumerate()
                        .map(|(i, a)| {
                            let ga = GAttr::rel(r.schema, r.rel, AttrId::new(i as u32));
                            (a.name.clone(), equiv.class_no(ga).unwrap_or(0))
                        })
                        .collect();
                    (format!("{}.{}", schema.name(), rel.name), rows)
                }
            }
        };
        let (n1, r1) = rows(ta);
        let (n2, r2) = rows(tb);
        screens::equivalence(&n1, &r1, &n2, &r2, pending)
    }

    fn render_assertions(&self, rels: bool, idx: usize) -> Frame {
        let catalog = self.session.catalog();
        let rows: Vec<AssertionRow> = if rels {
            self.rel_rows
                .iter()
                .map(|(p, entered)| AssertionRow {
                    left: catalog.rel_display(p.left),
                    right: catalog.rel_display(p.right),
                    ratio: p.ratio,
                    entered: *entered,
                })
                .collect()
        } else {
            self.obj_rows
                .iter()
                .map(|(p, entered)| AssertionRow {
                    left: catalog.obj_display(p.left),
                    right: catalog.obj_display(p.right),
                    ratio: p.ratio,
                    entered: *entered,
                })
                .collect()
        };
        screens::assertion_collection(&rows, idx, rels)
    }

    fn render_object_class(&self) -> Frame {
        let Some(integrated) = &self.integrated else {
            return screens::object_class(&[], &[], &[]);
        };
        let schema = &integrated.schema;
        let entities: Vec<String> = schema
            .entity_sets()
            .map(|(_, o)| o.name.clone())
            .collect();
        let categories: Vec<String> = schema
            .categories()
            .map(|(_, o)| o.name.clone())
            .collect();
        let relationships: Vec<String> = schema
            .relationships()
            .map(|(_, r)| r.name.clone())
            .collect();
        screens::object_class(&entities, &categories, &relationships)
    }

    fn render_element(&self, name: &str, is_rel: bool) -> Frame {
        let Some(integrated) = &self.integrated else {
            return screens::element_view("Object", name, &[], &[]);
        };
        let schema = &integrated.schema;
        if is_rel {
            // Parents/children through the relationship lattice.
            let Some(rid) = schema.rel_by_name(name) else {
                return screens::element_view("Relationship", name, &[], &[]);
            };
            let parents: Vec<(String, char)> = integrated
                .rel_lattice
                .iter()
                .filter(|(c, _)| *c == rid)
                .map(|(_, p)| (schema.relationship(*p).name.clone(), 'R'))
                .collect();
            let children: Vec<(String, char)> = integrated
                .rel_lattice
                .iter()
                .filter(|(_, p)| *p == rid)
                .map(|(c, _)| (schema.relationship(*c).name.clone(), 'R'))
                .collect();
            screens::element_view("Relationship", name, &parents, &children)
        } else {
            let Some(oid) = schema.object_by_name(name) else {
                return screens::element_view("Category", name, &[], &[]);
            };
            let obj = schema.object(oid);
            let kind_label = if obj.kind.is_category() { "Category" } else { "Entity" };
            let tag = |k: &ObjectKind| if k.is_category() { 'C' } else { 'E' };
            let parents: Vec<(String, char)> = obj
                .parents()
                .iter()
                .map(|&p| (schema.object(p).name.clone(), tag(&schema.object(p).kind)))
                .collect();
            let children: Vec<(String, char)> = schema
                .children_of(oid)
                .map(|c| (schema.object(c).name.clone(), tag(&schema.object(c).kind)))
                .collect();
            screens::element_view(kind_label, name, &parents, &children)
        }
    }

    fn render_attr_view(&self, name: &str, is_rel: bool) -> Frame {
        let Some(integrated) = &self.integrated else {
            return screens::attribute_view(name, "?", &[]);
        };
        let schema = &integrated.schema;
        let (kind, rows): (&str, Vec<(String, String, char, bool)>) = if is_rel {
            match schema.rel_by_name(name) {
                Some(rid) => (
                    "relationship",
                    schema
                        .relationship(rid)
                        .attributes
                        .iter()
                        .enumerate()
                        .map(|(i, a)| {
                            let derived = integrated.rel_attr_prov[rid.index()]
                                .get(i)
                                .map(|p| p.is_derived())
                                .unwrap_or(false);
                            (a.name.clone(), a.domain.tag(), a.key.flag(), derived)
                        })
                        .collect(),
                ),
                None => ("relationship", Vec::new()),
            }
        } else {
            match schema.object_by_name(name) {
                Some(oid) => {
                    let obj = schema.object(oid);
                    (
                        if obj.kind.is_category() { "category" } else { "entity" },
                        obj.attributes
                            .iter()
                            .enumerate()
                            .map(|(i, a)| {
                                let derived = integrated.object_attr_prov[oid.index()]
                                    .get(i)
                                    .map(|p| p.is_derived())
                                    .unwrap_or(false);
                                (a.name.clone(), a.domain.tag(), a.key.flag(), derived)
                            })
                            .collect(),
                    )
                }
                None => ("entity", Vec::new()),
            }
        };
        screens::attribute_view(name, kind, &rows)
    }

    fn render_component(&self, name: &str, is_rel: bool, attr: usize, comp: usize) -> Frame {
        let Some(integrated) = &self.integrated else {
            return screens::object_class(&[], &[], &[]);
        };
        let schema = &integrated.schema;
        let view = (|| {
            let (owner_kind, attr_name, prov) = if is_rel {
                let rid = schema.rel_by_name(name)?;
                let rel = schema.relationship(rid);
                (
                    "relationship".to_owned(),
                    rel.attributes.get(attr)?.name.clone(),
                    integrated.rel_attr_prov.get(rid.index())?.get(attr)?,
                )
            } else {
                let oid = schema.object_by_name(name)?;
                let obj = schema.object(oid);
                (
                    if obj.kind.is_category() {
                        "category".to_owned()
                    } else {
                        "entity".to_owned()
                    },
                    obj.attributes.get(attr)?.name.clone(),
                    integrated.object_attr_prov.get(oid.index())?.get(attr)?,
                )
            };
            let c = prov.components.get(comp)?;
            Some(screens::ComponentView {
                owner: name.to_owned(),
                owner_kind,
                attr: attr_name,
                comp_name: c.attr.name.clone(),
                domain: c.attr.domain.tag(),
                key: c.attr.is_key(),
                original_object: c.owner.clone(),
                original_type: c.owner_kind,
                original_schema: c.schema.clone(),
                index: comp + 1,
                total: prov.components.len(),
            })
        })();
        match view {
            Some(v) => screens::component_attribute(&v),
            None => screens::attribute_view(name, "?", &[]),
        }
    }

    fn render_equivalent(&self, name: &str, is_rel: bool) -> Frame {
        let Some(integrated) = &self.integrated else {
            return screens::equivalent_view(name, &[]);
        };
        let catalog = self.session.catalog();
        let members: Vec<String> = if is_rel {
            integrated
                .schema
                .rel_by_name(name)
                .and_then(|rid| integrated.rel_origin.get(rid.index()))
                .map(|origin| match origin {
                    RelOrigin::Copied(g) => vec![catalog.rel_display(*g)],
                    RelOrigin::Merged(gs) => gs.iter().map(|&g| catalog.rel_display(g)).collect(),
                    RelOrigin::DerivedSuper { children } => children
                        .iter()
                        .map(|&c| integrated.schema.relationship(c).name.clone())
                        .collect(),
                })
                .unwrap_or_default()
        } else {
            integrated
                .schema
                .object_by_name(name)
                .and_then(|oid| integrated.object_origin.get(oid.index()))
                .map(|origin| match origin {
                    NodeOrigin::Copied(g) => vec![catalog.obj_display(*g)],
                    NodeOrigin::Merged(gs) => {
                        gs.iter().map(|&g| catalog.obj_display(g)).collect()
                    }
                    NodeOrigin::DerivedSuper { children } => children
                        .iter()
                        .map(|&c| integrated.schema.object(c).name.clone())
                        .collect(),
                })
                .unwrap_or_default()
        };
        screens::equivalent_view(name, &members)
    }

    fn render_participating(&self, name: &str) -> Frame {
        let Some(integrated) = &self.integrated else {
            return screens::participating_view(name, &[]);
        };
        let schema = &integrated.schema;
        let rows: Vec<(String, char, String)> = schema
            .rel_by_name(name)
            .map(|rid| {
                schema
                    .relationship(rid)
                    .participants
                    .iter()
                    .map(|p| {
                        let obj = schema.object(p.object);
                        (
                            obj.name.clone(),
                            if obj.kind.is_category() { 'C' } else { 'E' },
                            p.cardinality.to_string(),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default();
        screens::participating_view(name, &rows)
    }
}

fn rel_code(r: sit_core::assertion::Rel5) -> String {
    use sit_core::assertion::Rel5;
    match r {
        Rel5::Eq => "1",
        Rel5::Pp => "2",
        Rel5::Ppi => "3",
        Rel5::Po => "5",
        Rel5::Dr => "0",
    }
    .to_owned()
}

/// Parse `Object (min,max)` with `max` possibly `n`.
fn parse_leg(text: &str) -> Option<(String, Cardinality)> {
    let (obj, card) = text.split_once('(')?;
    let card = card.trim().strip_suffix(')')?;
    let (min, max) = card.split_once(',')?;
    let min: u32 = min.trim().parse().ok()?;
    let max = match max.trim() {
        "n" | "N" => None,
        v => Some(v.parse().ok()?),
    };
    let c = Cardinality::new(min, max);
    c.is_valid().then(|| (obj.trim().to_owned(), c))
}

/// Parse `name domain [key]`.
fn parse_attr(text: &str) -> Option<(String, Domain, bool)> {
    let mut parts = text.split_whitespace();
    let name = parts.next()?.to_owned();
    let domain: Domain = parts.next()?.parse().ok()?;
    let key = match parts.next() {
        None => false,
        Some("key") | Some("y") => true,
        Some(_) => return None,
    };
    Some((name, domain, key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::keys;

    fn feed(app: &mut App, events: Vec<Event>) {
        for e in events {
            app.handle(e);
        }
    }

    /// Collect the paper's sc1 interactively through Screens 2–5.
    fn collect_sc1(app: &mut App) {
        feed(app, keys("1a")); // main menu → task 1 → add
        feed(app, vec![Event::text("sc1")]);
        // Student (e) with Name key, GPA.
        feed(app, keys("a"));
        feed(app, vec![Event::text("Student")]);
        feed(app, keys("e"));
        feed(
            app,
            vec![
                Event::text("Name char key"),
                Event::text("GPA real"),
                Event::text(""),
            ],
        );
        // Department (e).
        feed(app, keys("a"));
        feed(app, vec![Event::text("Department")]);
        feed(app, keys("e"));
        feed(app, vec![Event::text("Dname char key"), Event::text("")]);
        // Majors (r): Student (0,1), Department (0,n); Since: date.
        feed(app, keys("a"));
        feed(app, vec![Event::text("Majors")]);
        feed(app, keys("r"));
        feed(
            app,
            vec![
                Event::text("Student (0,1)"),
                Event::text("Department (0,n)"),
                Event::text(""),
                Event::text("Since date"),
                Event::text(""),
            ],
        );
        // Exit structures (commit), exit names.
        feed(app, keys("ee"));
    }

    #[test]
    fn interactive_collection_builds_the_paper_schema() {
        let mut app = App::new();
        collect_sc1(&mut app);
        let catalog = app.session().catalog();
        let sc1 = catalog.by_name("sc1").expect("schema committed");
        let schema = catalog.schema(sc1);
        assert_eq!(schema.object_count(), 2);
        assert_eq!(schema.relationship_count(), 1);
        assert_eq!(schema, &sit_ecr::fixtures::sc1(), "matches the fixture");
        // We are back at the main menu.
        assert!(app.render().contains("Main Menu"));
    }

    #[test]
    fn structure_screen_shows_collected_rows() {
        let mut app = App::new();
        feed(&mut app, keys("1a"));
        feed(&mut app, vec![Event::text("sc1")]);
        feed(&mut app, keys("a"));
        feed(&mut app, vec![Event::text("Student")]);
        feed(&mut app, keys("e"));
        feed(
            &mut app,
            vec![Event::text("Name char key"), Event::text("GPA real"), Event::text("")],
        );
        let f = app.render();
        assert!(f.contains("SCHEMA NAME: sc1"), "{f}");
        assert!(f.contains("1> Student"), "{f}");
    }

    #[test]
    fn category_collection_routes_through_parent_screen() {
        let mut app = App::new();
        feed(&mut app, keys("1a"));
        feed(&mut app, vec![Event::text("s")]);
        feed(&mut app, keys("a"));
        feed(&mut app, vec![Event::text("Person")]);
        feed(&mut app, keys("e"));
        feed(&mut app, vec![Event::text("ssn int key"), Event::text("")]);
        feed(&mut app, keys("a"));
        feed(&mut app, vec![Event::text("Adult")]);
        feed(&mut app, keys("c"));
        assert!(app.render().contains("Category Information"));
        feed(&mut app, vec![Event::text("Person"), Event::text("")]);
        feed(&mut app, vec![Event::text("")]); // no extra attrs
        feed(&mut app, keys("ee"));
        let catalog = app.session().catalog();
        let sid = catalog.by_name("s").unwrap();
        let schema = catalog.schema(sid);
        let adult = schema.object(schema.object_by_name("Adult").unwrap());
        assert!(adult.kind.is_category());
    }

    #[test]
    fn invalid_input_reports_status_and_stays() {
        let mut app = App::new();
        feed(&mut app, keys("1a"));
        feed(&mut app, vec![Event::text("s")]);
        feed(&mut app, keys("a"));
        feed(&mut app, vec![Event::text("X")]);
        feed(&mut app, keys("z")); // bad type
        assert!(app.render().contains("type must be e, c or r"));
        feed(&mut app, keys("e")); // now valid
        feed(&mut app, vec![Event::text("bad attr line !!")]);
        assert!(app.render().contains("cannot parse attribute"));
    }

    #[test]
    fn main_menu_guards_order() {
        let mut app = App::new();
        // Task 3 before task 2: refused with guidance.
        app.handle(Event::Key('3'));
        assert!(app.render().contains("run task 2 first"));
        // Task 6 without schemas: refused.
        app.handle(Event::Key('6'));
        assert!(app.render().contains("run tasks 2-5 first"));
    }
}
