//! Golden-frame tests: exact rendered text of the key screens. Any layout
//! drift fails these tests with a readable diff.

use sit_tui::app::App;
use sit_tui::event::Event;
use sit_tui::screens::{self, AssertionRow};

/// Compare a frame with the expected text, ignoring trailing whitespace
/// and the blank interior rows (so the goldens stay readable).
fn assert_frame(frame: &sit_tui::Frame, expected: &str) {
    let actual: Vec<String> = frame
        .to_string()
        .lines()
        .map(|l| l.trim_end().to_owned())
        .filter(|l| !l.trim_start().trim_end_matches('|').trim().is_empty() || l.contains('-'))
        .collect();
    let expected: Vec<String> = expected
        .lines()
        .map(|l| l.trim_end().to_owned())
        .filter(|l| !l.is_empty())
        .collect();
    for (i, e) in expected.iter().enumerate() {
        assert!(
            actual.iter().any(|a| a == e),
            "missing golden line {i}:\n  expected: {e:?}\n  frame:\n{frame}"
        );
    }
}

#[test]
fn golden_main_menu() {
    let frame = App::new().render();
    assert_frame(
        &frame,
        "\
|                          SCHEMA INTEGRATION TOOL                           |
|                               < Main Menu >                                |
|       1.  Collect schema definitions                                       |
|       2.  Specify equivalence among attributes of object classes           |
|       3.  Specify assertions between object classes                        |
|       4.  Specify equivalence among attributes of relationship sets        |
|       5.  Specify assertions between relationship sets                     |
|       6.  View the results of integration                                  |
| Choose a task (1-6), or (E)xit =>                                          |",
    );
}

#[test]
fn golden_screen8_rows() {
    // The exact three rows of the paper's Screen 8.
    let rows = vec![
        AssertionRow {
            left: "sc1.Department".into(),
            right: "sc2.Department".into(),
            ratio: 0.5,
            entered: Some(1),
        },
        AssertionRow {
            left: "sc1.Student".into(),
            right: "sc2.Grad_student".into(),
            ratio: 0.5,
            entered: Some(3),
        },
        AssertionRow {
            left: "sc1.Student".into(),
            right: "sc2.Faculty".into(),
            ratio: 1.0 / 3.0,
            entered: Some(4),
        },
    ];
    let frame = screens::assertion_collection(&rows, 2, false);
    assert_frame(
        &frame,
        "\
|                          ASSERTION SPECIFICATION                           |
| sc1.Department          sc2.Department          0.5000      =>1            |
| sc1.Student             sc2.Grad_student        0.5000      =>3            |
| sc1.Student             sc2.Faculty             0.3333      =>4            |
|   1 - OB_CL_name_1 'equals' OB_CL_name_2                                   |
|   0 - OB_CL_name_1 and OB_CL_name_2 are disjoint & non-integratable        |",
    );
}

#[test]
fn golden_screen12_component() {
    let v = screens::ComponentView {
        owner: "Student".into(),
        owner_kind: "category".into(),
        attr: "D_Name".into(),
        comp_name: "Name".into(),
        domain: "char".into(),
        key: true,
        original_object: "Student".into(),
        original_type: 'E',
        original_schema: "sc1".into(),
        index: 1,
        total: 2,
    };
    let frame = screens::component_attribute(&v);
    assert_frame(
        &frame,
        "\
|                         COMPONENT ATTRIBUTE SCREEN                         |
|       Attribute Name        : Name                                         |
|       Domain                : char                                         |
|       Key                   : YES                                          |
|       original Object Name  : Student                                      |
|       original type         : E                                            |
|       original Schema Name  : sc1                                          |",
    );
}

#[test]
fn golden_interactive_session_is_stable() {
    // Drive the full paper session twice; frames must be identical
    // (the tool is deterministic).
    let run = || {
        let mut session = sit_core::session::Session::new();
        session.add_schema(sit_ecr::fixtures::sc1()).unwrap();
        session.add_schema(sit_ecr::fixtures::sc2()).unwrap();
        let mut app = App::with_session(session);
        let script = [
            Event::Key('2'),
            Event::text("sc1 sc2"),
            Event::text("Student Grad_student"),
            Event::Key('a'),
            Event::text("1 1"),
            Event::Key('e'),
            Event::text("Department Department"),
            Event::Key('a'),
            Event::text("1 1"),
            Event::Key('e'),
            Event::Key('e'),
            Event::Key('3'),
            Event::Key('1'),
            Event::Key('3'),
            Event::Key('e'),
            Event::Key('6'),
        ];
        let mut frames = String::new();
        for e in script {
            app.handle(e);
            frames.push_str(&app.render().to_string());
        }
        frames
    };
    assert_eq!(run(), run());
}
