//! Scripted end-to-end sessions reproducing the paper's screens.
//!
//! Drives the tool exactly as a DDA at the terminal would — main menu,
//! equivalence specification, assertion entry, viewing — and checks the
//! rendered frames against the content of Screens 6–12.

use sit_core::session::Session;
use sit_ecr::fixtures;
use sit_tui::app::App;
use sit_tui::event::{keys, Event};

fn feed(app: &mut App, events: Vec<Event>) {
    for e in events {
        app.handle(e);
    }
}

/// App with sc1/sc2 pre-registered (phase 1 done) and tasks 2+3 driven
/// through the screens, ready for integration.
fn paper_app() -> App {
    let mut session = Session::new();
    session.add_schema(fixtures::sc1()).unwrap();
    session.add_schema(fixtures::sc2()).unwrap();
    let mut app = App::with_session(session);

    // Task 2: equivalences via Screens 6-7.
    feed(&mut app, keys("2"));
    feed(&mut app, vec![Event::text("sc1 sc2")]);
    // Student vs Grad_student: Name≡Name (1 1), GPA≡GPA (2 2).
    feed(&mut app, vec![Event::text("Student Grad_student")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("2 2")]);
    feed(&mut app, keys("e"));
    // Student vs Faculty: Name≡Name.
    feed(&mut app, vec![Event::text("Student Faculty")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("e"));
    // Department vs Department: Dname≡Dname.
    feed(&mut app, vec![Event::text("Department Department")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("e"));
    feed(&mut app, keys("e")); // back to main menu

    // Task 4: relationship attribute equivalence (Since ≡ Since).
    feed(&mut app, keys("4"));
    feed(&mut app, vec![Event::text("sc1 sc2")]);
    feed(&mut app, vec![Event::text("Majors Majors")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("e"));
    feed(&mut app, keys("e"));

    app
}

#[test]
fn screen7_equivalence_classes() {
    let mut session = Session::new();
    session.add_schema(fixtures::sc1()).unwrap();
    session.add_schema(fixtures::sc2()).unwrap();
    let mut app = App::with_session(session);
    feed(&mut app, keys("2"));
    feed(&mut app, vec![Event::text("sc1 sc2")]);
    feed(&mut app, vec![Event::text("Student Grad_student")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    let f = app.render();
    // Screen 7: sc1.Student.Name and sc2.Grad_student.Name share class 1;
    // GPA stays at 2 vs 6; Support_type at 7.
    assert!(f.contains("sc1.Student"), "{f}");
    assert!(f.contains("sc2.Grad_student"), "{f}");
    let name_row = f.find("1> Name").expect("name rows");
    let text = f.row_text(name_row);
    let ones = text.matches(" 1").count();
    assert!(ones >= 2, "both Name columns show class 1: {text}");
    let gpa_row = f.row_text(f.find("2> GPA").unwrap());
    assert!(gpa_row.contains('2') && gpa_row.contains('6'), "{gpa_row}");
    let sup_row = f.row_text(f.find("3> Support_type").unwrap());
    assert!(sup_row.contains('7'), "{sup_row}");
}

#[test]
fn screen8_ranked_rows_and_entry() {
    let mut app = paper_app();
    feed(&mut app, keys("3"));
    let f = app.render();
    assert!(f.contains("Assertion Collection"), "{f}");
    assert!(f.contains("sc1.Department") && f.contains("sc2.Department"), "{f}");
    assert!(f.contains("0.5000"), "{f}");
    assert!(f.contains("0.3333"), "{f}");
    assert!(f.contains("'equals'"), "legend shown");
    // Enter the paper's codes: the ranked order is Department/Department,
    // Student/Grad_student, Student/Faculty.
    feed(&mut app, keys("134"));
    let f = app.render();
    assert!(f.contains("=>1"), "{f}");
    assert!(f.contains("=>3"), "{f}");
    assert!(f.contains("=>4"), "{f}");
    feed(&mut app, keys("e"));

    // Task 5: relationship assertion Majors ≡ Majors.
    feed(&mut app, keys("5"));
    let f = app.render();
    assert!(f.contains("sc1.Majors"), "{f}");
    feed(&mut app, keys("1e"));

    // Task 6: Screen 10.
    feed(&mut app, keys("6"));
    let f = app.render();
    assert!(f.contains("Entities(2)"), "{f}");
    assert!(f.contains("Categories(3)"), "{f}");
    assert!(f.contains("Relationships(2)"), "{f}");
    assert!(f.contains("E_Department"), "{f}");
    assert!(f.contains("D_Stud_Facu"), "{f}");
    assert!(f.contains("E_Stud_Majo"), "{f}");
    assert!(f.contains("Works"), "{f}");
}

#[test]
fn screen11_and_12_viewer_drilldown() {
    let mut app = paper_app();
    feed(&mut app, keys("3"));
    feed(&mut app, keys("134e"));
    feed(&mut app, keys("5"));
    feed(&mut app, keys("1e"));
    feed(&mut app, keys("6"));

    // Screen 11: Category Screen for Student.
    feed(&mut app, vec![Event::text("Student")]);
    feed(&mut app, keys("c"));
    let f = app.render();
    assert!(f.contains("Category Screen"), "{f}");
    assert!(f.contains("< Student >"), "{f}");
    assert!(f.contains("D_Stud_Facu (E)"), "{f}");
    assert!(f.contains("Grad_student (C)"), "{f}");

    // Attribute Screen for Student: D_Name derived.
    feed(&mut app, keys("a"));
    let f = app.render();
    assert!(f.contains("Attribute Screen"), "{f}");
    assert!(f.contains("D_Name"), "{f}");
    assert!(f.contains("yes"), "derived flag shown");

    // Screen 12a: first component of D_Name.
    feed(&mut app, keys("1"));
    let f = app.render();
    assert!(f.contains("COMPONENT ATTRIBUTE SCREEN"), "{f}");
    assert!(f.contains("< D_Name (1 of 2) >"), "{f}");
    assert!(f.contains(": sc1"), "{f}");
    assert!(f.contains(": YES"), "{f}");

    // Screen 12b: any key advances to the second component.
    feed(&mut app, keys(" "));
    let f = app.render();
    assert!(f.contains("< D_Name (2 of 2) >"), "{f}");
    assert!(f.contains(": sc2"), "{f}");
    assert!(f.contains(": Grad_student"), "{f}");

    // Any key returns to the Attribute Screen.
    feed(&mut app, keys(" "));
    assert!(app.render().contains("Attribute Screen"));
}

#[test]
fn screen9_conflict_and_repair() {
    let mut session = Session::new();
    session.add_schema(fixtures::sc3()).unwrap();
    session.add_schema(fixtures::sc4()).unwrap();
    let mut app = App::with_session(session);

    // Make the pair selectable (task 2 chooses the schemas), declaring
    // the Name attributes equivalent so the candidate list is non-empty.
    feed(&mut app, keys("2"));
    feed(&mut app, vec![Event::text("sc3 sc4")]);
    feed(&mut app, vec![Event::text("Instructor Grad_student")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("e"));
    feed(&mut app, vec![Event::text("Instructor Student")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("e"));
    feed(&mut app, keys("e"));

    feed(&mut app, keys("3"));
    let f = app.render();
    assert!(f.contains("sc3.Instructor"), "{f}");

    // The ranked rows are Instructor/Grad_student then Instructor/Student
    // (same ratio, definition order). Assert 2 (contained in) on the
    // first; Instructor ⊆ Student is derived via sc4's category edge.
    feed(&mut app, keys("2"));
    assert!(app.render().contains("derived"), "derivation reported");

    // Now assert 0 (disjoint non-integrable) on Instructor/Student:
    // Screen 9 appears with the derivation chain.
    feed(&mut app, keys("0"));
    let f = app.render();
    assert!(f.contains("Assertion Conflict Resolution"), "{f}");
    assert!(f.contains("<derived>(CONFLICT)"), "{f}");
    assert!(f.contains("<new>(CONFLICT)"), "{f}");
    assert!(f.contains("sc4.Grad_student"), "supporting fact listed: {f}");

    // Repair by changing the earlier assertion (Instructor contained-in
    // Grad_student). The paper suggests "0" or "5"; our closure is
    // complete over the relation algebra and (correctly) still rejects
    // disjointness under "5" (overlap with a subset of Student forces a
    // non-empty intersection with Student), so the sound repair is "0".
    feed(&mut app, keys("c"));
    feed(
        &mut app,
        vec![Event::text("sc3.Instructor sc4.Grad_student 0")],
    );
    assert!(app.render().contains("Assertion Collection"), "back on Screen 8");
    // The repaired pair now accepts the disjoint assertion.
    feed(&mut app, keys("0"));
    let f = app.render();
    assert!(!f.contains("CONFLICT"), "{f}");
}

#[test]
fn equivalent_screen_lists_merge_members() {
    let mut app = paper_app();
    feed(&mut app, keys("3"));
    feed(&mut app, keys("134e"));
    feed(&mut app, keys("5"));
    feed(&mut app, keys("1e"));
    feed(&mut app, keys("6"));
    feed(&mut app, vec![Event::text("E_Department")]);
    feed(&mut app, keys("e"));
    let f = app.render();
    assert!(f.contains("Entity Screen"), "{f}");
    feed(&mut app, keys("q"));
    let f = app.render();
    assert!(f.contains("Equivalent Screen"), "{f}");
    assert!(f.contains("sc1.Department"), "{f}");
    assert!(f.contains("sc2.Department"), "{f}");
}

#[test]
fn participating_objects_screen() {
    let mut app = paper_app();
    feed(&mut app, keys("3"));
    feed(&mut app, keys("134e"));
    feed(&mut app, keys("5"));
    feed(&mut app, keys("1e"));
    feed(&mut app, keys("6"));
    feed(&mut app, vec![Event::text("E_Stud_Majo")]);
    feed(&mut app, keys("r"));
    assert!(app.render().contains("Relationship Screen"));
    feed(&mut app, keys("p"));
    let f = app.render();
    assert!(f.contains("Participating Objects"), "{f}");
    assert!(f.contains("Student"), "{f}");
    assert!(f.contains("E_Department"), "{f}");
}
