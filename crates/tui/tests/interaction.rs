//! Interaction details of the tool: scrolling, equivalence-class deletion,
//! assertion skipping, the relationship-side screens (tasks 4/5), and
//! error statuses — the paths the paper-session test doesn't exercise.

use sit_core::session::Session;
use sit_ecr::{ddl, fixtures};
use sit_tui::app::App;
use sit_tui::event::{keys, Event};

fn feed(app: &mut App, events: Vec<Event>) {
    for e in events {
        app.handle(e);
    }
}

#[test]
fn structure_screen_scrolls_and_wraps() {
    let mut app = App::new();
    feed(&mut app, keys("1a"));
    feed(&mut app, vec![Event::text("big")]);
    // Add 13 entities — more than the 10-row page.
    for i in 0..13 {
        feed(&mut app, keys("a"));
        feed(&mut app, vec![Event::text(format!("E{i:02}"))]);
        feed(&mut app, keys("e"));
        feed(&mut app, vec![Event::text("")]);
    }
    let f = app.render();
    assert!(f.contains("1> E00"), "{f}");
    assert!(!f.contains("12> E11"), "first page ends at 10: {f}");
    // Scroll: the second page appears.
    feed(&mut app, keys("s"));
    let f = app.render();
    assert!(f.contains("11> E10"), "{f}");
    assert!(f.contains("13> E12"), "{f}");
    assert!(!f.contains("1> E00"), "{f}");
    // Scrolling past the end wraps to the top.
    feed(&mut app, keys("s"));
    assert!(app.render().contains("1> E00"));
}

#[test]
fn equivalence_delete_restores_singleton_class() {
    let mut session = Session::new();
    session.add_schema(fixtures::sc1()).unwrap();
    session.add_schema(fixtures::sc2()).unwrap();
    let mut app = App::with_session(session);
    feed(&mut app, keys("2"));
    feed(&mut app, vec![Event::text("sc1 sc2")]);
    feed(&mut app, vec![Event::text("Student Grad_student")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    // Both Name rows now share class 1.
    let f = app.render();
    let row = f.row_text(f.find("1> Name").unwrap());
    assert!(row.matches(" 1").count() >= 2, "{row}");
    // Delete side 2's attribute 1 from its class.
    feed(&mut app, keys("d"));
    feed(&mut app, vec![Event::text("2 1")]);
    assert!(app.render().contains("removed from its class"));
    // Grad_student.Name shows its original number (5) again.
    let f = app.render();
    let row = f.row_text(f.find("1> Name").unwrap());
    assert!(row.contains('5'), "{row}");
}

#[test]
fn assertion_skip_cycles_rows() {
    let mut session = Session::new();
    session.add_schema(fixtures::sc1()).unwrap();
    session.add_schema(fixtures::sc2()).unwrap();
    let mut app = App::with_session(session);
    feed(&mut app, keys("2"));
    feed(&mut app, vec![Event::text("sc1 sc2")]);
    feed(&mut app, vec![Event::text("Student Grad_student")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("e"));
    feed(&mut app, vec![Event::text("Department Department")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("ee"));
    feed(&mut app, keys("3"));
    // Two candidate rows; the marker starts on row 0.
    let f = app.render();
    let dept_row = f.row_text(f.find("sc1.Department").unwrap());
    assert!(dept_row.contains("=>"), "{dept_row}");
    // Skip: marker moves to the second row.
    feed(&mut app, keys("s"));
    let f = app.render();
    let stud_row = f.row_text(f.find("sc1.Student").unwrap());
    assert!(stud_row.contains("=>"), "{stud_row}");
    // Skipping wraps back.
    feed(&mut app, keys("s"));
    let f = app.render();
    let dept_row = f.row_text(f.find("sc1.Department").unwrap());
    assert!(dept_row.contains("=>"), "{dept_row}");
}

#[test]
fn relationship_equivalence_screens_list_rel_sets() {
    let mut session = Session::new();
    session.add_schema(fixtures::sc1()).unwrap();
    session.add_schema(fixtures::sc2()).unwrap();
    let mut app = App::with_session(session);
    feed(&mut app, keys("4"));
    feed(&mut app, vec![Event::text("sc1 sc2")]);
    let f = app.render();
    // Screen 6 variant for relationships: rel names with (r) tags.
    assert!(f.contains("Majors (r)"), "{f}");
    assert!(f.contains("Works (r)"), "{f}");
    feed(&mut app, vec![Event::text("Majors Majors")]);
    let f = app.render();
    assert!(f.contains("sc1.Majors"), "{f}");
    assert!(f.contains("1> Since"), "{f}");
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    assert!(app.render().contains("equivalence recorded"));
    // The session recorded it.
    let since1 = app.session().catalog().attr_named("sc1", "Majors", "Since").unwrap();
    let since2 = app.session().catalog().attr_named("sc2", "Majors", "Since").unwrap();
    assert!(app.session().equivalences().equivalent(since1, since2));
}

#[test]
fn bad_inputs_surface_statuses_not_crashes() {
    let mut session = Session::new();
    session.add_schema(fixtures::sc1()).unwrap();
    session.add_schema(fixtures::sc2()).unwrap();
    let mut app = App::with_session(session);
    feed(&mut app, keys("2"));
    feed(&mut app, vec![Event::text("sc1")]); // one name only
    assert!(app.render().contains("enter exactly two schema names"));
    feed(&mut app, vec![Event::text("sc1 sc1")]); // identical
    assert!(app.render().contains("unknown or identical"));
    feed(&mut app, vec![Event::text("sc1 sc2")]);
    feed(&mut app, vec![Event::text("Student Nothing")]); // unknown object
    assert!(app.render().contains("unknown object/relationship name"));
    feed(&mut app, vec![Event::text("Student Grad_student")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("9 9")]); // out of range
    assert!(app.render().contains("out of range"));
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("2 2")]); // GPA real vs Name? no: 2=GPA/2=GPA ok
    // Incompatible domains: Name (char) vs GPA (real).
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 2")]);
    // The full message is clipped by the 78-column frame; match the stem.
    assert!(app.render().contains("incompat"), "{}", app.render());
}

#[test]
fn assertion_codes_out_of_menu_are_rejected() {
    let mut session = Session::new();
    session
        .add_schema(ddl::parse("schema x { entity A { id: int key; } }").unwrap())
        .unwrap();
    session
        .add_schema(ddl::parse("schema y { entity B { id: int key; } }").unwrap())
        .unwrap();
    let mut app = App::with_session(session);
    feed(&mut app, keys("2"));
    feed(&mut app, vec![Event::text("x y")]);
    feed(&mut app, vec![Event::text("A B")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("ee"));
    feed(&mut app, keys("3"));
    feed(&mut app, keys("7")); // not a menu code
    assert!(app.render().contains("codes are 0-5"));
    feed(&mut app, keys("1"));
    // The assertion was applied after the valid code.
    let a = app.session().object_named("x", "A").unwrap();
    let b = app.session().object_named("y", "B").unwrap();
    assert_eq!(
        app.session().effective_assertion(a, b),
        Some(sit_core::assertion::Assertion::Equal)
    );
}

#[test]
fn viewer_guards_unknown_names_and_wrong_kinds() {
    let mut session = Session::new();
    session.add_schema(fixtures::sc1()).unwrap();
    session.add_schema(fixtures::sc2()).unwrap();
    let mut app = App::with_session(session);
    // Minimal pair + assertion so task 6 can integrate.
    feed(&mut app, keys("2"));
    feed(&mut app, vec![Event::text("sc1 sc2")]);
    feed(&mut app, vec![Event::text("Department Department")]);
    feed(&mut app, keys("a"));
    feed(&mut app, vec![Event::text("1 1")]);
    feed(&mut app, keys("ee"));
    feed(&mut app, keys("3"));
    feed(&mut app, keys("1e"));
    feed(&mut app, keys("6"));
    assert!(app.render().contains("Object Class Screen"));
    // Choosing a view without selecting a name first.
    feed(&mut app, keys("a"));
    assert!(app.render().contains("type an object class name first"));
    // A relationship view on an object class is refused.
    feed(&mut app, vec![Event::text("E_Department")]);
    feed(&mut app, keys("r"));
    assert!(app.render().contains("does not support that view"));
    // e<x>it returns to the main menu.
    feed(&mut app, keys("x"));
    assert!(app.render().contains("Main Menu"));
}
