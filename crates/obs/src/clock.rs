//! Time sources for traces and latency metrics.
//!
//! Everything in this crate reads time through the [`Clock`] trait so a
//! caller can decide what "now" means: wall-clock monotonic nanoseconds
//! in production ([`MonotonicClock`]), a hand-cranked counter in tests
//! ([`ManualClock`]), or the fault layer's virtual clock under chaos
//! schedules — which is the point: timing fields rendered through an
//! injected clock are a pure function of the schedule, not of the host,
//! so byte-traced workloads can include them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
///
/// Implementations must be cheap (called twice per span) and never go
/// backwards. The epoch is arbitrary — only differences and ordering
/// are meaningful.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's (arbitrary) origin.
    fn now_ns(&self) -> u64;
}

/// Wall-clock time: nanoseconds since the clock was created.
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A clock that only moves when told to — deterministic tests, frozen
/// benchmark fixtures.
#[derive(Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A clock frozen at t=0.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advance by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let mut last = c.now_ns();
        for _ in 0..1000 {
            let now = c.now_ns();
            assert!(now >= last);
            last = now;
        }
    }

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0);
        c.advance_ns(250);
        assert_eq!(c.now_ns(), 250);
        c.advance_ns(1);
        assert_eq!(c.now_ns(), 251);
    }
}
