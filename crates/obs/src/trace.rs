//! Spans, instant events, the bounded ring collector, and Chrome
//! `trace_event` export.
//!
//! ## Model
//!
//! A [`Tracer`] is a cheap (`Arc`) handle on a collector: a bounded ring
//! of finished [`TraceEvent`]s (oldest overwritten once full, with a
//! drop counter) plus the [`Clock`] that timestamps them. A [`Span`] is
//! an RAII guard: created with a start timestamp, recorded as one
//! *complete* event when dropped — which keeps the per-thread span
//! stack balanced even when the guarded code panics, because unwinding
//! runs the drop. Instant events ([`Tracer::instant`]) record a single
//! point in time.
//!
//! Nesting is tracked in a thread-local stack of `(tracer, span)` id
//! pairs: a new span's parent is the innermost live span *of the same
//! tracer* on this thread, so two tracers interleaved on one thread
//! never cross-link.
//!
//! ## The current tracer
//!
//! Library code deep in the engine should not thread a `Tracer` through
//! every signature. Instead, a caller that owns a tracer installs it
//! for a scope ([`set_current`], also RAII), and the free functions
//! [`span`] / [`instant`] attach to it — or no-op, at the cost of one
//! thread-local read, when no tracer is installed. This keeps the core
//! crates dependency-light and makes instrumentation free for callers
//! that never trace.
//!
//! ## Export
//!
//! [`chrome_json`] renders events in the Chrome `trace_event` JSON
//! format (`{"traceEvents":[...]}`, timestamps in microseconds), the
//! lingua franca of `chrome://tracing` and Perfetto. Span ids and
//! parent links ride along in `args`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::Clock;
use crate::sync::lock_recover;

/// Default ring capacity (finished events retained).
pub const DEFAULT_CAPACITY: usize = 16_384;

/// Event kind, mirroring the Chrome `trace_event` `ph` field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// A span with a duration (`ph:"X"`).
    Complete,
    /// A single point in time (`ph:"i"`).
    Instant,
}

/// One finished event in the ring.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Span id, unique within the tracer (instants get ids too).
    pub id: u64,
    /// Id of the enclosing span of the same tracer on the same thread.
    pub parent: Option<u64>,
    /// Static name (`"dispatch"`, `"closure.assert"`, ...).
    pub name: &'static str,
    /// Complete span or instant.
    pub phase: Phase,
    /// Start timestamp from the tracer's [`Clock`].
    pub start_ns: u64,
    /// Duration (0 for instants).
    pub dur_ns: u64,
    /// Small per-thread label (threads are numbered in first-trace
    /// order, process-wide).
    pub tid: u64,
    /// Attached key/value arguments.
    pub args: Vec<(&'static str, String)>,
}

struct Inner {
    tracer_id: u64,
    clock: Arc<dyn Clock>,
    capacity: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
    next_span: AtomicU64,
    dropped: AtomicU64,
    enabled: AtomicBool,
}

/// A handle on one collector; clones share the ring.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Innermost-last stack of (tracer id, span id) for live spans.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    /// Scoped current tracer (innermost last).
    static CURRENT: RefCell<Vec<Tracer>> = const { RefCell::new(Vec::new()) };
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

impl Tracer {
    /// A fresh, enabled tracer over `clock` retaining at most
    /// `capacity` finished events.
    pub fn new(clock: Arc<dyn Clock>, capacity: usize) -> Tracer {
        Tracer {
            inner: Arc::new(Inner {
                tracer_id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                clock,
                capacity: capacity.max(1),
                // Preallocated so steady-state recording never grows
                // the buffer under the lock.
                ring: Mutex::new(VecDeque::with_capacity(capacity.max(1).min(DEFAULT_CAPACITY))),
                next_span: AtomicU64::new(1),
                dropped: AtomicU64::new(0),
                enabled: AtomicBool::new(true),
            }),
        }
    }

    /// The clock events are timestamped with.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.inner.clock
    }

    /// Disable (or re-enable) collection; a disabled tracer hands out
    /// no-op spans.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Is collection on?
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Open a span; it records itself when dropped.
    pub fn span(&self, name: &'static str) -> Span {
        if !self.is_enabled() {
            return Span::disabled();
        }
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let tracer_id = self.inner.tracer_id;
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s
                .iter()
                .rev()
                .find(|&&(t, _)| t == tracer_id)
                .map(|&(_, sp)| sp);
            s.push((tracer_id, id));
            parent
        });
        Span {
            tracer: Some(self.clone()),
            id,
            parent,
            name,
            start_ns: self.inner.clock.now_ns(),
            args: Vec::new(),
        }
    }

    /// Record an instant event.
    pub fn instant(&self, name: &'static str) {
        self.instant_with(name, Vec::new());
    }

    /// Record an instant event with one argument.
    pub fn instant_arg(&self, name: &'static str, key: &'static str, value: impl Into<String>) {
        self.instant_with(name, vec![(key, value.into())]);
    }

    fn instant_with(&self, name: &'static str, args: Vec<(&'static str, String)>) {
        if !self.is_enabled() {
            return;
        }
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let tracer_id = self.inner.tracer_id;
        let parent = SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|&&(t, _)| t == tracer_id)
                .map(|&(_, sp)| sp)
        });
        let now = self.inner.clock.now_ns();
        self.record(TraceEvent {
            id,
            parent,
            name,
            phase: Phase::Instant,
            start_ns: now,
            dur_ns: 0,
            tid: current_tid(),
            args,
        });
    }

    fn record(&self, event: TraceEvent) {
        let mut ring = lock_recover(&self.inner.ring);
        if ring.len() >= self.inner.capacity {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        lock_recover(&self.inner.ring).iter().cloned().collect()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        lock_recover(&self.inner.ring).len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Drop all retained events (the drop counter is kept).
    pub fn clear(&self) {
        lock_recover(&self.inner.ring).clear();
    }

    /// All retained events as Chrome trace JSON.
    pub fn export_chrome(&self) -> String {
        chrome_json(&self.snapshot())
    }
}

/// RAII span guard from [`Tracer::span`] / [`span`]; records one
/// complete event on drop (including during unwinding, which is what
/// keeps the thread-local span stack balanced under panics).
pub struct Span {
    tracer: Option<Tracer>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_ns: u64,
    args: Vec<(&'static str, String)>,
}

impl Span {
    /// A span that records nothing (disabled tracer, or no current
    /// tracer installed).
    pub fn disabled() -> Span {
        Span {
            tracer: None,
            id: 0,
            parent: None,
            name: "",
            start_ns: 0,
            args: Vec::new(),
        }
    }

    /// Attach a key/value argument (exported under `args`).
    pub fn set_arg(&mut self, key: &'static str, value: impl Into<String>) {
        if self.tracer.is_some() {
            self.args.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(tracer) = self.tracer.take() else {
            return;
        };
        let tracer_id = tracer.inner.tracer_id;
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Spans drop LIFO except when tracers interleave, so the
            // top-of-stack check almost always hits.
            if s.last() == Some(&(tracer_id, self.id)) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&e| e == (tracer_id, self.id)) {
                s.remove(pos);
            }
        });
        let end = tracer.inner.clock.now_ns();
        tracer.record(TraceEvent {
            id: self.id,
            parent: self.parent,
            name: self.name,
            phase: Phase::Complete,
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            tid: current_tid(),
            args: std::mem::take(&mut self.args),
        });
    }
}

/// Guard from [`set_current`]; uninstalls the tracer on drop.
pub struct CurrentGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Install `tracer` as this thread's current tracer for the guard's
/// lifetime (nestable; innermost wins).
pub fn set_current(tracer: &Tracer) -> CurrentGuard {
    CURRENT.with(|c| c.borrow_mut().push(tracer.clone()));
    CurrentGuard {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// This thread's current tracer, if one is installed.
pub fn current() -> Option<Tracer> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// Open a span on the current tracer — a no-op span when none is
/// installed. This is the form library code uses.
pub fn span(name: &'static str) -> Span {
    match current() {
        Some(t) => t.span(name),
        None => Span::disabled(),
    }
}

/// Record an instant event on the current tracer, if any.
pub fn instant(name: &'static str) {
    if let Some(t) = current() {
        t.instant(name);
    }
}

/// Render events as Chrome `trace_event` JSON
/// (`{"traceEvents":[...]}`; `ts`/`dur` in microseconds with
/// nanosecond precision kept as fractions).
pub fn chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 112);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        escape_into(&mut out, e.name);
        out.push_str(",\"cat\":\"sit\",\"ph\":");
        out.push_str(match e.phase {
            Phase::Complete => "\"X\"",
            Phase::Instant => "\"i\"",
        });
        out.push_str(",\"ts\":");
        push_us(&mut out, e.start_ns);
        if e.phase == Phase::Complete {
            out.push_str(",\"dur\":");
            push_us(&mut out, e.dur_ns);
        } else {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&e.tid.to_string());
        out.push_str(",\"args\":{\"id\":");
        out.push_str(&e.id.to_string());
        if let Some(parent) = e.parent {
            out.push_str(",\"parent\":");
            out.push_str(&parent.to_string());
        }
        for (k, v) in &e.args {
            out.push(',');
            escape_into(&mut out, k);
            out.push(':');
            escape_into(&mut out, v);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Nanoseconds as a microsecond decimal (`1234` → `1.234`).
fn push_us(out: &mut String, ns: u64) {
    out.push_str(&(ns / 1_000).to_string());
    out.push('.');
    let frac = ns % 1_000;
    out.push((b'0' + (frac / 100) as u8) as char);
    out.push((b'0' + (frac / 10 % 10) as u8) as char);
    out.push((b'0' + (frac % 10) as u8) as char);
}

/// JSON string literal with the escapes the in-tree wire parser
/// round-trips.
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn manual_tracer(cap: usize) -> (Arc<ManualClock>, Tracer) {
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::new(clock.clone() as Arc<dyn Clock>, cap);
        (clock, tracer)
    }

    #[test]
    fn spans_nest_and_record_durations() {
        let (clock, tracer) = manual_tracer(16);
        {
            let mut outer = tracer.span("outer");
            outer.set_arg("k", "v");
            clock.advance_ns(1_000);
            {
                let _inner = tracer.span("inner");
                clock.advance_ns(500);
            }
            clock.advance_ns(250);
        }
        let events = tracer.snapshot();
        assert_eq!(events.len(), 2);
        // Inner finishes (and records) first.
        let inner = &events[0];
        let outer = &events[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.start_ns, 1_000);
        assert_eq!(inner.dur_ns, 500);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.start_ns, 0);
        assert_eq!(outer.dur_ns, 1_750);
        assert_eq!(outer.parent, None);
        assert_eq!(outer.args, vec![("k", "v".to_string())]);
    }

    #[test]
    fn instants_attach_to_the_enclosing_span() {
        let (_clock, tracer) = manual_tracer(16);
        {
            let _s = tracer.span("request");
            tracer.instant_arg("fault", "event", "read.split@7");
        }
        let events = tracer.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].phase, Phase::Instant);
        assert_eq!(events[0].parent, Some(events[1].id));
        assert_eq!(events[0].args[0].1, "read.split@7");
    }

    #[test]
    fn ring_bounds_retention_and_counts_drops() {
        let (_clock, tracer) = manual_tracer(4);
        for _ in 0..10 {
            tracer.instant("tick");
        }
        assert_eq!(tracer.len(), 4);
        assert_eq!(tracer.dropped(), 6);
        tracer.clear();
        assert!(tracer.is_empty());
        assert_eq!(tracer.dropped(), 6);
    }

    #[test]
    fn span_stack_balances_across_panics() {
        let (_clock, tracer) = manual_tracer(16);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _outer = tracer.span("outer");
            let _inner = tracer.span("inner");
            panic!("unwind through two live spans");
        }));
        assert!(result.is_err());
        // Both spans were recorded by their unwinding drops, and the
        // thread-local stack is balanced: a fresh span sees no parent.
        assert_eq!(tracer.len(), 2);
        drop(tracer.span("after"));
        let events = tracer.snapshot();
        let after = events.iter().find(|e| e.name == "after").unwrap();
        assert_eq!(after.parent, None);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let (_clock, tracer) = manual_tracer(16);
        tracer.set_enabled(false);
        drop(tracer.span("ignored"));
        tracer.instant("ignored");
        assert!(tracer.is_empty());
        tracer.set_enabled(true);
        drop(tracer.span("kept"));
        assert_eq!(tracer.len(), 1);
    }

    #[test]
    fn current_tracer_is_scoped_and_optional() {
        // No tracer installed: free-function spans are no-ops.
        drop(span("orphan"));
        instant("orphan");
        let (_clock, tracer) = manual_tracer(16);
        {
            let _guard = set_current(&tracer);
            let _s = span("attached");
        }
        drop(span("after-scope"));
        let events = tracer.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "attached");
    }

    #[test]
    fn interleaved_tracers_never_cross_link() {
        let (_ca, a) = manual_tracer(16);
        let (_cb, b) = manual_tracer(16);
        {
            let _sa = a.span("a-outer");
            let _sb = b.span("b-outer");
            let _sa2 = a.span("a-inner");
        }
        let ev_a = a.snapshot();
        let a_outer = ev_a.iter().find(|e| e.name == "a-outer").unwrap();
        let a_inner = ev_a.iter().find(|e| e.name == "a-inner").unwrap();
        // a-inner's parent is a-outer, not the (innermost) b-outer.
        assert_eq!(a_inner.parent, Some(a_outer.id));
        let ev_b = b.snapshot();
        assert_eq!(ev_b.len(), 1);
        assert_eq!(ev_b[0].parent, None);
    }

    #[test]
    fn chrome_json_shape() {
        let (clock, tracer) = manual_tracer(16);
        clock.advance_ns(1_234);
        {
            let mut s = tracer.span("with \"quotes\"\n");
            s.set_arg("op", "ping");
            clock.advance_ns(2_001);
        }
        let json = tracer.export_chrome();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":1.234"));
        assert!(json.contains("\"dur\":2.001"));
        assert!(json.contains("\\\"quotes\\\"\\n"));
        assert!(json.contains("\"op\":\"ping\""));
        // Empty export is still a valid document.
        assert_eq!(chrome_json(&[]), "{\"traceEvents\":[]}");
    }
}
