//! Lock-free counters, base-2 log-bucketed histograms, and Prometheus
//! text exposition.
//!
//! A [`Histogram`] spreads the full `u64` range over [`BUCKETS`] = 65
//! buckets: bucket 0 holds exactly the value 0, bucket *k* (1 ≤ *k* ≤
//! 64) holds values in `(2^(k-1) − 1, 2^k − 1]` — i.e. values whose
//! bit-length is *k*. Recording is four relaxed atomic updates (bucket,
//! sum, count, min/max), so it is safe on any hot path; reads taken
//! while writers are active are eventually consistent, never torn per
//! field. Quantiles are nearest-rank over buckets and return the
//! matched bucket's upper bound — an estimate with ≤ 2× relative
//! error, which is the deal log-bucketing makes for fixed memory and
//! lock-freedom (the previous server metrics kept a 16K-sample ring
//! per verb and sorted a clone of it under the registry mutex on every
//! `stats` call).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically-increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count: value 0, plus one bucket per bit-length of `u64`.
pub const BUCKETS: usize = 65;

/// A fixed-memory, lock-free, log-bucketed (base-2) histogram.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index `value` falls into (its bit-length).
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `index`: 0, 1, 3, 7, ...,
    /// `2^63 − 1`, `u64::MAX`.
    pub fn bucket_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            1..=63 => (1u64 << index) - 1,
            _ => u64::MAX,
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (exact; 0 when empty).
    pub fn min(&self) -> u64 {
        if self.count() == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        }
    }

    /// Largest observation (exact; 0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Count in bucket `index`.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index].load(Ordering::Relaxed)
    }

    /// All bucket counts.
    pub fn counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.bucket_count(i))
    }

    /// Fold `other` into `self` (bucket-wise; min/max/sum/count merge
    /// exactly, so merging equals having recorded the union).
    pub fn merge_from(&self, other: &Histogram) {
        for i in 0..BUCKETS {
            let n = other.bucket_count(i);
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        let other_count = other.count();
        if other_count > 0 {
            self.count.fetch_add(other_count, Ordering::Relaxed);
            self.min
                .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
            self.max.fetch_max(other.max(), Ordering::Relaxed);
        }
    }

    /// Nearest-rank `num/den` quantile, as the upper bound of the
    /// bucket holding that rank (0 when empty). `quantile(1, 2)` is
    /// the median estimate, `quantile(19, 20)` the p95 estimate.
    pub fn quantile(&self, num: u32, den: u32) -> u64 {
        assert!(den > 0 && num <= den, "quantile must be in [0, 1]");
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((count as u128 * num as u128).div_ceil(den as u128) as u64).max(1);
        let mut cumulative = 0u64;
        for i in 0..BUCKETS {
            cumulative = cumulative.saturating_add(self.bucket_count(i));
            if cumulative >= rank {
                return Self::bucket_bound(i);
            }
        }
        Self::bucket_bound(BUCKETS - 1)
    }
}

/// Append one Prometheus counter sample. `labels` is the rendered
/// inner label list (`verb="ping"`), possibly empty.
pub fn prom_counter(out: &mut String, name: &str, labels: &str, value: u64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Append a Prometheus histogram family: cumulative `_bucket` lines up
/// to the highest non-empty bound, a `+Inf` bucket, `_sum`, `_count`.
pub fn prom_histogram(out: &mut String, name: &str, labels: &str, h: &Histogram) {
    let counts = h.counts();
    let top = counts
        .iter()
        .take(BUCKETS - 1)
        .rposition(|&c| c > 0)
        .unwrap_or(0);
    let mut cumulative = 0u64;
    for (i, &c) in counts.iter().enumerate().take(top + 1) {
        cumulative += c;
        let le = Histogram::bucket_bound(i).to_string();
        prom_bucket(out, name, labels, &le, cumulative);
    }
    prom_bucket(out, name, labels, "+Inf", h.count());
    prom_counter(out, &format!("{name}_sum"), labels, h.sum());
    prom_counter(out, &format!("{name}_count"), labels, h.count());
}

fn prom_bucket(out: &mut String, name: &str, labels: &str, le: &str, value: u64) {
    out.push_str(name);
    out.push_str("_bucket{");
    if !labels.is_empty() {
        out.push_str(labels);
        out.push(',');
    }
    out.push_str("le=\"");
    out.push_str(le);
    out.push_str("\"} ");
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Escape a label value per the Prometheus text format.
pub fn prom_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn bucket_boundaries_are_bit_lengths() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(255), 8);
        assert_eq!(Histogram::bucket_index(256), 9);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(1), 1);
        assert_eq!(Histogram::bucket_bound(2), 3);
        assert_eq!(Histogram::bucket_bound(9), 511);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
        // Every value sits in its bucket's half-open range.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 511, 512, 1 << 40, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_bound(i), "{v}");
            if i > 0 {
                assert!(v > Histogram::bucket_bound(i - 1), "{v}");
            }
        }
    }

    #[test]
    fn records_and_estimates() {
        let h = Histogram::new();
        for i in 1..=100u64 {
            h.record(i * 10);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 50_500);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 1_000);
        // Exact median 500 lands in (255, 511]; exact p95 950 in
        // (511, 1023]: quantiles answer the bucket upper bound.
        assert_eq!(h.quantile(1, 2), 511);
        assert_eq!(h.quantile(19, 20), 1023);
        assert_eq!(h.quantile(0, 1), Histogram::bucket_bound(Histogram::bucket_index(10)));
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(1, 2), 0);
    }

    #[test]
    fn prom_rendering_is_cumulative_and_bounded() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(3);
        h.record(500);
        let mut out = String::new();
        prom_histogram(&mut out, "lat", "verb=\"x\"", &h);
        let expected = "\
lat_bucket{verb=\"x\",le=\"0\"} 2\n\
lat_bucket{verb=\"x\",le=\"1\"} 2\n\
lat_bucket{verb=\"x\",le=\"3\"} 3\n\
lat_bucket{verb=\"x\",le=\"7\"} 3\n\
lat_bucket{verb=\"x\",le=\"15\"} 3\n\
lat_bucket{verb=\"x\",le=\"31\"} 3\n\
lat_bucket{verb=\"x\",le=\"63\"} 3\n\
lat_bucket{verb=\"x\",le=\"127\"} 3\n\
lat_bucket{verb=\"x\",le=\"255\"} 3\n\
lat_bucket{verb=\"x\",le=\"511\"} 4\n\
lat_bucket{verb=\"x\",le=\"+Inf\"} 4\n\
lat_sum{verb=\"x\"} 503\n\
lat_count{verb=\"x\"} 4\n";
        assert_eq!(out, expected);
        let mut bare = String::new();
        prom_counter(&mut bare, "up", "", 1);
        assert_eq!(bare, "up 1\n");
        assert_eq!(prom_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
