#![warn(missing_docs)]
//! # sit-obs — the observability substrate
//!
//! The paper's tool was interactive: the DDA *watched* phase-2 ACS/OCS
//! recomputation and phase-3 assertion checking happen on screen. The
//! production-scale port serves those phases behind a wire protocol, so
//! the watching has to come back as instrumentation. This crate is the
//! substrate both layers share:
//!
//! * [`clock`] — a [`Clock`] trait over monotonic nanoseconds, with a
//!   wall-clock implementation and a manually-advanced one. The fault
//!   layer's virtual clock implements the same trait, so traces and
//!   latency metrics recorded under chaos schedules are deterministic.
//! * [`trace`] — spans and instant events. A [`Tracer`] owns a bounded
//!   in-memory ring of finished events (oldest overwritten, drops
//!   counted); span nesting is tracked per thread, and a scoped
//!   "current tracer" lets library code ([`trace::span`]) emit spans
//!   without plumbing a handle through every signature — a no-op when
//!   no tracer is installed. Export is Chrome `trace_event` JSON,
//!   viewable in `chrome://tracing` / Perfetto.
//! * [`metrics`] — lock-free [`Counter`]s and base-2 log-bucketed
//!   [`Histogram`]s (65 buckets cover the full `u64` range), with
//!   Prometheus text-exposition rendering.
//! * [`sync`] — [`lock_recover`], the poison-recovering lock helper:
//!   one panicking worker must not take observability down with it.
//!
//! Everything is `std`-only and allocation-light on the hot path: a
//! span is two clock reads, one ring push, and a thread-local stack
//! push/pop; a histogram record is four relaxed atomic updates.

pub mod clock;
pub mod metrics;
pub mod sync;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use metrics::{Counter, Histogram};
pub use sync::lock_recover;
pub use trace::{Span, TraceEvent, Tracer};
