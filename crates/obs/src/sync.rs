//! Poison-recovering locking.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock `m`, recovering the guard if a previous holder panicked.
///
/// Observability state (event rings, metric registries, fault logs) is
/// monotone append-mostly data: a panic mid-append leaves at worst one
/// torn record, never an invariant the rest of the system depends on.
/// Propagating the poison instead would let one panicking worker take
/// every later `stats`/`trace_dump`/`metrics_text` reader down with it
/// — exactly when the numbers are most interesting.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Mutex;

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = Mutex::new(vec![1u32]);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(result.is_err());
        assert!(m.is_poisoned());
        let mut guard = lock_recover(&m);
        guard.push(2);
        assert_eq!(*guard, vec![1, 2]);
    }
}
