//! Seeded property tests for the histogram layer: bucket membership,
//! merge = union, and quantile/nearest-rank agreement.

use sit_obs::metrics::Histogram;
use sit_prng::{prop, prop_assert, prop_assert_eq};

fn draw_value(rng: &mut sit_prng::Xoshiro256pp) -> u64 {
    // Spread draws across magnitudes so every bucket band gets
    // exercised, not just the 64-bit top end.
    let bits = rng.gen_range(0u32..65);
    if bits == 0 {
        0
    } else {
        let lo = if bits == 1 { 1 } else { 1u64 << (bits - 1) };
        let hi = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        lo + rng.gen_range(0u64..(hi - lo + 1).max(1))
    }
}

#[test]
fn bucket_membership_invariant() {
    prop::check("bucket holds exactly its bit-length band", |rng| {
        let v = draw_value(rng);
        let i = Histogram::bucket_index(v);
        prop_assert!(v <= Histogram::bucket_bound(i), "{v} above bound of {i}");
        if i > 0 {
            prop_assert!(
                v > Histogram::bucket_bound(i - 1),
                "{v} not above bound of {}",
                i - 1
            );
        }
        Ok(())
    });
}

#[test]
fn merge_equals_union() {
    prop::check("merge(a, b) == histogram(a ∪ b)", |rng| {
        let a: Vec<u64> = (0..rng.gen_range(0usize..80)).map(|_| draw_value(rng)).collect();
        let b: Vec<u64> = (0..rng.gen_range(0usize..80)).map(|_| draw_value(rng)).collect();
        let (ha, hb, hu) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &a {
            ha.record(v);
            hu.record(v);
        }
        for &v in &b {
            hb.record(v);
            hu.record(v);
        }
        ha.merge_from(&hb);
        prop_assert_eq!(ha.counts(), hu.counts());
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.sum(), hu.sum());
        prop_assert_eq!(ha.min(), hu.min());
        prop_assert_eq!(ha.max(), hu.max());
        prop_assert_eq!(ha.quantile(1, 2), hu.quantile(1, 2));
        prop_assert_eq!(ha.quantile(19, 20), hu.quantile(19, 20));
        Ok(())
    });
}

#[test]
fn quantile_matches_nearest_rank_sample() {
    prop::check("quantile = bucket bound of the nearest-rank sample", |rng| {
        let mut samples: Vec<u64> =
            (0..rng.gen_range(1usize..120)).map(|_| draw_value(rng)).collect();
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        samples.sort_unstable();
        let n = samples.len();
        for (num, den) in [(1u32, 2u32), (19, 20), (1, 100), (1, 1)] {
            let rank = ((n * num as usize).div_ceil(den as usize)).max(1);
            let expected = Histogram::bucket_bound(Histogram::bucket_index(samples[rank - 1]));
            prop_assert_eq!(h.quantile(num, den), expected);
        }
        prop_assert_eq!(h.min(), samples[0]);
        prop_assert_eq!(h.max(), samples[n - 1]);
        Ok(())
    });
}
