//! Relational schemas and their abstraction into ECR.
//!
//! The Navathe–Awong procedure interrogates the DDA about a relational
//! schema and classifies each relation before mapping it:
//!
//! * a relation whose key is its own (no foreign-key components) is a
//!   **base entity relation** → entity set;
//! * a relation whose entire primary key is a foreign key to a single
//!   other relation is a **subset relation** → category of that relation's
//!   entity set;
//! * a relation whose primary key is composed of two or more foreign keys
//!   is a **relationship relation** → relationship set over the referenced
//!   entity sets (its non-key columns become relationship attributes);
//! * a non-key foreign-key column in an entity relation expresses a
//!   many-to-one **implicit relationship** → a `(0,1)/(0,n)` relationship
//!   set named `<table>_<referenced table>`.
//!
//! The classification here is automatic (the "interrogation" answers are
//! taken from the declared keys); a DDA can override a table's
//! [`TableKind`] before translation when the key structure is misleading.

use std::collections::HashMap;

use sit_ecr::{Cardinality, Domain, EcrError, Schema, SchemaBuilder};

/// A column of a relational table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Domain, in ECR DDL notation (`char`, `int`, ...).
    pub domain: String,
    /// Member of the primary key?
    pub pk: bool,
    /// Foreign-key target `(table, column)` if any.
    pub fk: Option<(String, String)>,
}

/// How a relation maps into ECR.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TableKind {
    /// Independent entity relation → entity set.
    Entity,
    /// Primary key is one foreign key → category of the referenced entity.
    Subset,
    /// Primary key is ≥ 2 foreign keys → relationship set.
    Relationship,
}

/// A relational table definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Optional classification override (otherwise inferred from keys).
    pub kind_override: Option<TableKind>,
}

impl Table {
    /// New table with no columns.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            columns: Vec::new(),
            kind_override: None,
        }
    }

    /// Add a plain column.
    pub fn col(mut self, name: impl Into<String>, domain: impl Into<String>) -> Self {
        self.columns.push(Column {
            name: name.into(),
            domain: domain.into(),
            pk: false,
            fk: None,
        });
        self
    }

    /// Add a primary-key column.
    pub fn col_pk(mut self, name: impl Into<String>, domain: impl Into<String>) -> Self {
        self.columns.push(Column {
            name: name.into(),
            domain: domain.into(),
            pk: true,
            fk: None,
        });
        self
    }

    /// Add a foreign-key column.
    pub fn col_fk(
        mut self,
        name: impl Into<String>,
        domain: impl Into<String>,
        ref_table: impl Into<String>,
        ref_col: impl Into<String>,
    ) -> Self {
        self.columns.push(Column {
            name: name.into(),
            domain: domain.into(),
            pk: false,
            fk: Some((ref_table.into(), ref_col.into())),
        });
        self
    }

    /// Add a column that is both primary key and foreign key.
    pub fn col_pk_fk(
        mut self,
        name: impl Into<String>,
        domain: impl Into<String>,
        ref_table: impl Into<String>,
        ref_col: impl Into<String>,
    ) -> Self {
        self.columns.push(Column {
            name: name.into(),
            domain: domain.into(),
            pk: true,
            fk: Some((ref_table.into(), ref_col.into())),
        });
        self
    }

    /// Force the classification instead of inferring it.
    pub fn kind(mut self, kind: TableKind) -> Self {
        self.kind_override = Some(kind);
        self
    }

    /// Infer the ECR classification from the key structure.
    pub fn classify(&self) -> TableKind {
        if let Some(k) = self.kind_override {
            return k;
        }
        let pk_fk_targets: Vec<&str> = self
            .columns
            .iter()
            .filter(|c| c.pk)
            .filter_map(|c| c.fk.as_ref().map(|(t, _)| t.as_str()))
            .collect();
        let pk_count = self.columns.iter().filter(|c| c.pk).count();
        let mut distinct = pk_fk_targets.clone();
        distinct.sort_unstable();
        distinct.dedup();
        if pk_count > 0 && pk_fk_targets.len() == pk_count && distinct.len() >= 2 {
            TableKind::Relationship
        } else if pk_count > 0 && pk_fk_targets.len() == pk_count && distinct.len() == 1 {
            TableKind::Subset
        } else {
            TableKind::Entity
        }
    }
}

/// A relational schema: a named set of tables.
#[derive(Clone, Debug, Default)]
pub struct RelSchema {
    name: String,
    tables: Vec<Table>,
}

impl RelSchema {
    /// Empty schema.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tables: Vec::new(),
        }
    }

    /// Schema name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a table.
    pub fn table(&mut self, t: Table) -> &mut Self {
        self.tables.push(t);
        self
    }

    /// The tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Translate into an ECR schema.
    ///
    /// Entity tables first (entity sets), then subset tables (categories),
    /// then relationship tables and implicit many-to-one relationships.
    pub fn to_ecr(&self) -> Result<Schema, EcrError> {
        let kinds: HashMap<&str, TableKind> = self
            .tables
            .iter()
            .map(|t| (t.name.as_str(), t.classify()))
            .collect();
        let mut b = SchemaBuilder::new(self.name.clone());

        // 1. Entity relations → entity sets (all columns become
        //    attributes; FK columns used for implicit relationships are
        //    excluded from attributes).
        for t in &self.tables {
            if kinds[t.name.as_str()] != TableKind::Entity {
                continue;
            }
            let mut ob = b.entity_set(t.name.clone());
            for c in &t.columns {
                if c.fk.is_some() && !c.pk {
                    continue; // becomes an implicit relationship
                }
                let domain: Domain = c.domain.parse()?;
                ob = if c.pk {
                    ob.attr_key(c.name.clone(), domain)
                } else {
                    ob.attr(c.name.clone(), domain)
                };
            }
            ob.finish();
        }

        // 2. Subset relations → categories of the referenced object.
        //    Subsets may chain, so iterate until a fixpoint.
        let mut pending: Vec<&Table> = self
            .tables
            .iter()
            .filter(|t| kinds[t.name.as_str()] == TableKind::Subset)
            .collect();
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|t| {
                let target = t
                    .columns
                    .iter()
                    .find_map(|c| c.fk.as_ref().map(|(tb, _)| tb.clone()))
                    .expect("subset tables have a foreign key");
                if b.object_by_name(&target).is_none() {
                    return true; // parent not yet emitted
                }
                let mut ob = b
                    .category_of(t.name.clone(), &[target.as_str()])
                    .expect("target checked above");
                for c in &t.columns {
                    if c.fk.is_some() {
                        continue; // the key link is the category edge
                    }
                    let domain: Domain = match c.domain.parse() {
                        Ok(d) => d,
                        Err(_) => Domain::Char,
                    };
                    ob = if c.pk {
                        ob.attr_key(c.name.clone(), domain)
                    } else {
                        ob.attr(c.name.clone(), domain)
                    };
                }
                ob.finish();
                false
            });
            if pending.len() == before {
                let name = pending[0].name.clone();
                return Err(EcrError::UnknownName(format!(
                    "subset relation `{name}` references a missing or cyclic parent"
                )));
            }
        }

        // 3. Relationship relations → relationship sets.
        for t in &self.tables {
            if kinds[t.name.as_str()] != TableKind::Relationship {
                continue;
            }
            let mut legs = Vec::new();
            for c in t.columns.iter().filter(|c| c.pk) {
                let (target, _) = c.fk.as_ref().expect("classified as relationship");
                let oid = b
                    .object_by_name(target)
                    .ok_or_else(|| EcrError::UnknownName(target.clone()))?;
                legs.push(oid);
            }
            let mut rb = b.relationship(t.name.clone());
            for leg in legs {
                rb = rb.participant(leg, Cardinality::MANY);
            }
            for c in t.columns.iter().filter(|c| !c.pk) {
                let domain: Domain = c.domain.parse()?;
                rb = rb.attr(c.name.clone(), domain);
            }
            rb.finish();
        }

        // 4. Implicit many-to-one relationships from non-key FK columns of
        //    entity relations.
        for t in &self.tables {
            if kinds[t.name.as_str()] != TableKind::Entity {
                continue;
            }
            for c in t.columns.iter().filter(|c| c.fk.is_some() && !c.pk) {
                let (target, _) = c.fk.as_ref().expect("filtered");
                let src = b
                    .object_by_name(&t.name)
                    .ok_or_else(|| EcrError::UnknownName(t.name.clone()))?;
                let dst = b
                    .object_by_name(target)
                    .ok_or_else(|| EcrError::UnknownName(target.clone()))?;
                b.relationship(format!("{}_{}", t.name, target))
                    .participant(src, Cardinality::AT_MOST_ONE)
                    .participant(dst, Cardinality::MANY)
                    .finish();
            }
        }

        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sit_ecr::ObjectKind;

    fn company() -> RelSchema {
        let mut r = RelSchema::new("company");
        r.table(
            Table::new("employee")
                .col_pk("ssn", "int")
                .col("name", "char")
                .col_fk("dept_no", "int", "department", "dept_no"),
        );
        r.table(
            Table::new("department")
                .col_pk("dept_no", "int")
                .col("dname", "char"),
        );
        r.table(
            Table::new("manager")
                .col_pk_fk("ssn", "int", "employee", "ssn")
                .col("bonus", "real"),
        );
        r.table(
            Table::new("works_on")
                .col_pk_fk("ssn", "int", "employee", "ssn")
                .col_pk_fk("proj_no", "int", "project", "proj_no")
                .col("hours", "real"),
        );
        r.table(
            Table::new("project")
                .col_pk("proj_no", "int")
                .col("pname", "char"),
        );
        r
    }

    #[test]
    fn classification_follows_key_structure() {
        let r = company();
        let kind = |n: &str| {
            r.tables()
                .iter()
                .find(|t| t.name == n)
                .unwrap()
                .classify()
        };
        assert_eq!(kind("employee"), TableKind::Entity);
        assert_eq!(kind("department"), TableKind::Entity);
        assert_eq!(kind("manager"), TableKind::Subset);
        assert_eq!(kind("works_on"), TableKind::Relationship);
    }

    #[test]
    fn translation_produces_expected_ecr_shapes() {
        let ecr = company().to_ecr().unwrap();
        // Entities.
        for e in ["employee", "department", "project"] {
            let oid = ecr.object_by_name(e).unwrap();
            assert!(matches!(ecr.object(oid).kind, ObjectKind::EntitySet));
        }
        // Subset → category of employee.
        let mgr = ecr.object_by_name("manager").unwrap();
        assert!(ecr.object(mgr).kind.is_category());
        let emp = ecr.object_by_name("employee").unwrap();
        assert_eq!(ecr.object(mgr).parents(), &[emp]);
        // manager keeps its non-FK attribute.
        assert!(ecr.object(mgr).attr_by_name("bonus").is_some());
        // Relationship relation.
        let works = ecr.relationship(ecr.rel_by_name("works_on").unwrap());
        assert_eq!(works.degree(), 2);
        assert_eq!(works.attributes[0].name, "hours");
        // Implicit many-to-one from the dept_no FK.
        let implicit = ecr.relationship(ecr.rel_by_name("employee_department").unwrap());
        assert_eq!(implicit.participants[0].cardinality, Cardinality::AT_MOST_ONE);
        assert_eq!(implicit.participants[1].cardinality, Cardinality::MANY);
        // The FK column itself is not an employee attribute.
        assert!(ecr.object(emp).attr_by_name("dept_no").is_none());
    }

    #[test]
    fn kind_override_wins() {
        let t = Table::new("weird")
            .col_pk("id", "int")
            .kind(TableKind::Subset);
        assert_eq!(t.classify(), TableKind::Subset);
    }

    #[test]
    fn chained_subsets_resolve_via_fixpoint() {
        let mut r = RelSchema::new("chain");
        r.table(Table::new("c").col_pk_fk("id", "int", "b", "id"));
        r.table(Table::new("b").col_pk_fk("id", "int", "a", "id"));
        r.table(Table::new("a").col_pk("id", "int"));
        let ecr = r.to_ecr().unwrap();
        let c = ecr.object_by_name("c").unwrap();
        let b = ecr.object_by_name("b").unwrap();
        assert_eq!(ecr.object(c).parents(), &[b]);
    }

    #[test]
    fn dangling_subset_reference_is_an_error() {
        let mut r = RelSchema::new("bad");
        r.table(Table::new("orphan").col_pk_fk("id", "int", "ghost", "id"));
        let err = r.to_ecr().unwrap_err().to_string();
        assert!(err.contains("orphan"), "{err}");
    }

    #[test]
    fn relationship_referencing_missing_table_is_an_error() {
        let mut r = RelSchema::new("bad");
        r.table(Table::new("a").col_pk("id", "int"));
        r.table(
            Table::new("link")
                .col_pk_fk("a_id", "int", "a", "id")
                .col_pk_fk("g_id", "int", "ghost", "id"),
        );
        assert!(r.to_ecr().is_err());
    }

    #[test]
    fn translated_schema_feeds_integration() {
        // The pipeline the paper proposes: translate, then integrate.
        let ecr = company().to_ecr().unwrap();
        let mut session = sit_core::session::Session::new();
        session.add_schema(ecr).unwrap();
        assert_eq!(session.catalog().len(), 1);
    }
}
