//! Hierarchical (IMS-style) schemas and their abstraction into ECR.
//!
//! A hierarchical schema is a forest of record types: each non-root record
//! type has exactly one physical parent, and may additionally point at a
//! *virtual parent* (IMS logical relationships), which is how hierarchies
//! express many-to-many structures. The Navathe–Awong abstraction maps:
//!
//! * every record type → an entity set (fields → attributes, sequence
//!   field → key);
//! * every physical parent-child link → a `(1,1)` child / `(0,n)` parent
//!   relationship set named `<parent>_<child>`;
//! * a child with both a physical and a virtual parent that carries no
//!   fields of its own (a pure *pointer segment*) → a many-to-many
//!   relationship set between the two parents instead of an entity set.

use sit_ecr::{Cardinality, Domain, EcrError, Schema, SchemaBuilder};

/// One field of a record type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Domain in DDL notation.
    pub domain: String,
    /// Sequence (key) field?
    pub seq: bool,
}

/// A record type in the hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordType {
    /// Record type name.
    pub name: String,
    /// Physical parent (`None` for root segments).
    pub parent: Option<String>,
    /// Virtual (logical) parent, if any.
    pub virtual_parent: Option<String>,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
}

impl RecordType {
    /// Root record type.
    pub fn root(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            parent: None,
            virtual_parent: None,
            fields: Vec::new(),
        }
    }

    /// Child record type under a physical parent.
    pub fn child(name: impl Into<String>, parent: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            parent: Some(parent.into()),
            virtual_parent: None,
            fields: Vec::new(),
        }
    }

    /// Attach a virtual (logical) parent.
    pub fn virtually_under(mut self, parent: impl Into<String>) -> Self {
        self.virtual_parent = Some(parent.into());
        self
    }

    /// Add a plain field.
    pub fn field(mut self, name: impl Into<String>, domain: impl Into<String>) -> Self {
        self.fields.push(Field {
            name: name.into(),
            domain: domain.into(),
            seq: false,
        });
        self
    }

    /// Add a sequence (key) field.
    pub fn seq_field(mut self, name: impl Into<String>, domain: impl Into<String>) -> Self {
        self.fields.push(Field {
            name: name.into(),
            domain: domain.into(),
            seq: true,
        });
        self
    }

    /// A pointer segment carries no fields and has both parents — it
    /// exists only to realize a many-to-many association.
    pub fn is_pointer_segment(&self) -> bool {
        self.fields.is_empty() && self.parent.is_some() && self.virtual_parent.is_some()
    }
}

/// A hierarchical schema: a forest of record types.
#[derive(Clone, Debug, Default)]
pub struct HierSchema {
    name: String,
    records: Vec<RecordType>,
}

impl HierSchema {
    /// Empty schema.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            records: Vec::new(),
        }
    }

    /// Schema name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a record type.
    pub fn record(&mut self, r: RecordType) -> &mut Self {
        self.records.push(r);
        self
    }

    /// The record types.
    pub fn records(&self) -> &[RecordType] {
        &self.records
    }

    /// Translate into an ECR schema.
    pub fn to_ecr(&self) -> Result<Schema, EcrError> {
        let mut b = SchemaBuilder::new(self.name.clone());

        // 1. Entity sets for every non-pointer record type.
        for r in &self.records {
            if r.is_pointer_segment() {
                continue;
            }
            let mut ob = b.entity_set(r.name.clone());
            for f in &r.fields {
                let domain: Domain = f.domain.parse()?;
                ob = if f.seq {
                    ob.attr_key(f.name.clone(), domain)
                } else {
                    ob.attr(f.name.clone(), domain)
                };
            }
            ob.finish();
        }

        // 2. Parent-child links.
        for r in &self.records {
            if r.is_pointer_segment() {
                // Pointer segment → many-to-many between the two parents.
                let p = r.parent.as_deref().expect("pointer segments have parents");
                let v = r
                    .virtual_parent
                    .as_deref()
                    .expect("pointer segments have virtual parents");
                let po = b
                    .object_by_name(p)
                    .ok_or_else(|| EcrError::UnknownName(p.to_owned()))?;
                let vo = b
                    .object_by_name(v)
                    .ok_or_else(|| EcrError::UnknownName(v.to_owned()))?;
                b.relationship(r.name.clone())
                    .participant(po, Cardinality::MANY)
                    .participant(vo, Cardinality::MANY)
                    .finish();
                continue;
            }
            let child = b
                .object_by_name(&r.name)
                .ok_or_else(|| EcrError::UnknownName(r.name.clone()))?;
            for parent in [r.parent.as_deref(), r.virtual_parent.as_deref()]
                .into_iter()
                .flatten()
            {
                let po = b
                    .object_by_name(parent)
                    .ok_or_else(|| EcrError::UnknownName(parent.to_owned()))?;
                // A child occurrence hangs under exactly one parent
                // occurrence: (1,1) on the child leg.
                b.relationship(format!("{parent}_{}", r.name))
                    .participant(child, Cardinality::ONE)
                    .participant(po, Cardinality::MANY)
                    .finish();
            }
        }

        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic IMS course database: COURSE has OFFERING children,
    /// OFFERING has ENROLL pointer segments virtually under STUDENT.
    fn courses() -> HierSchema {
        let mut h = HierSchema::new("courses");
        h.record(
            RecordType::root("course")
                .seq_field("course_no", "int")
                .field("title", "char"),
        );
        h.record(
            RecordType::child("offering", "course")
                .seq_field("date", "date")
                .field("location", "char"),
        );
        h.record(
            RecordType::root("student")
                .seq_field("student_id", "int")
                .field("name", "char"),
        );
        h.record(RecordType::child("enroll", "offering").virtually_under("student"));
        h
    }

    #[test]
    fn records_map_to_entities_and_links() {
        let ecr = courses().to_ecr().unwrap();
        assert!(ecr.object_by_name("course").is_some());
        assert!(ecr.object_by_name("offering").is_some());
        assert!(ecr.object_by_name("student").is_some());
        assert!(
            ecr.object_by_name("enroll").is_none(),
            "pointer segment is not an entity"
        );
        // Physical link: offering (1,1) under course (0,n).
        let link = ecr.relationship(ecr.rel_by_name("course_offering").unwrap());
        assert_eq!(link.participants[0].cardinality, Cardinality::ONE);
        assert_eq!(link.participants[1].cardinality, Cardinality::MANY);
        // Pointer segment became many-to-many offering↔student.
        let enroll = ecr.relationship(ecr.rel_by_name("enroll").unwrap());
        assert_eq!(enroll.degree(), 2);
        assert!(enroll
            .participants
            .iter()
            .all(|p| p.cardinality == Cardinality::MANY));
    }

    #[test]
    fn sequence_fields_become_keys() {
        let ecr = courses().to_ecr().unwrap();
        let course = ecr.object(ecr.object_by_name("course").unwrap());
        let (_, key) = course.attr_by_name("course_no").unwrap();
        assert!(key.is_key());
        let (_, title) = course.attr_by_name("title").unwrap();
        assert!(!title.is_key());
    }

    #[test]
    fn missing_parent_is_an_error() {
        let mut h = HierSchema::new("bad");
        h.record(RecordType::child("lost", "ghost").seq_field("id", "int"));
        let err = h.to_ecr().unwrap_err().to_string();
        assert!(err.contains("ghost"), "{err}");
    }

    #[test]
    fn child_with_fields_and_virtual_parent_stays_an_entity() {
        // A non-empty child with a virtual parent links to both parents.
        let mut h = HierSchema::new("h");
        h.record(RecordType::root("a").seq_field("id", "int"));
        h.record(RecordType::root("b").seq_field("id", "int"));
        h.record(
            RecordType::child("c", "a")
                .virtually_under("b")
                .seq_field("id", "int")
                .field("data", "char"),
        );
        let ecr = h.to_ecr().unwrap();
        assert!(ecr.object_by_name("c").is_some());
        assert!(ecr.rel_by_name("a_c").is_some());
        assert!(ecr.rel_by_name("b_c").is_some());
    }
}
