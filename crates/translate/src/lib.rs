#![warn(missing_docs)]
//! # sit-translate — schema translation into the ECR model
//!
//! Phase 1 of the paper's methodology requires every component schema to be
//! expressed in the common data model: "If a component schema is defined in
//! a data model other than ECR model, it must be translated to the ECR
//! model. Navathe and Awong [Navathe and Awong 87] have developed a
//! detailed procedure for ... relational and hierarchical database schemas
//! ... to map them automatically in ECR model." The paper's future-work
//! section proposes wiring such a translator in front of the integration
//! tool; this crate is that substrate.
//!
//! Two source models are provided:
//!
//! * [`relational`] — tables with primary keys, foreign keys and inclusion
//!   dependencies. Relations are classified (base entity relation, subset
//!   relation, relationship relation) from their key structure, following
//!   the Navathe–Awong interrogation procedure's decision rules.
//! * [`hierarchical`] — record types connected by parent-child links (an
//!   IMS-style forest with virtual pairings), mapped to entity sets and
//!   `(1,1)/(0,n)` relationship sets.
//!
//! Both produce ordinary [`sit_ecr::Schema`] values ready for an
//! integration `sit_core::session::Session` — closing the pipeline the
//! paper sketches: *schema translation tool → integration tool → physical
//! design*.
//!
//! ```
//! use sit_translate::relational::{RelSchema, Table};
//!
//! let mut r = RelSchema::new("company");
//! r.table(Table::new("employee")
//!     .col_pk("ssn", "int")
//!     .col("name", "char")
//!     .col_fk("dept_no", "int", "department", "dept_no"));
//! r.table(Table::new("department")
//!     .col_pk("dept_no", "int")
//!     .col("dname", "char"));
//! let ecr = r.to_ecr().unwrap();
//! assert!(ecr.object_by_name("employee").is_some());
//! assert!(ecr.rel_by_name("employee_department").is_some());
//! ```

pub mod hierarchical;
pub mod relational;

pub use hierarchical::{HierSchema, RecordType};
pub use relational::{RelSchema, Table, TableKind};
