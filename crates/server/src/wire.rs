//! The wire format: a small, hermetic JSON implementation.
//!
//! The workspace has no external crates, so the protocol carries its own
//! JSON: a recursive-descent parser with explicit depth and size limits
//! (a malicious frame must not blow the stack or the heap) and an
//! escaping encoder. Objects preserve insertion order so encoded frames
//! are byte-stable — golden fixtures and `BENCH_*.json` diffs rely on
//! that.
//!
//! ```
//! use sit_server::wire::Json;
//!
//! let v = Json::parse(r#"{"op":"ping","n":3}"#).unwrap();
//! assert_eq!(v.get("op").and_then(Json::as_str), Some("ping"));
//! assert_eq!(v.encode(), r#"{"op":"ping","n":3}"#);
//! ```

use std::fmt;

/// Maximum nesting depth a frame may use. Protocol frames are nearly
/// flat; this bound exists to keep the recursive parser stack-safe.
pub const MAX_DEPTH: usize = 64;

/// Maximum frame size in bytes the parser accepts (1 MiB). DDL payloads
/// for realistic schemas are a few KiB.
pub const MAX_FRAME: usize = 1 << 20;

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as f64; the protocol's numbers are counts
    /// and ids well under 2^53).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq)]
pub struct WireError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for WireError {}

impl Json {
    /// Parse one complete JSON document; trailing non-whitespace is an
    /// error (frames are exactly one value per line).
    pub fn parse(text: &str) -> Result<Json, WireError> {
        if text.len() > MAX_FRAME {
            return Err(WireError {
                at: 0,
                msg: format!("frame of {} bytes exceeds limit {}", text.len(), MAX_FRAME),
            });
        }
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Encode to compact JSON (no whitespace), escaping as needed.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    // ---- accessors used by the protocol layer ----

    /// Member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: a string-valued object.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: a number value from an integer count/id.
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; should not occur
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Largest newline-terminated line the framing layer will buffer before
/// giving up on the connection (a frame plus a little slack). A peer that
/// streams more than this without a newline is answered with a `parse`
/// error and disconnected rather than growing the buffer forever.
pub const MAX_LINE: usize = MAX_FRAME + 1024;

/// One extracted frame from a [`FrameBuffer`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Framed {
    /// A complete line (newline stripped, lossily decoded as UTF-8 so a
    /// mangled frame still reaches the parser and earns a typed error).
    Line(String),
    /// The peer exceeded [`MAX_LINE`] without sending a newline; the
    /// buffered bytes were discarded and the connection should close.
    Overflow,
}

/// Incremental newline framing over raw transport bytes.
///
/// The serving loop and the chaos harness both speak
/// one-JSON-object-per-line over byte streams that may arrive torn into
/// arbitrary segments (TCP, or the fault-injected simulated transport).
/// `FrameBuffer` reassembles lines independently of how the bytes were
/// chunked: push whatever arrived, pop complete frames.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    scanned: usize,
}

impl FrameBuffer {
    /// Empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Append raw bytes read from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered without a terminating newline.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete frame, if one has fully arrived.
    pub fn next_frame(&mut self) -> Option<Framed> {
        if let Some(i) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
            let end = self.scanned + i;
            let mut line: Vec<u8> = self.buf.drain(..=end).collect();
            self.scanned = 0;
            line.pop(); // the newline
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Some(Framed::Line(String::from_utf8_lossy(&line).into_owned()));
        }
        // No newline yet; remember how far we scanned so the next push
        // resumes there instead of rescanning.
        self.scanned = self.buf.len();
        if self.buf.len() > MAX_LINE {
            self.buf.clear();
            self.scanned = 0;
            return Some(Framed::Overflow);
        }
        None
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> WireError {
        WireError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, WireError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, WireError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_frames() {
        let v = Json::parse(r#"{"op":"assert","a":"sc1.Student","n":42,"flag":true,"x":null}"#)
            .unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("assert"));
        assert_eq!(v.get("n").and_then(Json::as_num), Some(42.0));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("x"), Some(&Json::Null));
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1F600}é";
        let encoded = Json::Str(s.into()).encode();
        assert_eq!(Json::parse(&encoded).unwrap(), Json::Str(s.into()));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse(r#""😀""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn depth_limit_enforced() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&deep_ok).is_ok());
        let deep_bad = format!("{}1{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(Json::parse(&deep_bad).is_err());
    }

    #[test]
    fn frame_size_limit_enforced() {
        let big = format!("\"{}\"", "a".repeat(MAX_FRAME));
        let err = Json::parse(&big).unwrap_err();
        assert!(err.msg.contains("exceeds limit"));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1.2.3", "\"\x01\"", "{}x", "nul"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn frame_buffer_reassembles_torn_lines() {
        let mut fb = FrameBuffer::new();
        fb.push(b"{\"op\":");
        assert_eq!(fb.next_frame(), None);
        fb.push(b"\"ping\"}\n{\"op\":\"st");
        assert_eq!(
            fb.next_frame(),
            Some(Framed::Line("{\"op\":\"ping\"}".into()))
        );
        assert_eq!(fb.next_frame(), None);
        fb.push(b"ats\"}\r\n");
        assert_eq!(
            fb.next_frame(),
            Some(Framed::Line("{\"op\":\"stats\"}".into()))
        );
        assert_eq!(fb.next_frame(), None);
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn frame_buffer_yields_every_line_of_one_chunk() {
        let mut fb = FrameBuffer::new();
        fb.push(b"a\nb\n\nc\n");
        let mut lines = Vec::new();
        while let Some(Framed::Line(l)) = fb.next_frame() {
            lines.push(l);
        }
        assert_eq!(lines, ["a", "b", "", "c"]);
    }

    #[test]
    fn frame_buffer_overflows_on_unterminated_floods() {
        let mut fb = FrameBuffer::new();
        let chunk = vec![b'x'; MAX_LINE / 4 + 1];
        for _ in 0..4 {
            fb.push(&chunk);
        }
        assert_eq!(fb.next_frame(), Some(Framed::Overflow));
        // The buffer is usable again afterwards (caller decides to close).
        fb.push(b"ok\n");
        assert_eq!(fb.next_frame(), Some(Framed::Line("ok".into())));
    }

    #[test]
    fn frame_buffer_is_chunking_invariant() {
        let text = b"{\"op\":\"ping\"}\n{\"op\":\"open\"}\n{\"op\":\"stats\"}\n";
        let whole = {
            let mut fb = FrameBuffer::new();
            fb.push(text);
            let mut out = Vec::new();
            while let Some(Framed::Line(l)) = fb.next_frame() {
                out.push(l);
            }
            out
        };
        for step in 1..7usize {
            let mut fb = FrameBuffer::new();
            let mut out = Vec::new();
            for chunk in text.chunks(step) {
                fb.push(chunk);
                while let Some(Framed::Line(l)) = fb.next_frame() {
                    out.push(l);
                }
            }
            assert_eq!(out, whole, "chunk size {step}");
        }
    }

    #[test]
    fn numbers_round_trip() {
        for (src, want) in [("0", 0.0), ("-12", -12.0), ("3.5", 3.5), ("1e3", 1000.0)] {
            assert_eq!(Json::parse(src).unwrap(), Json::Num(want));
        }
        let enc = Json::Num(1234567.0).encode();
        assert_eq!(enc, "1234567");
    }
}
