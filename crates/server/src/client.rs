//! A blocking client for the wire protocol, with timeouts and bounded
//! retry.
//!
//! Used by the integration tests, the `sit client` subcommand, and the
//! `loadgen` bench. One call = one request line out, one response line
//! in.
//!
//! Degraded-mode behavior is a contract, not an accident:
//!
//! * every socket read/write carries a configurable timeout
//!   ([`ClientConfig::timeout`]);
//! * [`Client::call_retrying`] retries transport failures and
//!   `overloaded` rejections with jittered exponential backoff
//!   ([`RetryPolicy`]), reconnecting when the connection died — but
//!   **only for idempotent verbs** ([`Request::is_idempotent`]). A
//!   non-idempotent request (`open`, `assert`, `integrate`, ...) that
//!   fails mid-flight may or may not have executed; replaying it could
//!   double-apply, so the error is surfaced to the caller instead.
//!
//! The jittered delay never exceeds [`RetryPolicy::cap`]: jitter is
//! *subtracted* from the capped exponential step, spreading retries out
//! in time without ever extending the worst case.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use sit_prng::Xoshiro256pp;

use crate::proto::Request;
use crate::wire::Json;

/// Bounded retry with capped, jittered exponential backoff.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retry attempts after the first try (0 disables retrying).
    pub retries: u32,
    /// First backoff step; doubles each retry.
    pub base: Duration,
    /// Upper bound on any single backoff delay.
    pub cap: Duration,
    /// Randomize each delay downward (by up to half) to spread
    /// synchronized retries out in time.
    pub jitter: bool,
    /// Seed for the jitter stream — same seed, same delays.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 3,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(1),
            jitter: true,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (0-based). Always ≤
    /// [`RetryPolicy::cap`]: the exponential step is capped first and
    /// jitter only ever subtracts from it.
    pub fn delay(&self, attempt: u32, rng: &mut Xoshiro256pp) -> Duration {
        let base_ms = self.base.as_millis().min(u128::from(u64::MAX)) as u64;
        let cap_ms = self.cap.as_millis().min(u128::from(u64::MAX)) as u64;
        let exp_ms = base_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(cap_ms);
        let ms = if self.jitter && exp_ms > 0 {
            exp_ms - rng.next_below(exp_ms / 2 + 1)
        } else {
            exp_ms
        };
        Duration::from_millis(ms)
    }
}

/// Connection-level knobs.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Socket read/write timeout; `None` blocks forever.
    pub timeout: Option<Duration>,
    /// Retry behavior for [`Client::call_retrying`].
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            timeout: Some(Duration::from_secs(10)),
            retry: RetryPolicy::default(),
        }
    }
}

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
    config: ClientConfig,
    jitter_rng: Xoshiro256pp,
}

impl Client {
    /// Connect with default timeouts and retry policy.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connect with explicit timeouts and retry policy.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Client> {
        let mut last_err = None;
        for candidate in addr.to_socket_addrs()? {
            match open_stream(candidate, &config) {
                Ok((reader, writer)) => {
                    return Ok(Client {
                        reader,
                        writer,
                        addr: candidate,
                        config,
                        jitter_rng: Xoshiro256pp::seed_from_u64(config.retry.seed),
                    })
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "no addresses to connect to")
        }))
    }

    /// The effective configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Drop the current connection and dial the same address again.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let (reader, writer) = open_stream(self.addr, &self.config)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    /// Send one raw frame and read the raw response line.
    pub fn call_raw(&mut self, frame: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{frame}")?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_owned())
    }

    /// Send a typed request and parse the response.
    pub fn call(&mut self, request: &Request) -> std::io::Result<Json> {
        let line = self.call_raw(&request.to_json().encode())?;
        Json::parse(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response frame: {e}: {line}"),
            )
        })
    }

    /// [`Client::call`] with bounded retry for idempotent verbs.
    ///
    /// Retried conditions: transport errors (timeout, reset, EOF — the
    /// connection is re-dialed first) and the server's `overloaded`
    /// backpressure rejection. Each retry waits
    /// [`RetryPolicy::delay`]; attempts stop after
    /// [`RetryPolicy::retries`] and the last outcome is returned.
    ///
    /// Non-idempotent verbs never retry: a mutation whose response was
    /// lost may still have executed, and replaying it could
    /// double-apply. Their first failure is returned as-is.
    pub fn call_retrying(&mut self, request: &Request) -> std::io::Result<Json> {
        let budget = if request.is_idempotent() {
            self.config.retry.retries
        } else {
            0
        };
        let mut attempt = 0u32;
        loop {
            let outcome = self.call(request);
            let retryable = match &outcome {
                Ok(response) => error_code(response) == Some("overloaded"),
                Err(_) => true,
            };
            if !retryable || attempt >= budget {
                return outcome;
            }
            let delay = self.config.retry.delay(attempt, &mut self.jitter_rng);
            std::thread::sleep(delay);
            if outcome.is_err() {
                // The connection is likely dead (EOF poisons the reader's
                // buffer position anyway); re-dial before retrying. If
                // the server is still down this errors and we keep
                // retrying until the budget runs out.
                if let Err(e) = self.reconnect() {
                    if attempt + 1 >= budget {
                        return Err(e);
                    }
                }
            }
            attempt += 1;
        }
    }

    /// [`Client::call`], failing unless the response is `ok:true`.
    pub fn expect_ok(&mut self, request: &Request) -> std::io::Result<Json> {
        let response = self.call(request)?;
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(response)
        } else {
            Err(std::io::Error::other(format!(
                "{} failed: {}",
                request.op(),
                response.encode()
            )))
        }
    }
}

fn open_stream(
    addr: SocketAddr,
    config: &ClientConfig,
) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
    let stream = match config.timeout {
        Some(timeout) => TcpStream::connect_timeout(&addr, timeout)?,
        None => TcpStream::connect(addr)?,
    };
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(config.timeout)?;
    stream.set_write_timeout(config.timeout)?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok((reader, stream))
}

/// The typed error code of a response frame, if it is an error.
pub fn error_code(response: &Json) -> Option<&str> {
    if response.get("ok").and_then(Json::as_bool) == Some(false) {
        response
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let policy = RetryPolicy {
            retries: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            jitter: false,
            seed: 0,
        };
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let delays: Vec<u64> = (0..8)
            .map(|i| policy.delay(i, &mut rng).as_millis() as u64)
            .collect();
        assert_eq!(delays, [10, 20, 40, 80, 100, 100, 100, 100]);
    }

    #[test]
    fn jittered_backoff_never_exceeds_cap_and_is_seeded() {
        let policy = RetryPolicy {
            retries: 64,
            base: Duration::from_millis(7),
            cap: Duration::from_millis(250),
            jitter: true,
            seed: 99,
        };
        let mut rng_a = Xoshiro256pp::seed_from_u64(policy.seed);
        let mut rng_b = Xoshiro256pp::seed_from_u64(policy.seed);
        for attempt in 0..64 {
            let a = policy.delay(attempt, &mut rng_a);
            let b = policy.delay(attempt, &mut rng_b);
            assert_eq!(a, b, "same seed, same schedule");
            assert!(a <= policy.cap, "attempt {attempt}: {a:?} over cap");
            // Jitter subtracts at most half the capped step.
            let step = policy
                .base
                .saturating_mul(2u32.saturating_pow(attempt))
                .min(policy.cap);
            assert!(a >= step / 2, "attempt {attempt}: {a:?} under half step");
        }
    }

    #[test]
    fn huge_attempt_counts_saturate_instead_of_overflowing() {
        let policy = RetryPolicy {
            retries: u32::MAX,
            base: Duration::from_millis(3),
            cap: Duration::from_millis(500),
            jitter: false,
            seed: 0,
        };
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        assert_eq!(policy.delay(63, &mut rng), Duration::from_millis(500));
        assert_eq!(policy.delay(64, &mut rng), Duration::from_millis(500));
        assert_eq!(policy.delay(1000, &mut rng), Duration::from_millis(500));
    }
}
