//! A thin blocking client for the wire protocol.
//!
//! Used by the integration tests, the `sit client` subcommand, and the
//! `loadgen` bench. One call = one request line out, one response line
//! in.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::Request;
use crate::wire::Json;

/// A connected client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Send one raw frame and read the raw response line.
    pub fn call_raw(&mut self, frame: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{frame}")?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_owned())
    }

    /// Send a typed request and parse the response.
    pub fn call(&mut self, request: &Request) -> std::io::Result<Json> {
        let line = self.call_raw(&request.to_json().encode())?;
        Json::parse(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response frame: {e}: {line}"),
            )
        })
    }

    /// [`Client::call`], failing unless the response is `ok:true`.
    pub fn expect_ok(&mut self, request: &Request) -> std::io::Result<Json> {
        let response = self.call(request)?;
        if response.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(response)
        } else {
            Err(std::io::Error::other(format!(
                "{} failed: {}",
                request.op(),
                response.encode()
            )))
        }
    }
}
