//! The transport abstraction: byte streams the serving loop speaks over.
//!
//! PR 2 welded the connection loop to [`std::net::TcpStream`]; every test
//! of degraded behavior therefore needed a real socket and real timing —
//! unrepeatable by construction. This module splits the byte stream away
//! from the protocol:
//!
//! * [`Transport`] — the minimal surface the serving loop needs: `read`,
//!   `write` (which may be *short*), `flush`, and an [`Interrupter`] that
//!   can unblock a pending read from another thread (graceful drain).
//! * [`TcpTransport`] — the production implementation over a
//!   [`TcpStream`] (read-shutdown as the interrupt).
//! * [`SimConn`] / [`sim_pair`] — a fully in-memory duplex connection:
//!   two byte pipes guarded by mutex+condvar. Deterministic, instant, and
//!   composable with the fault layer ([`crate::fault`]), it is what the
//!   chaos suite runs the real serving loop against.
//!
//! The same [`crate::wire::FrameBuffer`] handles line reassembly on every
//! transport, so torn frames behave identically on TCP and in simulation.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Condvar, Mutex};

/// A bidirectional byte stream the serving loop can drive.
///
/// Semantics follow `std::io`: `read` blocks until at least one byte is
/// available, returns `Ok(0)` at end-of-stream, and `write` may accept
/// fewer bytes than offered (use [`Transport::write_all`]).
pub trait Transport: Send + 'static {
    /// Read up to `buf.len()` bytes; `Ok(0)` means the peer is gone.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize>;

    /// Write up to `buf.len()` bytes, returning how many were accepted.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;

    /// Flush buffered writes to the peer.
    fn flush(&mut self) -> io::Result<()>;

    /// A handle that can unblock a read pending on this transport from
    /// another thread (the server drain path).
    fn interrupter(&self) -> Interrupter;

    /// Write the whole buffer, looping over short writes.
    fn write_all(&mut self, mut buf: &[u8]) -> io::Result<()> {
        while !buf.is_empty() {
            let n = self.write(buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "transport accepted zero bytes",
                ));
            }
            buf = &buf[n..];
        }
        Ok(())
    }
}

/// Unblocks a transport's pending read from another thread.
pub struct Interrupter(Box<dyn Fn() + Send + Sync>);

impl Interrupter {
    /// Interrupter from a closure.
    pub fn new(f: impl Fn() + Send + Sync + 'static) -> Interrupter {
        Interrupter(Box::new(f))
    }

    /// An interrupter that does nothing (transport cannot be unblocked).
    pub fn noop() -> Interrupter {
        Interrupter(Box::new(|| {}))
    }

    /// Fire: any read blocked on the transport returns (EOF or error).
    pub fn interrupt(&self) {
        (self.0)()
    }
}

/// The production transport: a connected TCP stream.
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Wrap a connected stream. Disables Nagle: one small response frame
    /// per request means waiting to coalesce (Nagle + delayed ACK) would
    /// add ~40ms to every round trip.
    pub fn new(stream: TcpStream) -> TcpTransport {
        let _ = stream.set_nodelay(true);
        TcpTransport { stream }
    }
}

impl Transport for TcpTransport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }

    fn interrupter(&self) -> Interrupter {
        match self.stream.try_clone() {
            Ok(clone) => Interrupter::new(move || {
                let _ = clone.shutdown(Shutdown::Read);
            }),
            Err(_) => Interrupter::noop(),
        }
    }
}

/// One direction of a simulated connection.
struct Pipe {
    buf: VecDeque<u8>,
    closed: bool,
}

struct Channel {
    pipe: Mutex<Pipe>,
    ready: Condvar,
}

impl Channel {
    fn new() -> Arc<Channel> {
        Arc::new(Channel {
            pipe: Mutex::new(Pipe {
                buf: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        })
    }

    fn close(&self) {
        self.pipe.lock().expect("sim pipe lock").closed = true;
        self.ready.notify_all();
    }
}

/// One end of an in-memory duplex connection (see [`sim_pair`]).
///
/// Reads block (condvar) until bytes arrive or the peer closes; writes
/// are atomic — a `write` appends the whole buffer under one lock, so a
/// frame written in one call is never observed half-arrived unless a
/// fault layer tears it deliberately. Dropping an end closes both
/// directions: the peer's pending read returns the remaining bytes then
/// EOF, and the peer's writes fail with `BrokenPipe`.
pub struct SimConn {
    incoming: Arc<Channel>,
    outgoing: Arc<Channel>,
}

/// A connected pair of simulated endpoints: what one end writes, the
/// other reads.
pub fn sim_pair() -> (SimConn, SimConn) {
    let a_to_b = Channel::new();
    let b_to_a = Channel::new();
    (
        SimConn {
            incoming: Arc::clone(&b_to_a),
            outgoing: Arc::clone(&a_to_b),
        },
        SimConn {
            incoming: a_to_b,
            outgoing: b_to_a,
        },
    )
}

impl SimConn {
    /// Close both directions without dropping the handle.
    pub fn close(&self) {
        self.incoming.close();
        self.outgoing.close();
    }
}

impl Drop for SimConn {
    fn drop(&mut self) {
        self.close();
    }
}

impl Transport for SimConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut pipe = self.incoming.pipe.lock().expect("sim pipe lock");
        loop {
            if !pipe.buf.is_empty() {
                let n = pipe.buf.len().min(buf.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = pipe.buf.pop_front().expect("n <= len");
                }
                return Ok(n);
            }
            if pipe.closed {
                return Ok(0);
            }
            pipe = self.incoming.ready.wait(pipe).expect("sim pipe lock");
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut pipe = self.outgoing.pipe.lock().expect("sim pipe lock");
        if pipe.closed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "peer closed the simulated connection",
            ));
        }
        pipe.buf.extend(buf.iter().copied());
        self.outgoing.ready.notify_all();
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn interrupter(&self) -> Interrupter {
        let incoming = Arc::clone(&self.incoming);
        Interrupter::new(move || incoming.close())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_pair_round_trips_bytes() {
        let (mut a, mut b) = sim_pair();
        a.write_all(b"hello").unwrap();
        let mut buf = [0u8; 16];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"hello");
        b.write_all(b"world").unwrap();
        let n = a.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"world");
    }

    #[test]
    fn dropping_one_end_gives_eof_and_broken_pipe() {
        let (mut a, b) = sim_pair();
        drop(b);
        let mut buf = [0u8; 4];
        assert_eq!(a.read(&mut buf).unwrap(), 0, "EOF after peer drop");
        assert_eq!(
            a.write(b"x").unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
    }

    #[test]
    fn buffered_bytes_survive_peer_drop() {
        let (mut a, mut b) = sim_pair();
        a.write_all(b"last words").unwrap();
        drop(a);
        let mut buf = [0u8; 32];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"last words");
        assert_eq!(b.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn interrupter_unblocks_a_pending_read() {
        let (mut a, _b_keepalive) = sim_pair();
        let interrupt = a.interrupter();
        let reader = std::thread::spawn(move || {
            let mut buf = [0u8; 4];
            a.read(&mut buf)
        });
        // Give the reader a moment to block, then interrupt.
        std::thread::sleep(std::time::Duration::from_millis(10));
        interrupt.interrupt();
        let result = reader.join().expect("reader thread");
        assert_eq!(result.unwrap(), 0, "interrupted read reports EOF");
    }

    #[test]
    fn tcp_transport_round_trips_over_loopback() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream);
            let mut buf = [0u8; 16];
            let n = t.read(&mut buf).unwrap();
            t.write_all(&buf[..n]).unwrap();
            t.flush().unwrap();
        });
        let mut client = TcpTransport::new(TcpStream::connect(addr).unwrap());
        client.write_all(b"echo?").unwrap();
        client.flush().unwrap();
        let mut buf = [0u8; 16];
        let n = client.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"echo?");
        server.join().unwrap();
    }
}
