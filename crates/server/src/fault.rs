//! Seeded fault injection over any [`Transport`].
//!
//! [`FaultedTransport`] wraps a transport and perturbs the byte streams
//! crossing it: reads are split at planned offsets, truncated, or cut
//! dead; writes are shortened, stalled, or dropped mid-frame. Every
//! decision comes from a [`FaultPlan`] — two forked `sit_prng` streams
//! (one per direction) that draw *segment boundaries in the byte stream*,
//! never per-call randomness. A read of 7 bytes in one call or seven
//! calls crosses the same boundaries and fires the same events, so the
//! event trace is a pure function of `(seed, bytes transferred)`: the
//! property `scripts/verify.sh chaos` checks by diffing two runs.
//!
//! Time is virtual: a "delay" advances a shared [`VirtualClock`] and is
//! recorded in the [`EventLog`]; nothing sleeps. Frozen time makes
//! thousand-event schedules replay in microseconds and keeps wall-clock
//! jitter out of the trace.
//!
//! Connection drops are cooperative: the plan carries an optional drop
//! offset per direction, and on reaching it the transport invokes a
//! `kill` hook (closing the simulated peer) so both sides observe the
//! cut immediately — no thread is ever left blocked on a half-dead pipe.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sit_obs::sync::lock_recover;
use sit_obs::trace::Tracer;
use sit_prng::Xoshiro256pp;

use crate::storage::Storage;
use crate::transport::{Interrupter, Transport};

/// Milliseconds of simulated time, advanced only by injected delays.
///
/// Clones share the clock. Starts frozen at zero.
#[derive(Clone, Default)]
pub struct VirtualClock(Arc<AtomicU64>);

impl VirtualClock {
    /// A clock frozen at t=0.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Current simulated time in ms.
    pub fn now_ms(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }

    /// Advance simulated time.
    pub fn advance_ms(&self, ms: u64) {
        self.0.fetch_add(ms, Ordering::SeqCst);
    }
}

/// Virtual time as a trace/metrics clock: build a
/// [`crate::Service::with_clock`] over the same clock the fault plans
/// advance, and every timing field (span timestamps, latencies,
/// `stats` uptime) becomes a pure function of the schedule — which is
/// what lets byte-traced chaos workloads include `stats` and
/// `trace_dump`.
impl sit_obs::clock::Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now_ms().saturating_mul(1_000_000)
    }
}

/// One injected perturbation, tagged with the connection label and the
/// byte offset (per direction) where it fired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Read stream segmented: bytes after `at` arrive in a later call.
    ReadSplit {
        /// Connection label.
        conn: u32,
        /// Cumulative inbound byte offset where the boundary fell.
        at: u64,
    },
    /// Simulated latency before the read at `at` completed.
    ReadDelay {
        /// Connection label.
        conn: u32,
        /// Cumulative inbound byte offset where the boundary fell.
        at: u64,
        /// Virtual milliseconds injected.
        ms: u64,
    },
    /// Inbound stream cut at `at`: the server sees EOF mid-request.
    ReadDrop {
        /// Connection label.
        conn: u32,
        /// Cumulative inbound byte offset where the cut fell.
        at: u64,
    },
    /// Short write: only the bytes up to `at` were accepted this call.
    WriteSplit {
        /// Connection label.
        conn: u32,
        /// Cumulative outbound byte offset where the boundary fell.
        at: u64,
    },
    /// Simulated stall before the write at `at` completed.
    WriteDelay {
        /// Connection label.
        conn: u32,
        /// Cumulative outbound byte offset where the boundary fell.
        at: u64,
        /// Virtual milliseconds injected.
        ms: u64,
    },
    /// Outbound stream cut at `at`: the response is truncated.
    WriteDrop {
        /// Connection label.
        conn: u32,
        /// Cumulative outbound byte offset where the cut fell.
        at: u64,
    },
    /// A storage write was torn: only a prefix of the record reached
    /// `file` before the crash point.
    StorageTorn {
        /// Storage file name that received the partial write.
        file: String,
        /// Cumulative storage byte offset where the tear fell.
        at: u64,
    },
    /// A transient short write: a prefix persisted, the call errored,
    /// and the process kept running (the repair path's trigger).
    StorageShort {
        /// Storage file name that received the partial write.
        file: String,
        /// Cumulative storage byte offset where the short write fell.
        at: u64,
    },
    /// The simulated process died: every later storage call fails.
    StorageCrash {
        /// Cumulative storage byte offset of the crash point.
        at: u64,
    },
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultEvent::ReadSplit { conn, at } => write!(f, "c{conn} read.split@{at}"),
            FaultEvent::ReadDelay { conn, at, ms } => {
                write!(f, "c{conn} read.delay@{at}+{ms}ms")
            }
            FaultEvent::ReadDrop { conn, at } => write!(f, "c{conn} read.drop@{at}"),
            FaultEvent::WriteSplit { conn, at } => write!(f, "c{conn} write.split@{at}"),
            FaultEvent::WriteDelay { conn, at, ms } => {
                write!(f, "c{conn} write.delay@{at}+{ms}ms")
            }
            FaultEvent::WriteDrop { conn, at } => write!(f, "c{conn} write.drop@{at}"),
            FaultEvent::StorageTorn { ref file, at } => {
                write!(f, "storage.torn@{at} {file}")
            }
            FaultEvent::StorageShort { ref file, at } => {
                write!(f, "storage.short@{at} {file}")
            }
            FaultEvent::StorageCrash { at } => write!(f, "storage.crash@{at}"),
        }
    }
}

/// Shared, append-only record of everything the fault layer did.
///
/// Locking is poison-recovering ([`lock_recover`]): a panic elsewhere
/// in a serve thread must not take the fault record down with it —
/// the log is exactly what the post-mortem wants to read.
#[derive(Clone, Default)]
pub struct EventLog {
    events: Arc<Mutex<Vec<FaultEvent>>>,
    tracer: Option<Tracer>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// An empty log that additionally mirrors every fault event onto
    /// `tracer` as a `fault` instant event — chaos perturbations and
    /// request spans land in one stream, one export format.
    pub fn with_tracer(tracer: Tracer) -> EventLog {
        EventLog {
            events: Arc::default(),
            tracer: Some(tracer),
        }
    }

    fn push(&self, event: FaultEvent) {
        if let Some(tracer) = &self.tracer {
            tracer.instant_arg("fault", "event", event.to_string());
        }
        lock_recover(&self.events).push(event);
    }

    /// Copy of the events so far, in arrival order.
    pub fn snapshot(&self) -> Vec<FaultEvent> {
        lock_recover(&self.events).clone()
    }

    /// The most recent connection-drop event, if any faulted transport
    /// cut a stream. `WriteDrop` means the request had already been
    /// executed (the cut hit the response); `ReadDrop` means it never
    /// reached the service.
    pub fn last_drop(&self) -> Option<FaultEvent> {
        lock_recover(&self.events)
            .iter()
            .rev()
            .find(|e| matches!(e, FaultEvent::ReadDrop { .. } | FaultEvent::WriteDrop { .. }))
            .cloned()
    }
}

/// Knobs for one connection's [`FaultPlan`].
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Shortest planned segment between boundaries, in bytes (≥ 1).
    pub min_segment: usize,
    /// Longest planned segment between boundaries, in bytes.
    pub max_segment: usize,
    /// Probability (0–100) that a boundary also injects a virtual delay.
    pub delay_percent: u32,
    /// Upper bound on one injected delay, in virtual ms.
    pub max_delay_ms: u64,
    /// Cut the inbound stream once this many bytes have been read.
    pub read_drop_at: Option<u64>,
    /// Cut the outbound stream once this many bytes have been written.
    pub write_drop_at: Option<u64>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            min_segment: 1,
            max_segment: 64,
            delay_percent: 25,
            max_delay_ms: 50,
            read_drop_at: None,
            write_drop_at: None,
        }
    }
}

/// The schedule for one direction of one connection.
struct DirPlan {
    rng: Xoshiro256pp,
    cfg: FaultConfig,
    /// Cumulative bytes moved in this direction.
    offset: u64,
    /// Bytes left before the next planned boundary.
    until_boundary: usize,
    drop_at: Option<u64>,
    dropped: bool,
}

impl DirPlan {
    fn new(mut rng: Xoshiro256pp, cfg: FaultConfig, drop_at: Option<u64>) -> DirPlan {
        let first = Self::draw_segment(&mut rng, &cfg);
        DirPlan {
            rng,
            cfg,
            offset: 0,
            until_boundary: first,
            drop_at,
            dropped: false,
        }
    }

    fn draw_segment(rng: &mut Xoshiro256pp, cfg: &FaultConfig) -> usize {
        let lo = cfg.min_segment.max(1);
        let hi = cfg.max_segment.max(lo);
        rng.gen_range(lo..hi + 1)
    }

    /// Largest transfer allowed right now without crossing a boundary or
    /// the drop offset. `None` means the drop fires *before* any byte
    /// moves.
    fn allowance(&self, want: usize) -> Option<usize> {
        let mut cap = want.min(self.until_boundary);
        if let Some(drop_at) = self.drop_at {
            if self.offset >= drop_at {
                return None;
            }
            cap = cap.min((drop_at - self.offset) as usize);
        }
        Some(cap)
    }

    /// Account `n` transferred bytes. Returns the boundary-crossing
    /// outcome: `Some(delay_ms)` if a boundary was reached (0 = plain
    /// split), `None` otherwise.
    fn advance(&mut self, n: usize) -> Option<u64> {
        self.offset += n as u64;
        self.until_boundary -= n;
        if self.until_boundary > 0 {
            return None;
        }
        let delay = if self.rng.gen_bool(f64::from(self.cfg.delay_percent) / 100.0) {
            self.rng.gen_range(1..self.cfg.max_delay_ms.max(1) + 1)
        } else {
            0
        };
        let cfg = self.cfg;
        self.until_boundary = Self::draw_segment(&mut self.rng, &cfg);
        Some(delay)
    }

    fn at_drop(&self) -> bool {
        matches!(self.drop_at, Some(d) if self.offset >= d)
    }
}

/// Deterministic perturbation schedule for one connection: a forked RNG
/// stream per direction drawing segment boundaries and delays, plus
/// optional drop offsets. Same seed + same bytes ⇒ same events.
pub struct FaultPlan {
    read: DirPlan,
    write: DirPlan,
}

impl FaultPlan {
    /// Build the plan for a connection from a scenario seed.
    pub fn new(seed: u64, cfg: FaultConfig) -> FaultPlan {
        let mut base = Xoshiro256pp::seed_from_u64(seed);
        let read_rng = base.fork();
        let write_rng = base.fork();
        FaultPlan {
            read: DirPlan::new(read_rng, cfg, cfg.read_drop_at),
            write: DirPlan::new(write_rng, cfg, cfg.write_drop_at),
        }
    }
}

/// A [`Transport`] decorator that applies a [`FaultPlan`] to the byte
/// streams of an inner transport, recording every injected event.
pub struct FaultedTransport<T: Transport> {
    inner: T,
    conn: u32,
    plan: FaultPlan,
    log: EventLog,
    clock: VirtualClock,
    /// Invoked once when either direction is cut, so the peer observes
    /// the drop instead of blocking on a half-dead pipe.
    kill: Option<Box<dyn Fn() + Send + Sync>>,
}

impl<T: Transport> FaultedTransport<T> {
    /// Wrap `inner` with the given plan. `conn` labels this connection
    /// in the shared log.
    pub fn new(
        inner: T,
        conn: u32,
        plan: FaultPlan,
        log: EventLog,
        clock: VirtualClock,
    ) -> FaultedTransport<T> {
        FaultedTransport {
            inner,
            conn,
            plan,
            log,
            clock,
            kill: None,
        }
    }

    /// Register the hook fired when a planned drop cuts the connection.
    pub fn on_kill(mut self, kill: impl Fn() + Send + Sync + 'static) -> Self {
        self.kill = Some(Box::new(kill));
        self
    }

    fn fire_kill(&mut self) {
        if let Some(kill) = self.kill.take() {
            kill();
        }
    }
}

impl<T: Transport> Transport for FaultedTransport<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.plan.read.dropped {
            return Ok(0);
        }
        if self.plan.read.at_drop() {
            self.plan.read.dropped = true;
            let event = FaultEvent::ReadDrop {
                conn: self.conn,
                at: self.plan.read.offset,
            };
            self.log.push(event);
            self.fire_kill();
            return Ok(0);
        }
        let Some(allowed) = self.plan.read.allowance(buf.len()) else {
            unreachable!("at_drop checked above");
        };
        if allowed == 0 {
            return Ok(0);
        }
        let n = self.inner.read(&mut buf[..allowed])?;
        if n == 0 {
            return Ok(0);
        }
        if let Some(delay_ms) = self.plan.read.advance(n) {
            let at = self.plan.read.offset;
            if delay_ms > 0 {
                self.clock.advance_ms(delay_ms);
                self.log.push(FaultEvent::ReadDelay {
                    conn: self.conn,
                    at,
                    ms: delay_ms,
                });
            } else {
                self.log.push(FaultEvent::ReadSplit { conn: self.conn, at });
            }
        }
        Ok(n)
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.plan.write.dropped {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection dropped by fault plan",
            ));
        }
        if self.plan.write.at_drop() {
            self.plan.write.dropped = true;
            let event = FaultEvent::WriteDrop {
                conn: self.conn,
                at: self.plan.write.offset,
            };
            self.log.push(event);
            self.fire_kill();
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection dropped by fault plan",
            ));
        }
        let Some(allowed) = self.plan.write.allowance(buf.len()) else {
            unreachable!("at_drop checked above");
        };
        if allowed == 0 {
            return Ok(0);
        }
        let n = self.inner.write(&buf[..allowed])?;
        if n == 0 {
            return Ok(0);
        }
        if let Some(delay_ms) = self.plan.write.advance(n) {
            let at = self.plan.write.offset;
            if delay_ms > 0 {
                self.clock.advance_ms(delay_ms);
                self.log.push(FaultEvent::WriteDelay {
                    conn: self.conn,
                    at,
                    ms: delay_ms,
                });
            } else if allowed < buf.len() {
                // Only record a split when the caller actually observed a
                // short write; a boundary landing exactly on the frame
                // edge perturbs nothing.
                self.log.push(FaultEvent::WriteSplit { conn: self.conn, at });
            }
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    fn interrupter(&self) -> Interrupter {
        self.inner.interrupter()
    }
}

/// Knobs for a [`FaultedStorage`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StorageFaultConfig {
    /// Crash once cumulative written bytes *exceed* this budget: a
    /// record ending exactly at the budget persists in full (and a
    /// later fsync succeeds), one byte more tears it at the boundary.
    /// `None` never crashes.
    pub crash_after_bytes: Option<u64>,
    /// When a `write_atomic` crosses the crash budget: `true` promotes
    /// the torn prefix to the real name (a filesystem that renamed a
    /// partially-written temp file), `false` leaves the old contents
    /// untouched (rename never happened).
    pub atomic_tear: bool,
    /// Probability (0–100) that an append persists only a seeded prefix
    /// and errors *without* crashing — the transient short write the
    /// repair path must clean up.
    pub short_write_percent: u32,
    /// Seed for the short-write schedule.
    pub seed: u64,
}

/// Seeded fault decorator over any [`Storage`]: deterministic torn
/// writes, transient short writes, and a byte-offset crash point.
///
/// After the crash fires every call returns an error — the simulated
/// process is dead. Recovery code talks to the *inner* storage
/// directly, exactly like a restarted process reopening the directory.
pub struct FaultedStorage {
    inner: Arc<dyn Storage>,
    cfg: StorageFaultConfig,
    rng: Mutex<Xoshiro256pp>,
    written: AtomicU64,
    crashed: std::sync::atomic::AtomicBool,
    log: EventLog,
}

impl FaultedStorage {
    /// Wrap `inner` with the fault schedule in `cfg`.
    pub fn new(inner: Arc<dyn Storage>, cfg: StorageFaultConfig, log: EventLog) -> FaultedStorage {
        FaultedStorage {
            inner,
            cfg,
            rng: Mutex::new(Xoshiro256pp::seed_from_u64(cfg.seed)),
            written: AtomicU64::new(0),
            crashed: std::sync::atomic::AtomicBool::new(false),
            log,
        }
    }

    /// Cumulative bytes accepted by the inner storage — run a workload
    /// once with no crash point to learn the sweep budget.
    pub fn bytes_written(&self) -> u64 {
        self.written.load(Ordering::SeqCst)
    }

    /// Whether the crash point has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    fn dead() -> io::Error {
        io::Error::new(io::ErrorKind::Other, "storage crashed by fault plan")
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.crashed() {
            Err(Self::dead())
        } else {
            Ok(())
        }
    }

    /// Bytes of `len` that fit under the crash budget, or `None` when
    /// the whole write fits.
    fn tear_point(&self, len: usize) -> Option<usize> {
        let budget = self.cfg.crash_after_bytes?;
        let so_far = self.written.load(Ordering::SeqCst);
        if so_far + len as u64 <= budget {
            None
        } else {
            Some((budget.saturating_sub(so_far)) as usize)
        }
    }
}

impl Storage for FaultedStorage {
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.check_alive()?;
        if let Some(keep) = self.tear_point(data.len()) {
            // Crash point: a torn prefix lands, then the process dies.
            if keep > 0 {
                self.inner.append(name, &data[..keep])?;
                self.written.fetch_add(keep as u64, Ordering::SeqCst);
                self.log.push(FaultEvent::StorageTorn {
                    file: name.to_owned(),
                    at: self.written.load(Ordering::SeqCst),
                });
            }
            self.crashed.store(true, Ordering::SeqCst);
            self.log.push(FaultEvent::StorageCrash {
                at: self.written.load(Ordering::SeqCst),
            });
            return Err(Self::dead());
        }
        if !data.is_empty() && self.cfg.short_write_percent > 0 {
            let short = {
                let mut rng = lock_recover(&self.rng);
                rng.gen_bool(f64::from(self.cfg.short_write_percent.min(100)) / 100.0)
                    .then(|| rng.gen_range(0..data.len()))
            };
            if let Some(keep) = short {
                if keep > 0 {
                    self.inner.append(name, &data[..keep])?;
                    self.written.fetch_add(keep as u64, Ordering::SeqCst);
                }
                self.log.push(FaultEvent::StorageShort {
                    file: name.to_owned(),
                    at: self.written.load(Ordering::SeqCst),
                });
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "short write injected by fault plan",
                ));
            }
        }
        self.inner.append(name, data)?;
        self.written.fetch_add(data.len() as u64, Ordering::SeqCst);
        Ok(())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        // fsync moves no bytes: it only fails once the process is dead.
        self.check_alive()?;
        self.inner.sync(name)
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.check_alive()?;
        if let Some(keep) = self.tear_point(data.len()) {
            if self.cfg.atomic_tear {
                // Model a torn temp file that still got renamed into
                // place: the partial contents are visible at recovery.
                self.inner.write_atomic(name, &data[..keep])?;
                self.written.fetch_add(keep as u64, Ordering::SeqCst);
                self.log.push(FaultEvent::StorageTorn {
                    file: name.to_owned(),
                    at: self.written.load(Ordering::SeqCst),
                });
            }
            self.crashed.store(true, Ordering::SeqCst);
            self.log.push(FaultEvent::StorageCrash {
                at: self.written.load(Ordering::SeqCst),
            });
            return Err(Self::dead());
        }
        self.inner.write_atomic(name, data)?;
        self.written.fetch_add(data.len() as u64, Ordering::SeqCst);
        Ok(())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.check_alive()?;
        self.inner.read(name)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.check_alive()?;
        self.inner.remove(name)
    }

    fn list(&self) -> io::Result<Vec<String>> {
        self.check_alive()?;
        self.inner.list()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::sim_pair;

    fn drain(t: &mut impl Transport) -> Vec<u8> {
        let mut out = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match t.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => out.extend_from_slice(&buf[..n]),
            }
        }
        out
    }

    #[test]
    fn same_seed_same_events_regardless_of_chunking() {
        let payload: Vec<u8> = (0..400u32).map(|i| (i % 251) as u8).collect();
        let mut traces = Vec::new();
        for chunk in [1usize, 3, 64, 400] {
            let (mut tx, rx) = sim_pair();
            tx.write_all(&payload).unwrap();
            drop(tx);
            let log = EventLog::new();
            let plan = FaultPlan::new(7, FaultConfig::default());
            let mut faulted =
                FaultedTransport::new(rx, 1, plan, log.clone(), VirtualClock::new());
            let mut got = Vec::new();
            let mut buf = vec![0u8; chunk];
            loop {
                match faulted.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => got.extend_from_slice(&buf[..n]),
                }
            }
            assert_eq!(got, payload, "payload intact through faults");
            traces.push(
                log.snapshot()
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>(),
            );
        }
        for t in &traces[1..] {
            assert_eq!(t, &traces[0], "events depend only on seed + bytes");
        }
    }

    #[test]
    fn read_drop_cuts_the_stream_at_the_offset() {
        let (mut tx, rx) = sim_pair();
        tx.write_all(b"0123456789").unwrap();
        let cfg = FaultConfig {
            read_drop_at: Some(4),
            delay_percent: 0,
            ..FaultConfig::default()
        };
        let log = EventLog::new();
        let mut faulted = FaultedTransport::new(
            rx,
            2,
            FaultPlan::new(1, cfg),
            log.clone(),
            VirtualClock::new(),
        );
        let got = drain(&mut faulted);
        assert_eq!(got, b"0123", "exactly drop_at bytes delivered");
        assert_eq!(
            log.last_drop(),
            Some(FaultEvent::ReadDrop { conn: 2, at: 4 })
        );
    }

    #[test]
    fn write_drop_truncates_and_kills_the_peer() {
        let (server_side, mut client_side) = sim_pair();
        let cfg = FaultConfig {
            write_drop_at: Some(6),
            delay_percent: 0,
            min_segment: 64,
            max_segment: 64,
            ..FaultConfig::default()
        };
        let log = EventLog::new();
        let killed = Arc::new(AtomicU64::new(0));
        let killed2 = Arc::clone(&killed);
        let mut faulted = FaultedTransport::new(
            server_side,
            3,
            FaultPlan::new(1, cfg),
            log.clone(),
            VirtualClock::new(),
        )
        .on_kill(move || {
            killed2.fetch_add(1, Ordering::SeqCst);
        });
        let err = faulted.write_all(b"a full response frame\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(killed.load(Ordering::SeqCst), 1, "kill hook fired once");
        assert_eq!(
            log.last_drop(),
            Some(FaultEvent::WriteDrop { conn: 3, at: 6 })
        );
        drop(faulted);
        let got = drain(&mut client_side);
        assert_eq!(got, b"a full", "peer saw the truncated prefix only");
    }

    #[test]
    fn storage_crash_fires_strictly_after_the_budget() {
        use crate::storage::MemStorage;
        // Budget exactly equal to one append: the append fully
        // persists and the *next* byte crashes.
        let inner = Arc::new(MemStorage::new());
        let cfg = StorageFaultConfig {
            crash_after_bytes: Some(5),
            ..StorageFaultConfig::default()
        };
        let log = EventLog::new();
        let faulted = FaultedStorage::new(inner.clone() as Arc<dyn Storage>, cfg, log.clone());
        faulted.append("j", b"12345").unwrap();
        faulted.sync("j").unwrap();
        assert!(!faulted.crashed());
        let err = faulted.append("j", b"6").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert!(faulted.crashed());
        assert!(faulted.sync("j").is_err(), "dead process cannot fsync");
        assert_eq!(inner.read("j").unwrap(), b"12345");
        assert!(log
            .snapshot()
            .iter()
            .any(|e| matches!(e, FaultEvent::StorageCrash { at: 5 })));
    }

    #[test]
    fn storage_crash_mid_record_leaves_a_torn_prefix() {
        use crate::storage::MemStorage;
        let inner = Arc::new(MemStorage::new());
        let cfg = StorageFaultConfig {
            crash_after_bytes: Some(3),
            ..StorageFaultConfig::default()
        };
        let log = EventLog::new();
        let faulted = FaultedStorage::new(inner.clone() as Arc<dyn Storage>, cfg, log.clone());
        assert!(faulted.append("j", b"abcdef").is_err());
        assert_eq!(inner.read("j").unwrap(), b"abc", "prefix up to the budget");
        let events: Vec<String> = log.snapshot().iter().map(ToString::to_string).collect();
        assert_eq!(events, vec!["storage.torn@3 j", "storage.crash@3"]);
    }

    #[test]
    fn atomic_tear_flag_controls_torn_snapshot_visibility() {
        use crate::storage::MemStorage;
        for tear in [false, true] {
            let inner = Arc::new(MemStorage::new());
            inner.write_atomic("s", b"old").unwrap();
            let cfg = StorageFaultConfig {
                crash_after_bytes: Some(4),
                atomic_tear: tear,
                ..StorageFaultConfig::default()
            };
            let faulted =
                FaultedStorage::new(inner.clone() as Arc<dyn Storage>, cfg, EventLog::new());
            assert!(faulted.write_atomic("s", b"new-contents").is_err());
            let got = inner.read("s").unwrap();
            if tear {
                assert_eq!(got, b"new-", "torn prefix promoted to the real name");
            } else {
                assert_eq!(got, b"old", "rename never happened");
            }
        }
    }

    #[test]
    fn short_writes_persist_a_prefix_and_do_not_crash() {
        use crate::storage::MemStorage;
        let inner = Arc::new(MemStorage::new());
        let cfg = StorageFaultConfig {
            short_write_percent: 100,
            seed: 11,
            ..StorageFaultConfig::default()
        };
        let log = EventLog::new();
        let faulted = FaultedStorage::new(inner.clone() as Arc<dyn Storage>, cfg, log.clone());
        let err = faulted.append("j", b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert!(!faulted.crashed(), "short writes are transient");
        let kept = inner.read("j").unwrap();
        assert!(kept.len() < 10, "a strict prefix persisted");
        assert_eq!(&b"0123456789"[..kept.len()], &kept[..]);
        assert!(log
            .snapshot()
            .iter()
            .any(|e| matches!(e, FaultEvent::StorageShort { .. })));
    }

    #[test]
    fn delays_advance_virtual_time_only() {
        let clock = VirtualClock::new();
        let (mut tx, rx) = sim_pair();
        let payload = vec![b'x'; 4096];
        tx.write_all(&payload).unwrap();
        drop(tx);
        let cfg = FaultConfig {
            delay_percent: 100,
            max_delay_ms: 10,
            min_segment: 16,
            max_segment: 32,
            ..FaultConfig::default()
        };
        let log = EventLog::new();
        let mut faulted =
            FaultedTransport::new(rx, 4, FaultPlan::new(9, cfg), log.clone(), clock.clone());
        let wall = std::time::Instant::now();
        let got = drain(&mut faulted);
        assert_eq!(got.len(), payload.len());
        let advanced: u64 = log
            .snapshot()
            .iter()
            .map(|e| match *e {
                FaultEvent::ReadDelay { ms, .. } => ms,
                _ => 0,
            })
            .sum();
        assert!(advanced > 0, "100% delay chance must inject delays");
        assert_eq!(clock.now_ms(), advanced, "clock tracks injected delays");
        assert!(
            wall.elapsed() < std::time::Duration::from_millis(advanced),
            "virtual delays must not sleep for real"
        );
    }
}
