//! Durable sessions: a per-session write-ahead journal, periodic
//! snapshots, and crash recovery over any [`Storage`].
//!
//! ## On-disk layout (one flat directory)
//!
//! * `<id>.journal` — append-only records, one per *attempted*
//!   mutating verb, journaled **before** the verb touches the
//!   in-memory session (write-ahead). A verb that failed live (e.g. a
//!   conflicting assert) stays in the journal and fails identically on
//!   replay — dispatch is deterministic, so the journal needs no
//!   outcome bit.
//! * `<id>.snap.<gen>` — snapshot generation `gen`: one record whose
//!   payload is the [`script::save`] text and whose sequence field is
//!   the last journal sequence it covers.
//!
//! ## Record container
//!
//! ```text
//! | len: u32 le | crc: u32 le | seq: u64 le | payload (len bytes) |
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the seq bytes plus the payload, so a
//! torn tail, a bit flip, or a stale length all fail closed. Decoding
//! stops at the first bad record; recovery truncates the tail and
//! keeps going ("acknowledged ⇒ recovered" never depends on bytes
//! after a corruption).
//!
//! ## Snapshots and compaction
//!
//! Every [`PersistConfig::snapshot_every`] journaled records the
//! session is snapshotted: write `snap.(g+1)` atomically, then rewrite
//! the journal keeping only records *after the previous generation's*
//! last sequence, then drop `snap.(g-1)`. Two generations plus that
//! one-generation journal overlap mean a corrupt newest snapshot (torn
//! by a crash mid-write) falls back to the older generation with no
//! acknowledged record lost. Replay skips records at or below the
//! recovered snapshot's sequence, so crashing between snapshot and
//! compaction is also safe.
//!
//! ## Durability contract
//!
//! With `fsync=always`, a mutating verb is acknowledged only after its
//! journal record is fsynced: acknowledged ⇒ recovered, byte-for-byte
//! (the crash suite in `tests/crash.rs` sweeps every byte offset).
//! `every-n` and `never` trade the tail of un-fsynced acknowledgements
//! for throughput — after power loss the recovered state is a prefix
//! of the acknowledged history, never a divergent state.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io;
use std::sync::{Arc, Mutex};

use sit_core::script;
use sit_core::session::Session;
use sit_obs::clock::Clock;
use sit_obs::metrics::{prom_counter, prom_histogram, Counter, Histogram};
use sit_obs::sync::lock_recover;
use sit_obs::trace;

use crate::proto::{ErrorCode, Request, ServerError};
use crate::storage::Storage;
use crate::wire::Json;

/// Bytes of fixed header before each record's payload.
pub const RECORD_HEADER: usize = 16;

/// Largest journal record payload accepted by the decoder (a journal
/// payload is one request frame, bounded by the wire's 1 MiB line
/// limit — anything larger is corruption, not data).
pub const MAX_JOURNAL_PAYLOAD: usize = 2 * 1024 * 1024;

/// Largest snapshot payload accepted (session scripts dwarf single
/// frames but still bound the decoder against absurd length fields).
pub const MAX_SNAPSHOT_PAYLOAD: usize = 256 * 1024 * 1024;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)

// Slicing-by-8: eight derived tables let the hot loop fold 8 input
// bytes per iteration instead of 1, which matters because this CRC
// runs on every journaled request.
const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = crc32_tables();

fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ state;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        state = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        state = (state >> 8) ^ CRC_TABLES[0][((state ^ u32::from(b)) & 0xFF) as usize];
    }
    state
}

/// CRC-32 of `seq` (little-endian) followed by `payload` — the checksum
/// each record carries.
pub fn record_crc(seq: u64, payload: &[u8]) -> u32 {
    let state = crc32_update(0xFFFF_FFFF, &seq.to_le_bytes());
    crc32_update(state, payload) ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Record codec

/// Encode one record in the journal/snapshot container format.
pub fn encode_record(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&record_crc(seq, payload).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The result of scanning a journal byte string.
pub struct JournalScan {
    /// Every intact `(seq, payload)` record, in file order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Bytes covered by those records — a torn tail starts here.
    pub consumed: usize,
    /// Bytes after `consumed` (0 on a clean journal).
    pub trailing: usize,
}

/// Decode records until the bytes run out or a record fails its
/// length bound or checksum. Never panics on arbitrary input.
pub fn decode_records(bytes: &[u8], max_payload: usize) -> JournalScan {
    let mut records = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= RECORD_HEADER {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        let seq = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().expect("8 bytes"));
        if len > max_payload || bytes.len() - at - RECORD_HEADER < len {
            break; // absurd length or torn tail
        }
        let payload = &bytes[at + RECORD_HEADER..at + RECORD_HEADER + len];
        if record_crc(seq, payload) != crc {
            break; // corrupt record: stop, everything after is suspect
        }
        records.push((seq, payload.to_vec()));
        at += RECORD_HEADER + len;
    }
    JournalScan {
        records,
        consumed: at,
        trailing: bytes.len() - at,
    }
}

/// Decode a snapshot file: exactly one intact record spanning the whole
/// file. `None` means the snapshot is torn or corrupt.
pub fn decode_snapshot(bytes: &[u8]) -> Option<(u64, Vec<u8>)> {
    let scan = decode_records(bytes, MAX_SNAPSHOT_PAYLOAD);
    if scan.trailing != 0 || scan.records.len() != 1 {
        return None;
    }
    scan.records.into_iter().next()
}

// ---------------------------------------------------------------------
// Configuration

/// When journal appends are made durable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every record — acknowledged ⇒ recovered, always.
    Always,
    /// fsync after every N records — bounded acknowledged-but-volatile
    /// tail.
    EveryN(u32),
    /// Never fsync explicitly — durability rides on the OS cache.
    Never,
}

impl FsyncPolicy {
    /// Parse the CLI spelling: `always`, `never`, or `every-N`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            _ => {
                let n: u32 = s.strip_prefix("every-")?.parse().ok()?;
                (n > 0).then_some(FsyncPolicy::EveryN(n))
            }
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every-{n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Persistence knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PersistConfig {
    /// Journal fsync policy.
    pub fsync: FsyncPolicy,
    /// Snapshot (and compact) a session every this many journal
    /// records; 0 disables snapshots (journal-only persistence).
    pub snapshot_every: u64,
}

impl Default for PersistConfig {
    fn default() -> Self {
        PersistConfig {
            fsync: FsyncPolicy::Always,
            snapshot_every: 64,
        }
    }
}

// ---------------------------------------------------------------------
// Metrics

/// Counters and histograms the persistence layer feeds into
/// `metrics_text` (the `sit_persist_*` / `sit_recover_*` series) and
/// the `persist_stats` verb.
#[derive(Default)]
pub struct PersistMetrics {
    /// Journal records written (acknowledged appends).
    pub journal_records: Counter,
    /// Journal bytes written.
    pub journal_bytes: Counter,
    /// Per-record encoded size.
    pub record_bytes: Histogram,
    /// Explicit fsyncs issued.
    pub fsyncs: Counter,
    /// fsync latency.
    pub fsync_ns: Histogram,
    /// Snapshots written.
    pub snapshots: Counter,
    /// Journal compactions completed.
    pub compactions: Counter,
    /// Storage failures surfaced (append, fsync, snapshot, repair).
    pub errors: Counter,
    /// Sessions recovered at startup.
    pub recovered_sessions: Counter,
    /// Journal records replayed at startup.
    pub recovered_records: Counter,
    /// Torn/corrupt tail bytes truncated at startup.
    pub recover_truncated_bytes: Counter,
    /// Corrupt snapshots skipped in favor of older generations.
    pub recover_skipped_snapshots: Counter,
    /// Replayed records whose verb returned an error (a verb that
    /// failed live fails identically on replay — this counts those,
    /// plus genuinely undecodable payloads).
    pub replay_errors: Counter,
    /// Per-session recovery time.
    pub recover_ns: Histogram,
}

impl PersistMetrics {
    /// Append the `sit_persist_*` / `sit_recover_*` Prometheus series.
    pub fn prometheus(&self, out: &mut String) {
        let counters: [(&str, &Counter); 10] = [
            ("sit_persist_journal_records_total", &self.journal_records),
            ("sit_persist_journal_bytes_total", &self.journal_bytes),
            ("sit_persist_fsync_total", &self.fsyncs),
            ("sit_persist_snapshots_total", &self.snapshots),
            ("sit_persist_compactions_total", &self.compactions),
            ("sit_persist_errors_total", &self.errors),
            ("sit_recover_sessions_total", &self.recovered_sessions),
            ("sit_recover_records_total", &self.recovered_records),
            (
                "sit_recover_truncated_bytes_total",
                &self.recover_truncated_bytes,
            ),
            (
                "sit_recover_skipped_snapshots_total",
                &self.recover_skipped_snapshots,
            ),
        ];
        for (name, counter) in counters {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" counter\n");
            prom_counter(out, name, "", counter.get());
        }
        out.push_str("# TYPE sit_recover_replay_errors_total counter\n");
        prom_counter(
            out,
            "sit_recover_replay_errors_total",
            "",
            self.replay_errors.get(),
        );
        for (name, h) in [
            ("sit_persist_record_bytes", &self.record_bytes),
            ("sit_persist_fsync_ns", &self.fsync_ns),
            ("sit_recover_ns", &self.recover_ns),
        ] {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" histogram\n");
            prom_histogram(out, name, "", h);
        }
    }
}

// ---------------------------------------------------------------------
// The persistence manager

/// Per-session journal/snapshot bookkeeping.
#[derive(Default)]
struct SessionState {
    /// Last sequence number assigned (journaled or covered by a
    /// snapshot).
    seq: u64,
    /// Known-good journal length in bytes — the repair truncation
    /// point after a failed append.
    good_len: u64,
    /// Intact records currently in the journal file.
    journal_records: u64,
    /// Records journaled since the last snapshot.
    since_snapshot: u64,
    /// Records appended since the last fsync (`every-n` bookkeeping).
    unsynced: u32,
    /// Latest snapshot generation on disk (0 = none yet).
    gen: u64,
    /// The latest snapshot's covered sequence.
    snap_last_seq: u64,
    /// Set when storage failed in a way repair could not undo; all
    /// further mutations on this session are refused rather than
    /// silently diverging from disk.
    broken: bool,
    /// The journal file name, built once on first append instead of
    /// re-formatted on every write-ahead record.
    jname: String,
}

impl SessionState {
    fn jname(&mut self, id: u64) -> &str {
        if self.jname.is_empty() {
            self.jname = journal_name(id);
        }
        &self.jname
    }
}

fn journal_name(id: u64) -> String {
    format!("{id}.journal")
}

fn snap_name(id: u64, gen: u64) -> String {
    format!("{id}.snap.{gen}")
}

/// What [`Persistence::recover`] found on disk.
#[derive(Default)]
pub struct RecoveryReport {
    /// Recovered sessions, ascending by id, ready to pin into the
    /// store.
    pub sessions: Vec<(u64, Session)>,
}

/// The journal/snapshot engine for one data directory.
pub struct Persistence {
    storage: Arc<dyn Storage>,
    config: PersistConfig,
    clock: Arc<dyn Clock>,
    sessions: Mutex<HashMap<u64, Arc<Mutex<SessionState>>>>,
    metrics: PersistMetrics,
}

impl Persistence {
    /// A manager over `storage`; call [`Persistence::recover`] before
    /// serving.
    pub fn new(
        storage: Arc<dyn Storage>,
        config: PersistConfig,
        clock: Arc<dyn Clock>,
    ) -> Persistence {
        Persistence {
            storage,
            config,
            clock,
            sessions: Mutex::new(HashMap::new()),
            metrics: PersistMetrics::default(),
        }
    }

    /// The configured policies.
    pub fn config(&self) -> &PersistConfig {
        &self.config
    }

    /// The persistence metrics (also folded into `metrics_text`).
    pub fn metrics(&self) -> &PersistMetrics {
        &self.metrics
    }

    /// Sessions with persistence state (live or evicted-but-on-disk).
    pub fn tracked(&self) -> usize {
        lock_recover(&self.sessions).len()
    }

    fn state(&self, id: u64) -> Result<Arc<Mutex<SessionState>>, ServerError> {
        lock_recover(&self.sessions)
            .get(&id)
            .cloned()
            .ok_or_else(|| persist_error(format!("session `{id}` has no persistence state")))
    }

    /// Create the journal for a fresh session (`open`/`load`), durable
    /// per the fsync policy.
    pub fn create_session(&self, id: u64) -> Result<(), ServerError> {
        let jname = journal_name(id);
        self.storage
            .append(&jname, &[])
            .map_err(|e| persist_io("journal create", &e))?;
        if self.config.fsync == FsyncPolicy::Always {
            self.storage
                .sync(&jname)
                .map_err(|e| persist_io("journal create fsync", &e))?;
        }
        lock_recover(&self.sessions).insert(id, Arc::new(Mutex::new(SessionState::default())));
        Ok(())
    }

    /// Write-ahead append: journal one request frame (and fsync per
    /// policy) *before* the verb is applied. On failure nothing is
    /// acknowledged: the journal is repaired back to its known-good
    /// length, or the session is marked broken if even that fails.
    pub fn append(&self, id: u64, payload: &[u8]) -> Result<(), ServerError> {
        let state = self.state(id)?;
        let mut st = lock_recover(&state);
        if st.broken {
            return Err(persist_error(
                "session persistence disabled after an unrecoverable storage failure",
            ));
        }
        let seq = st.seq + 1;
        let record = encode_record(seq, payload);
        st.jname(id);
        {
            let _span = trace::span("persist.append");
            if let Err(e) = self.storage.append(&st.jname, &record) {
                self.metrics.errors.inc();
                let jname = st.jname.clone();
                self.repair(&jname, &mut st);
                return Err(persist_io("journal append", &e));
            }
        }
        st.unsynced += 1;
        let sync_now = match self.config.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => st.unsynced >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if sync_now {
            let _span = trace::span("persist.fsync");
            let t0 = self.clock.now_ns();
            if let Err(e) = self.storage.sync(&st.jname) {
                self.metrics.errors.inc();
                let jname = st.jname.clone();
                self.repair(&jname, &mut st);
                return Err(persist_io("journal fsync", &e));
            }
            self.metrics.fsyncs.inc();
            self.metrics
                .fsync_ns
                .record(self.clock.now_ns().saturating_sub(t0));
            st.unsynced = 0;
        }
        st.seq = seq;
        st.good_len += record.len() as u64;
        st.journal_records += 1;
        st.since_snapshot += 1;
        self.metrics.journal_records.inc();
        self.metrics.journal_bytes.add(record.len() as u64);
        self.metrics.record_bytes.record(record.len() as u64);
        Ok(())
    }

    /// Truncate the journal back to the last acknowledged byte after a
    /// failed append/fsync, so the file never carries a torn record
    /// into the *next* append. If the truncation itself fails the
    /// session is marked broken.
    fn repair(&self, jname: &str, st: &mut SessionState) {
        let result = (|| -> io::Result<()> {
            let data = self.storage.read(jname)?;
            let good = usize::try_from(st.good_len).unwrap_or(usize::MAX);
            if data.len() > good {
                self.storage.write_atomic(jname, &data[..good])?;
            }
            Ok(())
        })();
        if result.is_err() {
            st.broken = true;
            self.metrics.errors.inc();
        }
    }

    /// Snapshot + compact if the session has accumulated
    /// `snapshot_every` records. Never fails the triggering request —
    /// its record is already durable in the journal — but records
    /// failures in the metrics.
    pub fn maybe_snapshot(&self, id: u64, session: &Session) {
        if self.config.snapshot_every == 0 {
            return;
        }
        let Ok(state) = self.state(id) else { return };
        let mut st = lock_recover(&state);
        if st.broken || st.since_snapshot < self.config.snapshot_every {
            return;
        }
        let _span = trace::span("persist.snapshot");
        let text = script::save(session);
        let gen = st.gen + 1;
        let snap = encode_record(st.seq, text.as_bytes());
        if self.storage.write_atomic(&snap_name(id, gen), &snap).is_err() {
            self.metrics.errors.inc();
            return;
        }
        // The snapshot is durable; the journal now only *needs* records
        // after the previous generation (kept so a torn newer snapshot
        // can fall back one generation without losing anything).
        let keep_above = st.snap_last_seq;
        st.gen = gen;
        st.snap_last_seq = st.seq;
        st.since_snapshot = 0;
        self.metrics.snapshots.inc();
        let jname = journal_name(id);
        let compacted = (|| -> io::Result<()> {
            let bytes = match self.storage.read(&jname) {
                Ok(b) => b,
                Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(e),
            };
            let scan = decode_records(&bytes, MAX_JOURNAL_PAYLOAD);
            let mut out = Vec::new();
            let mut kept = 0u64;
            for (seq, payload) in &scan.records {
                if *seq > keep_above {
                    out.extend_from_slice(&encode_record(*seq, payload));
                    kept += 1;
                }
            }
            self.storage.write_atomic(&jname, &out)?;
            st.good_len = out.len() as u64;
            st.journal_records = kept;
            st.unsynced = 0;
            Ok(())
        })();
        match compacted {
            Ok(()) => self.metrics.compactions.inc(),
            // Journal unchanged (write_atomic is all-or-nothing):
            // state stays consistent, only compaction was skipped.
            Err(_) => self.metrics.errors.inc(),
        }
        if gen >= 3 {
            let _ = self.storage.remove(&snap_name(id, gen - 2));
        }
    }

    /// Remove every file belonging to `id` (wire `close`). On failure
    /// the caller must keep the session open — a close acknowledged
    /// means the files are gone.
    pub fn remove_session(&self, id: u64) -> Result<(), ServerError> {
        let prefix = format!("{id}.");
        let names = self
            .storage
            .list()
            .map_err(|e| persist_io("list for close", &e))?;
        for name in names.iter().filter(|n| n.starts_with(&prefix)) {
            self.storage
                .remove(name)
                .map_err(|e| persist_io("remove session file", &e))?;
        }
        lock_recover(&self.sessions).remove(&id);
        Ok(())
    }

    /// Scan the storage and rebuild every session: latest valid
    /// snapshot (skipping corrupt generations), then journal replay
    /// through the service's own dispatch, truncating any torn tail.
    pub fn recover(&self) -> io::Result<RecoveryReport> {
        let _span = trace::span("recover");
        // Group files by session id.
        let mut found: BTreeMap<u64, (bool, Vec<u64>)> = BTreeMap::new();
        for name in self.storage.list()? {
            let Some((id, rest)) = name.split_once('.') else {
                continue;
            };
            let Ok(id) = id.parse::<u64>() else { continue };
            let entry = found.entry(id).or_default();
            if rest == "journal" {
                entry.0 = true;
            } else if let Some(gen) = rest.strip_prefix("snap.").and_then(|g| g.parse().ok()) {
                entry.1.push(gen);
            }
        }
        let mut report = RecoveryReport::default();
        for (id, (has_journal, mut gens)) in found {
            if !has_journal && gens.is_empty() {
                continue;
            }
            let t0 = self.clock.now_ns();
            let mut span = trace::span("recover.session");
            span.set_arg("session", id.to_string());
            gens.sort_unstable();
            let (session, state) = self.recover_one(id, &gens)?;
            drop(span);
            self.metrics
                .recover_ns
                .record(self.clock.now_ns().saturating_sub(t0));
            self.metrics.recovered_sessions.inc();
            lock_recover(&self.sessions).insert(id, Arc::new(Mutex::new(state)));
            report.sessions.push((id, session));
        }
        Ok(report)
    }

    fn recover_one(&self, id: u64, gens: &[u64]) -> io::Result<(Session, SessionState)> {
        // Newest decodable snapshot wins; corrupt ones are skipped.
        let mut session = Session::new();
        let mut snap_last_seq = 0u64;
        for &gen in gens.iter().rev() {
            let loaded = self
                .storage
                .read(&snap_name(id, gen))
                .ok()
                .and_then(|bytes| decode_snapshot(&bytes))
                .and_then(|(last_seq, payload)| {
                    let text = String::from_utf8(payload).ok()?;
                    script::load(&text).ok().map(|s| (last_seq, s))
                });
            match loaded {
                Some((last_seq, s)) => {
                    session = s;
                    snap_last_seq = last_seq;
                    break;
                }
                None => self.metrics.recover_skipped_snapshots.inc(),
            }
        }
        // Journal scan: truncate a torn tail, replay the rest.
        let jname = journal_name(id);
        let bytes = match self.storage.read(&jname) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let scan = decode_records(&bytes, MAX_JOURNAL_PAYLOAD);
        if scan.trailing > 0 {
            self.metrics
                .recover_truncated_bytes
                .add(scan.trailing as u64);
            self.storage.write_atomic(&jname, &bytes[..scan.consumed])?;
        }
        let mut seq = snap_last_seq;
        let mut since_snapshot = 0u64;
        for (rseq, payload) in &scan.records {
            seq = seq.max(*rseq);
            if *rseq <= snap_last_seq {
                continue; // already covered by the snapshot
            }
            since_snapshot += 1;
            self.metrics.recovered_records.inc();
            self.replay(&mut session, payload);
        }
        let max_gen = gens.last().copied().unwrap_or(0);
        // Prune generations the retention scheme no longer references
        // (older crashes can leave a trail behind the newest two).
        for &gen in gens {
            if gen + 1 < max_gen {
                let _ = self.storage.remove(&snap_name(id, gen));
            }
        }
        let state = SessionState {
            seq,
            good_len: scan.consumed as u64,
            journal_records: scan.records.len() as u64,
            since_snapshot,
            unsynced: 0,
            gen: max_gen,
            snap_last_seq,
            broken: false,
            jname: journal_name(id),
        };
        Ok((session, state))
    }

    /// Apply one journaled frame to the recovering session through the
    /// same dispatch live requests use. Errors are expected (a verb
    /// that failed live fails identically here) and never abort
    /// recovery.
    fn replay(&self, session: &mut Session, payload: &[u8]) {
        let request = std::str::from_utf8(payload)
            .ok()
            .and_then(|text| Json::parse(text).ok())
            .and_then(|v| Request::from_json(&v).ok());
        let Some(request) = request else {
            self.metrics.replay_errors.inc();
            return;
        };
        let outcome = match &request {
            // `load` seeds the session wholesale — it is the first
            // record of a script-loaded session.
            Request::Load { script } => match script::load(script) {
                Ok(s) => {
                    *session = s;
                    Ok(())
                }
                Err(_) => Err(()),
            },
            other => crate::service::apply_session_request(session, other)
                .map(|_| ())
                .map_err(|_| ()),
        };
        if outcome.is_err() {
            self.metrics.replay_errors.inc();
        }
    }
}

/// A `persist`-coded error.
pub(crate) fn persist_error(message: impl Into<String>) -> ServerError {
    ServerError {
        code: ErrorCode::Persist,
        message: message.into(),
    }
}

fn persist_io(what: &str, e: &io::Error) -> ServerError {
    persist_error(format!("{what}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use sit_obs::clock::MonotonicClock;

    #[test]
    fn crc_known_answer() {
        // CRC-32("123456789") = 0xCBF43926 (IEEE check value); our
        // record CRC prepends the seq bytes, so check the raw helper.
        let crc = crc32_update(0xFFFF_FFFF, b"123456789") ^ 0xFFFF_FFFF;
        assert_eq!(crc, 0xCBF4_3926);
    }

    #[test]
    fn records_round_trip_and_detect_corruption() {
        let mut journal = Vec::new();
        for seq in 1..=5u64 {
            journal.extend_from_slice(&encode_record(seq, format!("payload-{seq}").as_bytes()));
        }
        let scan = decode_records(&journal, MAX_JOURNAL_PAYLOAD);
        assert_eq!(scan.records.len(), 5);
        assert_eq!(scan.trailing, 0);
        assert_eq!(scan.records[2], (3, b"payload-3".to_vec()));

        // Flip one payload byte in record 4: decoding keeps 1–3 only.
        let mut corrupt = journal.clone();
        let offset = 3 * (RECORD_HEADER + 9) + RECORD_HEADER + 2;
        corrupt[offset] ^= 0x40;
        let scan = decode_records(&corrupt, MAX_JOURNAL_PAYLOAD);
        assert_eq!(scan.records.len(), 3);
        assert!(scan.trailing > 0);

        // Torn tail: every strict prefix decodes to a record prefix.
        for cut in 0..journal.len() {
            let scan = decode_records(&journal[..cut], MAX_JOURNAL_PAYLOAD);
            assert!(scan.records.len() <= 5);
            assert_eq!(scan.consumed + scan.trailing, cut);
        }
    }

    #[test]
    fn snapshot_decode_requires_exactly_one_clean_record() {
        let snap = encode_record(42, b"# sit session v1\n");
        assert_eq!(
            decode_snapshot(&snap),
            Some((42, b"# sit session v1\n".to_vec()))
        );
        assert_eq!(decode_snapshot(&snap[..snap.len() - 1]), None);
        let mut two = snap.clone();
        two.extend_from_slice(&encode_record(43, b"x"));
        assert_eq!(decode_snapshot(&two), None);
        assert_eq!(decode_snapshot(b""), None);
    }

    #[test]
    fn fsync_policy_parses_both_ways() {
        for (s, p) in [
            ("always", FsyncPolicy::Always),
            ("never", FsyncPolicy::Never),
            ("every-8", FsyncPolicy::EveryN(8)),
        ] {
            assert_eq!(FsyncPolicy::parse(s), Some(p));
            assert_eq!(p.to_string(), s);
        }
        for bad in ["", "every-0", "every-x", "sometimes"] {
            assert_eq!(FsyncPolicy::parse(bad), None, "{bad}");
        }
    }

    #[test]
    fn append_then_recover_round_trips_one_session() {
        let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let clock: Arc<dyn Clock> = Arc::new(MonotonicClock::new());
        let p = Persistence::new(
            Arc::clone(&storage),
            PersistConfig::default(),
            Arc::clone(&clock),
        );
        p.create_session(7).unwrap();
        let frame = Request::AddSchema {
            session: "7".into(),
            ddl: "schema s { entity E { x: int key; } }".into(),
        }
        .to_json()
        .encode();
        p.append(7, frame.as_bytes()).unwrap();

        let p2 = Persistence::new(storage, PersistConfig::default(), clock);
        let report = p2.recover().unwrap();
        assert_eq!(report.sessions.len(), 1);
        let (id, session) = &report.sessions[0];
        assert_eq!(*id, 7);
        assert_eq!(session.catalog().schemas().count(), 1);
        assert_eq!(p2.metrics().recovered_records.get(), 1);
    }
}
