#![warn(missing_docs)]
//! # sit-server — the schema-integration service
//!
//! The paper's tool served one designer at one terminal; the ROADMAP's
//! north star is a shared service many clients query concurrently (the
//! multidatabase setting of PAPERS.md). This crate puts
//! [`sit_core::Session`] behind a wire protocol:
//!
//! * [`wire`] — a hermetic JSON parser/encoder with depth and size
//!   limits (the workspace carries no external crates);
//! * [`proto`] — the request/response vocabulary: 23 verbs covering the
//!   whole session façade plus observability (`stats`, `metrics_text`,
//!   `trace_dump`, `persist_stats`), typed error codes;
//! * [`store`] — a bounded [`store::SessionStore`] with LRU + TTL
//!   eviction and per-session locking;
//! * [`storage`] — the flat-file storage abstraction under the
//!   persistence layer: a real directory ([`storage::DirStorage`],
//!   fsync + atomic-rename discipline) and an in-memory simulation
//!   ([`storage::MemStorage`]) with an explicit durability watermark;
//! * [`persist`] — durable sessions: per-session write-ahead journal
//!   (length-prefixed CRC-32 records, `always`/`every-n`/`never` fsync
//!   policies), periodic snapshots with journal compaction, and crash
//!   recovery that replays records through the service's own dispatch
//!   (`--data-dir`);
//! * [`pool`] — a fixed worker pool with a bounded queue; a full queue
//!   rejects with the `overloaded` error instead of blocking;
//! * [`metrics`] — lock-free per-verb counters and base-2 latency
//!   histograms (`sit-obs`), served by `stats` and, as Prometheus
//!   text, by `metrics_text`;
//! * [`service`] — transport-agnostic dispatch (never panics on
//!   malformed input), traced per request (`request` →
//!   `parse`/`dispatch`/`encode` spans plus engine spans) into a
//!   bounded ring served by `trace_dump` as Chrome trace JSON;
//! * [`transport`] — the byte-stream abstraction the serving loop runs
//!   on: real TCP and an in-memory simulated connection;
//! * [`fault`] — seeded, deterministic fault injection over any
//!   transport (torn frames, stalls, drops, virtual time) and any
//!   storage (torn writes, short writes, byte-offset crash points),
//!   the engine of the chaos test suites;
//! * [`server`] — TCP (`sit serve`) and stdio (`sit serve --stdio`)
//!   serving with graceful draining shutdown, generic over [`transport`];
//! * [`client`] — the blocking client used by `sit client`, the tests,
//!   and the `loadgen` bench, with configurable timeouts and bounded
//!   jittered retry for idempotent verbs.
//!
//! ```no_run
//! use sit_server::server::{Server, ServerConfig};
//! use sit_server::client::Client;
//! use sit_server::proto::Request;
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = server.spawn().unwrap();
//!
//! let mut client = Client::connect(addr).unwrap();
//! let opened = client.expect_ok(&Request::Open).unwrap();
//! let session = opened.get("session").and_then(|v| v.as_str()).unwrap().to_owned();
//! client.expect_ok(&Request::AddSchema {
//!     session,
//!     ddl: "schema sc1 { entity Student { Name: char key; } }".into(),
//! }).unwrap();
//! client.expect_ok(&Request::Shutdown).unwrap();
//! handle.join().unwrap();
//! ```

pub mod client;
pub mod fault;
pub mod metrics;
pub mod persist;
pub mod pool;
pub mod proto;
pub mod server;
pub mod service;
pub mod storage;
pub mod store;
pub mod transport;
pub mod wire;

pub use client::{error_code, Client, ClientConfig, RetryPolicy};
pub use persist::{FsyncPolicy, PersistConfig, Persistence};
pub use proto::{ErrorCode, Request, ServerError};
pub use server::{
    serve_connection, serve_stdio, PersistOptions, Server, ServerConfig, ServerHandle,
};
pub use storage::{DirStorage, MemStorage, Storage};
pub use transport::{sim_pair, SimConn, TcpTransport, Transport};
pub use service::Service;
pub use store::{SessionStore, StoreConfig};
pub use wire::Json;
