//! Fixed-size worker pool with a bounded queue and non-blocking
//! backpressure.
//!
//! [`ThreadPool::submit`] never blocks the caller: when the queue is at
//! capacity it returns [`QueueFull`] immediately, which the server maps
//! to the typed `overloaded` protocol error — the accept/read path stays
//! responsive under load instead of wedging behind slow requests.
//!
//! [`ThreadPool::shutdown`] drains: already-queued jobs still run, workers
//! exit once the queue is empty, and the call waits for every worker to
//! finish before returning. It takes `&self` so a shared pool
//! (`Arc<ThreadPool>`) can be drained from the accept loop while
//! connection threads still hold clones.
//!
//! The pool survives panicking jobs twice over: every job runs under
//! `catch_unwind` so its worker keeps serving the queue (a dead worker
//! would also wedge `shutdown`, which waits for all workers to exit),
//! and every lock acquisition is poison-recovering
//! ([`lock_recover`]) so a panic that *does* escape somewhere cannot
//! take the whole pool down with it.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use sit_obs::sync::lock_recover;

/// A queued unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Backpressure signal: the bounded queue is full (or the pool is
/// draining).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull;

struct Shared {
    queue: Mutex<State>,
    work_ready: Condvar,
    all_exited: Condvar,
}

struct State {
    jobs: VecDeque<Job>,
    draining: bool,
    exited: usize,
}

/// The pool: `threads` workers over one bounded queue.
pub struct ThreadPool {
    shared: Arc<Shared>,
    capacity: usize,
    threads: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ThreadPool {
    /// Spawn `threads` workers sharing a queue bounded at `capacity`
    /// pending jobs.
    pub fn new(threads: usize, capacity: usize) -> ThreadPool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                jobs: VecDeque::new(),
                draining: false,
                exited: 0,
            }),
            work_ready: Condvar::new(),
            all_exited: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sit-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        ThreadPool {
            shared,
            capacity: capacity.max(1),
            threads,
            workers: Mutex::new(workers),
        }
    }

    /// Enqueue a job, or reject immediately when at capacity or draining.
    pub fn submit(&self, job: Job) -> Result<(), QueueFull> {
        {
            let mut state = lock_recover(&self.shared.queue);
            if state.draining || state.jobs.len() >= self.capacity {
                return Err(QueueFull);
            }
            state.jobs.push_back(job);
        }
        self.shared.work_ready.notify_one();
        Ok(())
    }

    /// Jobs currently waiting (diagnostics).
    pub fn queued(&self) -> usize {
        lock_recover(&self.shared.queue).jobs.len()
    }

    /// The bounded queue depth this pool rejects beyond.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Drain and stop: queued jobs still run, new submissions are
    /// rejected, and the call returns once every worker has exited.
    /// Idempotent.
    pub fn shutdown(&self) {
        let mut state = lock_recover(&self.shared.queue);
        state.draining = true;
        self.shared.work_ready.notify_all();
        while state.exited < self.threads {
            state = self
                .shared
                .all_exited
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(state);
        for w in lock_recover(&self.workers).drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = lock_recover(&shared.queue);
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.draining {
                    break None;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match job {
            // A panicking job must not kill the worker: the job ran
            // outside the queue lock, so the panic would not even
            // poison anything — the worker would just silently die,
            // never increment `exited`, and wedge `shutdown`.
            Some(job) => {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            None => break,
        }
    }
    let mut state = lock_recover(&shared.queue);
    state.exited += 1;
    shared.all_exited.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_jobs_on_many_workers() {
        let pool = ThreadPool::new(4, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let c = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn rejects_when_queue_full() {
        let pool = ThreadPool::new(1, 2);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Arc::new(Mutex::new(gate_rx));
        // One job occupies the worker; fill the queue behind it.
        let rx = Arc::clone(&gate_rx);
        pool.submit(Box::new(move || {
            rx.lock().unwrap().recv().ok();
        }))
        .unwrap();
        // Wait until the worker has picked the blocker up.
        while pool.queued() > 0 {
            std::thread::yield_now();
        }
        pool.submit(Box::new(|| {})).unwrap();
        pool.submit(Box::new(|| {})).unwrap();
        assert_eq!(pool.submit(Box::new(|| {})), Err(QueueFull));
        gate_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs_and_is_idempotent() {
        let pool = ThreadPool::new(2, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let c = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                c.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 16, "queued jobs drained");
        pool.shutdown(); // second drain is a no-op
    }

    #[test]
    fn draining_pool_rejects_new_jobs() {
        let pool = ThreadPool::new(1, 4);
        pool.shutdown();
        assert_eq!(pool.submit(Box::new(|| {})), Err(QueueFull));
    }

    #[test]
    fn panicking_job_does_not_kill_its_worker() {
        let pool = ThreadPool::new(1, 8);
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(|| panic!("job panic must stay contained")))
            .unwrap();
        // The single worker survived the panic and runs the next job.
        pool.submit(Box::new(move || {
            tx.send(42).unwrap();
        }))
        .unwrap();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(5)),
            Ok(42),
            "worker still alive after a panicking job"
        );
        // And shutdown does not wedge waiting for a dead worker.
        pool.shutdown();
    }
}
