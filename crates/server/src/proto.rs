//! The request/response protocol: one JSON object per line.
//!
//! Every request is `{"op": "<verb>", ...}`; every response starts with
//! `"ok"` — `{"ok":true, ...}` on success, `{"ok":false,"error":
//! {"code":..., "message":...}}` on failure. The verb set covers the
//! whole [`sit_core::Session`] façade (phases 1–4) plus service
//! housekeeping (`ping`, `stats`, `shutdown`).
//!
//! | op | arguments | success payload |
//! |----|-----------|-----------------|
//! | `ping` | — | `pong` |
//! | `open` | — | `session` |
//! | `close` | `session` | `closed` |
//! | `load` | `script` | `session`, `schemas` |
//! | `save` | `session` | `script` |
//! | `add_schema` | `session`, `ddl` | `schemas` |
//! | `list_schemas` | `session` | `schemas` (objects/relationship counts) |
//! | `render` | `session`, `schema` | `text` |
//! | `equiv` | `session`, `a`, `b` (`schema.Owner.attr`) | `classes` |
//! | `unequiv` | `session`, `a` | `removed` |
//! | `candidates` | `session`, `a`, `b` (schema names) | `pairs` |
//! | `rel_candidates` | `session`, `a`, `b` | `pairs` |
//! | `assert` | `session`, `a`, `b` (`schema.Object`), `assertion` | `derived` |
//! | `rel_assert` | `session`, `a`, `b`, `assertion` | `derived` |
//! | `retract` | `session`, `a`, `b` | `retracted` |
//! | `rel_retract` | `session`, `a`, `b` | `retracted` |
//! | `matrix` | `session`, `a`, `b` | `rows`, `cols`, `cells` |
//! | `integrate` | `session`, `a`, `b`, `pull_up?`, `mappings?` | `schema`, `objects`, `relationships`, `mappings?` |
//! | `stats` | — | `uptime_ms`, `sessions`, `evicted`, `verbs` |
//! | `metrics_text` | — | `text` (Prometheus exposition) |
//! | `trace_dump` | `limit?` | `events`, `dropped`, `trace` (Chrome JSON) |
//! | `persist_stats` | — | `enabled`, journal/snapshot/recovery counters |
//! | `shutdown` | — | `draining` |
//!
//! Assertion keywords are the session-script spellings
//! ([`sit_core::script::keyword`]): `equals`, `contained-in`, `contains`,
//! `disjoint-integrable`, `may-be-integrable`, `disjoint-non-integrable`.
//!
//! Any request may additionally carry a `trace_id` string. It is not
//! part of the decoded [`Request`] (unknown keys are ignored); the
//! service reads it off the frame and attaches it to the request's
//! trace span, so a client can find its own requests in a
//! `trace_dump`.

use std::fmt;

use sit_core::assertion::Assertion;
use sit_core::error::CoreError;
use sit_core::script;

use crate::wire::Json;

/// Every protocol verb, in fixture order.
pub const VERBS: [&str; 23] = [
    "ping",
    "open",
    "close",
    "load",
    "save",
    "add_schema",
    "list_schemas",
    "render",
    "equiv",
    "unequiv",
    "candidates",
    "rel_candidates",
    "assert",
    "rel_assert",
    "retract",
    "rel_retract",
    "matrix",
    "integrate",
    "stats",
    "metrics_text",
    "trace_dump",
    "persist_stats",
    "shutdown",
];

/// One decoded request — the wire image of the [`sit_core::Session`]
/// façade.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Create a fresh session; responds with its id.
    Open,
    /// Drop a session.
    Close {
        /// Session id.
        session: String,
    },
    /// Create a session preloaded from a session script
    /// ([`sit_core::script`]).
    Load {
        /// Script text (DDL blocks + directives).
        script: String,
    },
    /// Serialize a session back to a script.
    Save {
        /// Session id.
        session: String,
    },
    /// Phase 1: register a component schema from DDL text.
    AddSchema {
        /// Session id.
        session: String,
        /// One or more `schema name { ... }` blocks.
        ddl: String,
    },
    /// List registered schemas with their sizes.
    ListSchemas {
        /// Session id.
        session: String,
    },
    /// Render one registered schema as text.
    Render {
        /// Session id.
        session: String,
        /// Schema name.
        schema: String,
    },
    /// Phase 2: declare two attributes equivalent
    /// (`schema.Owner.attr` paths).
    Equiv {
        /// Session id.
        session: String,
        /// First attribute path.
        a: String,
        /// Second attribute path.
        b: String,
    },
    /// Phase 2: remove an attribute from its equivalence class
    /// (Screen 7 delete).
    Unequiv {
        /// Session id.
        session: String,
        /// Attribute path.
        a: String,
    },
    /// Ranked object-pair candidates between two schemas (by name).
    Candidates {
        /// Session id.
        session: String,
        /// First schema name.
        a: String,
        /// Second schema name.
        b: String,
    },
    /// Ranked relationship-pair candidates.
    RelCandidates {
        /// Session id.
        session: String,
        /// First schema name.
        a: String,
        /// Second schema name.
        b: String,
    },
    /// Phase 3: assert one of the five relationships between object
    /// classes (`schema.Object` paths); the response carries the derived
    /// facts, a conflict comes back as a `conflict` error.
    Assert {
        /// Session id.
        session: String,
        /// First object path.
        a: String,
        /// Second object path.
        b: String,
        /// The asserted relationship.
        assertion: Assertion,
    },
    /// Phase 3: assert between relationship sets.
    RelAssert {
        /// Session id.
        session: String,
        /// First relationship path.
        a: String,
        /// Second relationship path.
        b: String,
        /// The asserted relationship.
        assertion: Assertion,
    },
    /// Retract the latest user assertion for an object pair.
    Retract {
        /// Session id.
        session: String,
        /// First object path.
        a: String,
        /// Second object path.
        b: String,
    },
    /// Retract the latest user assertion for a relationship pair.
    RelRetract {
        /// Session id.
        session: String,
        /// First relationship path.
        a: String,
        /// Second relationship path.
        b: String,
    },
    /// The Entity Assertion matrix between two schemas.
    Matrix {
        /// Session id.
        session: String,
        /// First schema name.
        a: String,
        /// Second schema name.
        b: String,
    },
    /// Phase 4: integrate two schemas; optionally pull up common
    /// attributes and return the request mappings.
    Integrate {
        /// Session id.
        session: String,
        /// First schema name.
        a: String,
        /// Second schema name.
        b: String,
        /// Generalization option: pull common attributes up.
        pull_up: bool,
        /// Also return the mapping description.
        mappings: bool,
    },
    /// Service metrics.
    Stats,
    /// Service metrics as Prometheus text exposition.
    MetricsText,
    /// The service's retained trace ring as Chrome `trace_event` JSON.
    TraceDump {
        /// Keep only the newest `limit` events (default 512, so the
        /// response frame stays well under the wire limits).
        limit: Option<u64>,
    },
    /// Persistence counters (journal, snapshots, recovery); reports
    /// `enabled:false` when the server runs without `--data-dir`.
    PersistStats,
    /// Graceful shutdown: drain in-flight requests, then stop.
    Shutdown,
}

impl Request {
    /// The verb string of this request.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Open => "open",
            Request::Close { .. } => "close",
            Request::Load { .. } => "load",
            Request::Save { .. } => "save",
            Request::AddSchema { .. } => "add_schema",
            Request::ListSchemas { .. } => "list_schemas",
            Request::Render { .. } => "render",
            Request::Equiv { .. } => "equiv",
            Request::Unequiv { .. } => "unequiv",
            Request::Candidates { .. } => "candidates",
            Request::RelCandidates { .. } => "rel_candidates",
            Request::Assert { .. } => "assert",
            Request::RelAssert { .. } => "rel_assert",
            Request::Retract { .. } => "retract",
            Request::RelRetract { .. } => "rel_retract",
            Request::Matrix { .. } => "matrix",
            Request::Integrate { .. } => "integrate",
            Request::Stats => "stats",
            Request::MetricsText => "metrics_text",
            Request::TraceDump { .. } => "trace_dump",
            Request::PersistStats => "persist_stats",
            Request::Shutdown => "shutdown",
        }
    }

    /// The session id this request addresses, if any.
    pub fn session_id(&self) -> Option<&str> {
        match self {
            Request::Close { session }
            | Request::Save { session }
            | Request::AddSchema { session, .. }
            | Request::ListSchemas { session }
            | Request::Render { session, .. }
            | Request::Equiv { session, .. }
            | Request::Unequiv { session, .. }
            | Request::Candidates { session, .. }
            | Request::RelCandidates { session, .. }
            | Request::Assert { session, .. }
            | Request::RelAssert { session, .. }
            | Request::Retract { session, .. }
            | Request::RelRetract { session, .. }
            | Request::Matrix { session, .. }
            | Request::Integrate { session, .. } => Some(session),
            _ => None,
        }
    }

    /// Whether this verb changes the addressed session's state — the
    /// set the write-ahead journal records. `integrate` is read-only
    /// (it derives an integrated schema without touching the session);
    /// lifecycle verbs (`open`/`load`/`close`) manage journal *files*
    /// rather than appending records.
    pub fn is_mutating(&self) -> bool {
        matches!(
            self,
            Request::AddSchema { .. }
                | Request::Equiv { .. }
                | Request::Unequiv { .. }
                | Request::Assert { .. }
                | Request::RelAssert { .. }
                | Request::Retract { .. }
                | Request::RelRetract { .. }
        )
    }

    /// Whether replaying this request after an ambiguous failure is
    /// safe. True only for verbs whose server-side effect is at most a
    /// session LRU refresh (reads, `ping`, `stats`, `save` — writing
    /// the same bytes twice is harmless). Mutations (`open`, `assert`,
    /// `integrate`, ...) and lifecycle verbs (`close`, `shutdown`)
    /// could double-apply if the response was lost, so the client must
    /// never retry them automatically.
    pub fn is_idempotent(&self) -> bool {
        matches!(
            self,
            Request::Ping
                | Request::Stats
                | Request::MetricsText
                | Request::TraceDump { .. }
                | Request::PersistStats
                | Request::Save { .. }
                | Request::ListSchemas { .. }
                | Request::Render { .. }
                | Request::Candidates { .. }
                | Request::RelCandidates { .. }
                | Request::Matrix { .. }
        )
    }

    /// Decode a request from its parsed JSON frame.
    pub fn from_json(v: &Json) -> Result<Request, ServerError> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ServerError::bad_request("missing `op`"))?;
        let s = |key: &str| -> Result<String, ServerError> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| ServerError::bad_request(format!("missing string `{key}`")))
        };
        let flag = |key: &str| v.get(key).and_then(Json::as_bool).unwrap_or(false);
        let assertion = || -> Result<Assertion, ServerError> {
            let kw = s("assertion")?;
            script::parse_keyword(&kw)
                .ok_or_else(|| ServerError::bad_request(format!("unknown assertion `{kw}`")))
        };
        Ok(match op {
            "ping" => Request::Ping,
            "open" => Request::Open,
            "close" => Request::Close { session: s("session")? },
            "load" => Request::Load { script: s("script")? },
            "save" => Request::Save { session: s("session")? },
            "add_schema" => Request::AddSchema {
                session: s("session")?,
                ddl: s("ddl")?,
            },
            "list_schemas" => Request::ListSchemas { session: s("session")? },
            "render" => Request::Render {
                session: s("session")?,
                schema: s("schema")?,
            },
            "equiv" => Request::Equiv {
                session: s("session")?,
                a: s("a")?,
                b: s("b")?,
            },
            "unequiv" => Request::Unequiv {
                session: s("session")?,
                a: s("a")?,
            },
            "candidates" => Request::Candidates {
                session: s("session")?,
                a: s("a")?,
                b: s("b")?,
            },
            "rel_candidates" => Request::RelCandidates {
                session: s("session")?,
                a: s("a")?,
                b: s("b")?,
            },
            "assert" => Request::Assert {
                session: s("session")?,
                a: s("a")?,
                b: s("b")?,
                assertion: assertion()?,
            },
            "rel_assert" => Request::RelAssert {
                session: s("session")?,
                a: s("a")?,
                b: s("b")?,
                assertion: assertion()?,
            },
            "retract" => Request::Retract {
                session: s("session")?,
                a: s("a")?,
                b: s("b")?,
            },
            "rel_retract" => Request::RelRetract {
                session: s("session")?,
                a: s("a")?,
                b: s("b")?,
            },
            "matrix" => Request::Matrix {
                session: s("session")?,
                a: s("a")?,
                b: s("b")?,
            },
            "integrate" => Request::Integrate {
                session: s("session")?,
                a: s("a")?,
                b: s("b")?,
                pull_up: flag("pull_up"),
                mappings: flag("mappings"),
            },
            "stats" => Request::Stats,
            "metrics_text" => Request::MetricsText,
            "trace_dump" => Request::TraceDump {
                limit: v.get("limit").and_then(Json::as_num).map(|n| n as u64),
            },
            "persist_stats" => Request::PersistStats,
            "shutdown" => Request::Shutdown,
            other => {
                return Err(ServerError::bad_request(format!("unknown op `{other}`")));
            }
        })
    }

    /// Encode to the wire frame the server parses (used by the client).
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = vec![("op", Json::str(self.op()))];
        let mut push = |k: &'static str, v: &str| pairs.push((k, Json::str(v)));
        match self {
            Request::Ping
            | Request::Open
            | Request::Stats
            | Request::MetricsText
            | Request::PersistStats
            | Request::Shutdown => {}
            Request::TraceDump { limit } => {
                if let Some(limit) = limit {
                    pairs.push(("limit", Json::num(*limit)));
                }
            }
            Request::Close { session }
            | Request::Save { session }
            | Request::ListSchemas { session } => push("session", session),
            Request::Load { script } => push("script", script),
            Request::AddSchema { session, ddl } => {
                push("session", session);
                push("ddl", ddl);
            }
            Request::Render { session, schema } => {
                push("session", session);
                push("schema", schema);
            }
            Request::Equiv { session, a, b }
            | Request::Candidates { session, a, b }
            | Request::RelCandidates { session, a, b }
            | Request::Retract { session, a, b }
            | Request::RelRetract { session, a, b }
            | Request::Matrix { session, a, b } => {
                push("session", session);
                push("a", a);
                push("b", b);
            }
            Request::Unequiv { session, a } => {
                push("session", session);
                push("a", a);
            }
            Request::Assert {
                session,
                a,
                b,
                assertion,
            }
            | Request::RelAssert {
                session,
                a,
                b,
                assertion,
            } => {
                push("session", session);
                push("a", a);
                push("b", b);
                push("assertion", script::keyword(*assertion));
            }
            Request::Integrate {
                session,
                a,
                b,
                pull_up,
                mappings,
            } => {
                push("session", session);
                push("a", a);
                push("b", b);
                pairs.push(("pull_up", Json::Bool(*pull_up)));
                pairs.push(("mappings", Json::Bool(*mappings)));
            }
        }
        Json::obj(pairs)
    }
}

/// Error codes a response can carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not valid JSON (or exceeded limits).
    Parse,
    /// The frame was JSON but not a valid request.
    BadRequest,
    /// The session id names no live session (never opened, closed, or
    /// evicted).
    UnknownSession,
    /// An assertion contradicted the derived closure; the message carries
    /// the conflict report.
    Conflict,
    /// Any other engine error ([`CoreError`]).
    Core,
    /// The worker queue is full — retry later.
    Overloaded,
    /// The server is draining; no new requests are accepted.
    ShuttingDown,
    /// The durability layer failed: the mutation was not journaled and
    /// was not applied.
    Persist,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::Conflict => "conflict",
            ErrorCode::Core => "core",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Persist => "persist",
        }
    }
}

/// A typed failure; encodes as `{"ok":false,"error":{...}}`.
#[derive(Clone, Debug, PartialEq)]
pub struct ServerError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ServerError {
    /// A `bad_request` error.
    pub fn bad_request(msg: impl Into<String>) -> ServerError {
        ServerError {
            code: ErrorCode::BadRequest,
            message: msg.into(),
        }
    }

    /// An `unknown_session` error.
    pub fn unknown_session(id: &str) -> ServerError {
        ServerError {
            code: ErrorCode::UnknownSession,
            message: format!("no session `{id}` (closed, evicted, or never opened)"),
        }
    }

    /// The `overloaded` backpressure error.
    pub fn overloaded() -> ServerError {
        ServerError {
            code: ErrorCode::Overloaded,
            message: "worker queue full; retry later".into(),
        }
    }

    /// The drain-mode rejection.
    pub fn shutting_down() -> ServerError {
        ServerError {
            code: ErrorCode::ShuttingDown,
            message: "server is draining".into(),
        }
    }

    /// Encode as a complete response frame.
    pub fn to_response(&self) -> Json {
        Json::obj(vec![
            ("ok", Json::Bool(false)),
            (
                "error",
                Json::obj(vec![
                    ("code", Json::str(self.code.as_str())),
                    ("message", Json::str(&self.message)),
                ]),
            ),
        ])
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ServerError {}

impl From<CoreError> for ServerError {
    fn from(e: CoreError) -> ServerError {
        let code = match &e {
            CoreError::Conflict(_) => ErrorCode::Conflict,
            _ => ErrorCode::Core,
        };
        ServerError {
            code,
            message: e.to_string(),
        }
    }
}

/// Build a success response: `ok:true` first, then the payload pairs.
pub fn ok_response(pairs: Vec<(&str, Json)>) -> Json {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(pairs);
    Json::obj(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let reqs = vec![
            Request::Ping,
            Request::Open,
            Request::Close { session: "1".into() },
            Request::Load { script: "# sit session v1\n".into() },
            Request::Save { session: "1".into() },
            Request::AddSchema {
                session: "1".into(),
                ddl: "schema s { entity E { x: int key; } }".into(),
            },
            Request::ListSchemas { session: "1".into() },
            Request::Render { session: "1".into(), schema: "s".into() },
            Request::Equiv {
                session: "1".into(),
                a: "s.E.x".into(),
                b: "t.F.y".into(),
            },
            Request::Unequiv { session: "1".into(), a: "s.E.x".into() },
            Request::Candidates { session: "1".into(), a: "s".into(), b: "t".into() },
            Request::RelCandidates { session: "1".into(), a: "s".into(), b: "t".into() },
            Request::Assert {
                session: "1".into(),
                a: "s.E".into(),
                b: "t.F".into(),
                assertion: Assertion::Equal,
            },
            Request::RelAssert {
                session: "1".into(),
                a: "s.R".into(),
                b: "t.S".into(),
                assertion: Assertion::ContainedIn,
            },
            Request::Retract { session: "1".into(), a: "s.E".into(), b: "t.F".into() },
            Request::RelRetract { session: "1".into(), a: "s.R".into(), b: "t.S".into() },
            Request::Matrix { session: "1".into(), a: "s".into(), b: "t".into() },
            Request::Integrate {
                session: "1".into(),
                a: "s".into(),
                b: "t".into(),
                pull_up: true,
                mappings: true,
            },
            Request::Stats,
            Request::MetricsText,
            Request::TraceDump { limit: Some(64) },
            Request::PersistStats,
            Request::Shutdown,
        ];
        assert_eq!(reqs.len(), VERBS.len(), "one request per verb");
        for req in reqs {
            let encoded = req.to_json().encode();
            let back = Request::from_json(&Json::parse(&encoded).unwrap()).unwrap();
            assert_eq!(back, req, "{encoded}");
        }
    }

    #[test]
    fn bad_requests_are_typed() {
        for frame in [
            r#"{"no_op":1}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"close"}"#,
            r#"{"op":"assert","session":"1","a":"x.A","b":"y.B","assertion":"sorta"}"#,
        ] {
            let v = Json::parse(frame).unwrap();
            let err = Request::from_json(&v).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{frame}");
        }
    }

    #[test]
    fn error_response_shape() {
        let e = ServerError::unknown_session("9");
        let r = e.to_response();
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        let code = r.get("error").and_then(|e| e.get("code")).and_then(Json::as_str);
        assert_eq!(code, Some("unknown_session"));
    }
}
