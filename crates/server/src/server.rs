//! The serving layer: newline-delimited JSON over TCP and stdio.
//!
//! ## TCP ([`Server`])
//!
//! One acceptor thread owns the listener. Each connection gets a cheap
//! blocking reader thread; *execution* happens on the shared bounded
//! [`ThreadPool`] — a connection submits the frame plus a reply channel
//! and waits, so responses stay in request order per connection while
//! different connections run in parallel. When the pool queue is full
//! the submit is rejected without blocking and the connection is
//! answered with the typed `overloaded` error immediately.
//!
//! Graceful shutdown (wire verb `shutdown`, or
//! [`Service::begin_shutdown`] from a ctrl channel) drains: the acceptor
//! stops, queued and in-flight requests complete and their responses are
//! written, then client sockets are read-shutdown to unblock readers and
//! every thread is joined.
//!
//! ## stdio ([`serve_stdio`])
//!
//! The same protocol, one request per line on stdin, one response per
//! line on stdout — single-threaded, for pipes and tests.

use std::io::{BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use sit_obs::clock::MonotonicClock;

use crate::persist::PersistConfig;
use crate::pool::ThreadPool;
use crate::proto::{ErrorCode, ServerError};
use crate::service::Service;
use crate::storage::{DirStorage, Storage};
use crate::store::StoreConfig;
use crate::transport::{Interrupter, TcpTransport, Transport};
use crate::wire::{FrameBuffer, Framed};

/// Where and how the server persists sessions.
#[derive(Clone, Debug)]
pub struct PersistOptions {
    /// Directory holding journals and snapshots (created if missing).
    pub data_dir: PathBuf,
    /// Journal/snapshot policies.
    pub config: PersistConfig,
}

/// Serving limits.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub threads: usize,
    /// Bounded queue depth; submissions beyond it get `overloaded`.
    pub queue_cap: usize,
    /// Session-store limits.
    pub store: StoreConfig,
    /// Durable sessions (`--data-dir`); `None` keeps sessions
    /// in-memory only.
    pub persist: Option<PersistOptions>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            queue_cap: 128,
            store: StoreConfig::default(),
            persist: None,
        }
    }
}

/// Build the service a config describes: plain in-memory, or durable
/// with recovery already run over `--data-dir`.
pub fn build_service(config: &ServerConfig) -> std::io::Result<Service> {
    match &config.persist {
        None => Ok(Service::new(config.store)),
        Some(opts) => Service::with_persistence(
            config.store,
            Arc::new(MonotonicClock::new()),
            Arc::new(DirStorage::open(&opts.data_dir)?) as Arc<dyn Storage>,
            opts.config,
        ),
    }
}

/// A bound (not yet running) TCP server.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    config: ServerConfig,
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral port) and prepare the
    /// service. The returned server is not accepting yet — call
    /// [`Server::run`] or [`Server::spawn`].
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let service = Arc::new(build_service(&config)?);
        // The shutdown hook unblocks the acceptor with a throwaway
        // connection to our own port.
        let local = listener.local_addr()?;
        service.set_shutdown_hook(Box::new(move || {
            let _ = TcpStream::connect(local);
        }));
        Ok(Server {
            listener,
            service,
            config,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared service (for ctrl-channel shutdown and stats).
    pub fn service(&self) -> Arc<Service> {
        Arc::clone(&self.service)
    }

    /// Accept and serve until shutdown, then drain and return.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            service,
            config,
        } = self;
        let pool = Arc::new(ThreadPool::new(config.threads, config.queue_cap));
        let interrupters: Arc<Mutex<Vec<Interrupter>>> = Arc::new(Mutex::new(Vec::new()));
        let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();

        for stream in listener.incoming() {
            if service.is_draining() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let transport = TcpTransport::new(stream);
            interrupters
                .lock()
                .expect("interrupters lock")
                .push(transport.interrupter());
            let service = Arc::clone(&service);
            let pool = Arc::clone(&pool);
            let handle = std::thread::Builder::new()
                .name("sit-conn".into())
                .spawn(move || serve_connection(transport, &service, &pool))
                .expect("spawn connection thread");
            conn_threads.push(handle);
        }

        // Drain: finish queued + in-flight work (responses are written by
        // the connection threads as results arrive)...
        pool.shutdown();
        // ...then unblock any reader still waiting for a next request.
        for interrupter in interrupters.lock().expect("interrupters lock").iter() {
            interrupter.interrupt();
        }
        for handle in conn_threads {
            let _ = handle.join();
        }
        Ok(())
    }

    /// Run on a background thread; returns a handle with the address and
    /// service.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let service = self.service();
        let thread = std::thread::Builder::new()
            .name("sit-serve".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            service,
            thread,
        })
    }
}

/// A running background server.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    thread: JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// Address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (stats, ctrl-channel shutdown).
    pub fn service(&self) -> Arc<Service> {
        Arc::clone(&self.service)
    }

    /// Trigger a graceful shutdown and wait for the drain to finish.
    pub fn shutdown(self) -> std::io::Result<()> {
        self.service.begin_shutdown();
        self.thread.join().unwrap_or(Ok(()))
    }

    /// Wait for the server to stop on its own (e.g. a wire `shutdown`).
    pub fn join(self) -> std::io::Result<()> {
        self.thread.join().unwrap_or(Ok(()))
    }
}

/// Serve one connection over any [`Transport`] until the peer hangs up
/// (EOF), a write fails, or an unrecoverable frame arrives.
///
/// This is the loop both the TCP acceptor and the simulated/chaos
/// transports run: bytes are reassembled into newline-delimited frames by
/// a [`FrameBuffer`] (so torn and coalesced reads behave identically on
/// every transport), each frame executes on the shared bounded pool, and
/// the response is written back in request order. A frame that exceeds
/// [`crate::wire::MAX_LINE`] without a newline gets a typed `parse` error
/// and the connection is closed — there is no way to resynchronize a
/// stream mid-flood.
pub fn serve_connection<T: Transport>(
    mut transport: T,
    service: &Arc<Service>,
    pool: &Arc<ThreadPool>,
) {
    let tracer = service.tracer().clone();
    tracer.instant("accept");
    let mut frames = FrameBuffer::new();
    let mut chunk = [0u8; 4096];
    loop {
        while let Some(framed) = frames.next_frame() {
            let line = match framed {
                Framed::Line(line) => line,
                Framed::Overflow => {
                    let error = ServerError {
                        code: ErrorCode::Parse,
                        message: "frame exceeds maximum length without a newline".into(),
                    };
                    let _ = write_frame(&mut transport, &error.to_response().encode());
                    return;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            tracer.instant("frame");
            let (tx, rx) = mpsc::channel();
            let job_service = Arc::clone(service);
            let submitted = pool.submit(Box::new(move || {
                let _ = tx.send(job_service.handle_line(&line));
            }));
            let response = match submitted {
                Ok(()) => match rx.recv() {
                    Ok(handled) => handled.frame,
                    Err(_) => return, // worker vanished mid-drain
                },
                Err(_) if service.is_draining() => {
                    ServerError::shutting_down().to_response().encode()
                }
                Err(_) => ServerError::overloaded().to_response().encode(),
            };
            let written = {
                let _write = tracer.span("write");
                write_frame(&mut transport, &response)
            };
            if written.is_err() {
                return;
            }
        }
        match transport.read(&mut chunk) {
            Ok(0) | Err(_) => return, // disconnect (or drain unblocked us)
            Ok(n) => frames.push(&chunk[..n]),
        }
    }
}

/// Write one response frame (payload + newline) and flush it.
fn write_frame<T: Transport>(transport: &mut T, frame: &str) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(frame.len() + 1);
    out.extend_from_slice(frame.as_bytes());
    out.push(b'\n');
    transport.write_all(&out)?;
    transport.flush()
}

/// Serve the protocol over arbitrary reader/writer pairs (stdin/stdout in
/// `sit serve --stdio`). Returns after EOF or a `shutdown` request.
pub fn serve_stdio(
    service: &Service,
    reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let handled = service.handle_line(&line);
        writeln!(writer, "{}", handled.frame)?;
        writer.flush()?;
        if handled.shutdown {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Json;

    #[test]
    fn stdio_round_trip_and_shutdown() {
        let service = Service::new(StoreConfig::default());
        let input = b"{\"op\":\"ping\"}\n{\"op\":\"open\"}\n{\"op\":\"shutdown\"}\n{\"op\":\"ping\"}\n".to_vec();
        let mut out = Vec::new();
        serve_stdio(&service, &input[..], &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim().lines().collect();
        // The trailing ping after shutdown is never answered.
        assert_eq!(lines.len(), 3);
        for l in &lines {
            let v = Json::parse(l).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{l}");
        }
    }

    #[test]
    fn tcp_serves_and_drains_on_wire_shutdown() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.spawn().unwrap();

        let mut client = crate::client::Client::connect(addr).unwrap();
        let pong = client.call_raw("{\"op\":\"ping\"}").unwrap();
        assert!(pong.contains("\"pong\":true"), "{pong}");
        let opened = client.call_raw("{\"op\":\"open\"}").unwrap();
        assert!(opened.contains("\"session\""), "{opened}");
        let bye = client.call_raw("{\"op\":\"shutdown\"}").unwrap();
        assert!(bye.contains("\"draining\":true"), "{bye}");

        handle.join().unwrap();
    }

    #[test]
    fn tcp_ctrl_channel_shutdown_drains() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.spawn().unwrap();
        let mut client = crate::client::Client::connect(addr).unwrap();
        assert!(client.call_raw("{\"op\":\"ping\"}").unwrap().contains("pong"));
        handle.shutdown().unwrap();
    }
}
