//! Per-verb request metrics: counts, error counts, latency order
//! statistics.
//!
//! Latencies are recorded into a bounded ring per verb (newest sample
//! overwrites the oldest past [`SAMPLE_CAP`]); min/median/p95 use the
//! same nearest-rank definition as `sit_bench::harness`, so serving
//! numbers in `stats` responses and `BENCH_server.json` read on the same
//! scale as the offline benches.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Per-verb latency samples kept for percentile estimates.
pub const SAMPLE_CAP: usize = 16_384;

/// Aggregated view of one verb.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VerbSummary {
    /// Requests handled (including failures).
    pub count: u64,
    /// Requests answered with `ok:false`.
    pub errors: u64,
    /// Fastest recorded latency.
    pub min_ns: u64,
    /// Nearest-rank median latency.
    pub median_ns: u64,
    /// Nearest-rank 95th-percentile latency.
    pub p95_ns: u64,
}

#[derive(Default)]
struct VerbStats {
    count: u64,
    errors: u64,
    samples: Vec<u64>,
    next_slot: usize,
}

/// Concurrent metrics registry.
pub struct Metrics {
    started: Instant,
    verbs: Mutex<BTreeMap<&'static str, VerbStats>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh registry; uptime starts now.
    pub fn new() -> Metrics {
        Metrics {
            started: Instant::now(),
            verbs: Mutex::new(BTreeMap::new()),
        }
    }

    /// Record one handled request.
    pub fn record(&self, op: &'static str, latency_ns: u64, is_error: bool) {
        let mut verbs = self.verbs.lock().expect("metrics lock");
        let stats = verbs.entry(op).or_default();
        stats.count += 1;
        if is_error {
            stats.errors += 1;
        }
        if stats.samples.len() < SAMPLE_CAP {
            stats.samples.push(latency_ns);
        } else {
            stats.samples[stats.next_slot] = latency_ns;
            stats.next_slot = (stats.next_slot + 1) % SAMPLE_CAP;
        }
    }

    /// Milliseconds since the registry was created.
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Summaries per verb, sorted by verb name.
    pub fn summaries(&self) -> Vec<(&'static str, VerbSummary)> {
        let verbs = self.verbs.lock().expect("metrics lock");
        verbs
            .iter()
            .map(|(&op, s)| {
                let mut sorted = s.samples.clone();
                sorted.sort_unstable();
                let (min_ns, median_ns, p95_ns) = percentiles(&sorted);
                (
                    op,
                    VerbSummary {
                        count: s.count,
                        errors: s.errors,
                        min_ns,
                        median_ns,
                        p95_ns,
                    },
                )
            })
            .collect()
    }
}

/// (min, median, p95) of an already-sorted sample set, nearest-rank —
/// the `sit_bench::harness::Bench` definition.
pub fn percentiles(sorted_ns: &[u64]) -> (u64, u64, u64) {
    if sorted_ns.is_empty() {
        return (0, 0, 0);
    }
    let nearest_rank = |q_num: usize, q_den: usize| {
        let rank = (sorted_ns.len() * q_num).div_ceil(q_den);
        sorted_ns[rank.max(1) - 1]
    };
    (sorted_ns[0], nearest_rank(1, 2), nearest_rank(19, 20))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counts_and_order_statistics() {
        let m = Metrics::new();
        for i in 1..=100u64 {
            m.record("assert", i * 10, i % 10 == 0);
        }
        let all = m.summaries();
        assert_eq!(all.len(), 1);
        let (op, s) = &all[0];
        assert_eq!(*op, "assert");
        assert_eq!(s.count, 100);
        assert_eq!(s.errors, 10);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.median_ns, 500);
        assert_eq!(s.p95_ns, 950);
    }

    #[test]
    fn ring_overwrites_past_cap() {
        let m = Metrics::new();
        for _ in 0..(SAMPLE_CAP + 5) {
            m.record("ping", 1, false);
        }
        let verbs = m.verbs.lock().unwrap();
        assert_eq!(verbs["ping"].samples.len(), SAMPLE_CAP);
        assert_eq!(verbs["ping"].count, (SAMPLE_CAP + 5) as u64);
    }

    #[test]
    fn empty_percentiles_are_zero() {
        assert_eq!(percentiles(&[]), (0, 0, 0));
    }
}
