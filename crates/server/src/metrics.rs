//! Per-verb request metrics: lock-free counters and base-2 latency
//! histograms over an injected [`Clock`].
//!
//! Every verb's meters ([`VerbMeters`]) are preregistered at
//! construction in one sorted, immutable table, so [`Metrics::record`]
//! is a binary search plus a handful of relaxed atomic adds — no
//! registry mutex at all. (The previous design kept a 16K-sample
//! `Vec<u64>` ring per verb behind a `Mutex<BTreeMap>` and
//! `summaries()` cloned *and sorted* every ring while holding that
//! mutex, stalling all recording for the duration; see
//! `summaries_never_block_recording`.)
//!
//! Latency order statistics are nearest-rank estimates from
//! [`sit_obs::Histogram`]: `min_ns` is exact, `median_ns`/`p95_ns` are
//! the upper bound of the base-2 bucket holding the rank (≤ 2×
//! relative error). Uptime and latencies both read the injected
//! [`Clock`], so under a virtual clock the whole `stats` payload is a
//! deterministic function of the schedule.

use std::sync::Arc;

use sit_obs::clock::{Clock, MonotonicClock};
use sit_obs::metrics::{prom_counter, prom_histogram, prom_label_value, Counter, Histogram};

/// Non-verb meter slots: frames that failed JSON parsing, frames that
/// parsed but decoded to no valid request, and the unreachable-in-
/// practice fallback for an unregistered op label.
pub const EXTRA_OPS: [&str; 3] = ["_invalid", "_other", "_parse"];

/// Aggregated view of one verb.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VerbSummary {
    /// Requests handled (including failures).
    pub count: u64,
    /// Requests answered with `ok:false`.
    pub errors: u64,
    /// Fastest recorded latency (exact).
    pub min_ns: u64,
    /// Median latency estimate (bucket upper bound).
    pub median_ns: u64,
    /// 95th-percentile latency estimate (bucket upper bound).
    pub p95_ns: u64,
}

/// Live meters for one verb.
#[derive(Default)]
pub struct VerbMeters {
    /// Requests handled.
    pub count: Counter,
    /// Requests answered with `ok:false`.
    pub errors: Counter,
    /// Latency distribution in nanoseconds.
    pub latency: Histogram,
}

/// Concurrent metrics registry; recording never takes a lock.
pub struct Metrics {
    clock: Arc<dyn Clock>,
    started_ns: u64,
    /// Sorted by name; built once, never resized.
    verbs: Vec<(&'static str, VerbMeters)>,
    other_idx: usize,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh registry on wall-clock time; uptime starts now.
    pub fn new() -> Metrics {
        Metrics::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// Fresh registry reading time (latencies *and* uptime) from
    /// `clock`.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Metrics {
        let mut names: Vec<&'static str> = crate::proto::VERBS.to_vec();
        names.extend(EXTRA_OPS);
        names.sort_unstable();
        names.dedup();
        let verbs: Vec<(&'static str, VerbMeters)> =
            names.into_iter().map(|n| (n, VerbMeters::default())).collect();
        let other_idx = verbs
            .binary_search_by(|(n, _)| n.cmp(&"_other"))
            .expect("_other is preregistered");
        let started_ns = clock.now_ns();
        Metrics {
            clock,
            started_ns,
            verbs,
            other_idx,
        }
    }

    fn meters(&self, op: &str) -> &VerbMeters {
        match self.verbs.binary_search_by(|(n, _)| n.cmp(&op)) {
            Ok(i) => &self.verbs[i].1,
            Err(_) => &self.verbs[self.other_idx].1,
        }
    }

    /// Record one handled request. Lock-free.
    pub fn record(&self, op: &'static str, latency_ns: u64, is_error: bool) {
        let m = self.meters(op);
        m.count.inc();
        if is_error {
            m.errors.inc();
        }
        m.latency.record(latency_ns);
    }

    /// Milliseconds since the registry was created, per its clock.
    pub fn uptime_ms(&self) -> u64 {
        self.clock.now_ns().saturating_sub(self.started_ns) / 1_000_000
    }

    /// Summaries for every verb seen at least once, sorted by name.
    /// Reads no lock, so it can never stall recording.
    pub fn summaries(&self) -> Vec<(&'static str, VerbSummary)> {
        self.verbs
            .iter()
            .filter(|(_, m)| m.count.get() > 0)
            .map(|&(op, ref m)| {
                (
                    op,
                    VerbSummary {
                        count: m.count.get(),
                        errors: m.errors.get(),
                        min_ns: m.latency.min(),
                        median_ns: m.latency.quantile(1, 2),
                        p95_ns: m.latency.quantile(19, 20),
                    },
                )
            })
            .collect()
    }

    /// The per-verb section of the Prometheus text exposition:
    /// request/error counters and the latency histogram for every verb
    /// seen at least once.
    pub fn prometheus(&self) -> String {
        let seen: Vec<(&'static str, &VerbMeters)> = self
            .verbs
            .iter()
            .filter(|(_, m)| m.count.get() > 0)
            .map(|&(op, ref m)| (op, m))
            .collect();
        let mut out = String::new();
        out.push_str("# TYPE sit_requests_total counter\n");
        for (op, m) in &seen {
            prom_counter(
                &mut out,
                "sit_requests_total",
                &format!("verb=\"{}\"", prom_label_value(op)),
                m.count.get(),
            );
        }
        out.push_str("# TYPE sit_request_errors_total counter\n");
        for (op, m) in &seen {
            prom_counter(
                &mut out,
                "sit_request_errors_total",
                &format!("verb=\"{}\"", prom_label_value(op)),
                m.errors.get(),
            );
        }
        out.push_str("# TYPE sit_request_latency_ns histogram\n");
        for (op, m) in &seen {
            prom_histogram(
                &mut out,
                "sit_request_latency_ns",
                &format!("verb=\"{}\"", prom_label_value(op)),
                &m.latency,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sit_obs::clock::ManualClock;

    #[test]
    fn records_counts_and_order_statistics() {
        let m = Metrics::new();
        for i in 1..=100u64 {
            m.record("assert", i * 10, i % 10 == 0);
        }
        let all = m.summaries();
        assert_eq!(all.len(), 1);
        let (op, s) = &all[0];
        assert_eq!(*op, "assert");
        assert_eq!(s.count, 100);
        assert_eq!(s.errors, 10);
        assert_eq!(s.min_ns, 10);
        // Exact median 500 / p95 950; the histogram answers the
        // enclosing base-2 bucket's upper bound.
        assert_eq!(s.median_ns, 511);
        assert_eq!(s.p95_ns, 1023);
    }

    #[test]
    fn unregistered_ops_land_in_the_other_slot() {
        let m = Metrics::new();
        m.record("not_a_verb", 5, false);
        let all = m.summaries();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, "_other");
        assert_eq!(all[0].1.count, 1);
    }

    #[test]
    fn uptime_follows_the_injected_clock() {
        let clock = Arc::new(ManualClock::new());
        let m = Metrics::with_clock(clock.clone());
        assert_eq!(m.uptime_ms(), 0);
        clock.advance_ns(7_500_000);
        assert_eq!(m.uptime_ms(), 7);
    }

    /// The satellite regression: summaries must not block recording.
    /// Writers hammer `record` while a reader loops `summaries()`;
    /// with the old under-mutex clone-and-sort this took seconds and
    /// serialized everything — here the final counts are exact and the
    /// whole test is a few milliseconds of genuinely concurrent work.
    #[test]
    fn summaries_never_block_recording() {
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 50_000;
        let m = Arc::new(Metrics::new());
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    m.record("ping", i ^ (w as u64), i % 7 == 0);
                }
            }));
        }
        let reader = {
            let m = Arc::clone(&m);
            std::thread::spawn(move || {
                let mut snapshots = 0u64;
                for _ in 0..1_000 {
                    let s = m.summaries();
                    // Mid-flight snapshots are consistent enough to use:
                    // counts only grow and never exceed the writers' total.
                    if let Some((_, ping)) = s.iter().find(|(op, _)| *op == "ping") {
                        assert!(ping.count <= WRITERS as u64 * PER_WRITER);
                    }
                    snapshots += 1;
                }
                snapshots
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reader.join().unwrap(), 1_000);
        let all = m.summaries();
        let (_, ping) = all.iter().find(|(op, _)| *op == "ping").unwrap();
        assert_eq!(ping.count, WRITERS as u64 * PER_WRITER);
        assert_eq!(
            ping.errors,
            WRITERS as u64 * PER_WRITER.div_ceil(7)
        );
    }

    #[test]
    fn prometheus_section_covers_every_seen_verb() {
        let clock = Arc::new(ManualClock::new());
        let m = Metrics::with_clock(clock);
        m.record("ping", 0, false);
        m.record("ping", 0, false);
        m.record("_invalid", 0, true);
        let text = m.prometheus();
        let expected = "\
# TYPE sit_requests_total counter
sit_requests_total{verb=\"_invalid\"} 1
sit_requests_total{verb=\"ping\"} 2
# TYPE sit_request_errors_total counter
sit_request_errors_total{verb=\"_invalid\"} 1
sit_request_errors_total{verb=\"ping\"} 0
# TYPE sit_request_latency_ns histogram
sit_request_latency_ns_bucket{verb=\"_invalid\",le=\"0\"} 1
sit_request_latency_ns_bucket{verb=\"_invalid\",le=\"+Inf\"} 1
sit_request_latency_ns_sum{verb=\"_invalid\"} 0
sit_request_latency_ns_count{verb=\"_invalid\"} 1
sit_request_latency_ns_bucket{verb=\"ping\",le=\"0\"} 2
sit_request_latency_ns_bucket{verb=\"ping\",le=\"+Inf\"} 2
sit_request_latency_ns_sum{verb=\"ping\"} 0
sit_request_latency_ns_count{verb=\"ping\"} 2
";
        assert_eq!(text, expected);
    }
}
