//! The storage abstraction under the persistence layer.
//!
//! [`Storage`] is a tiny flat-namespace file API — append, fsync,
//! atomic replace, read, remove, list — which is everything the
//! journal/snapshot code in [`crate::persist`] needs. Two
//! implementations ship:
//!
//! * [`DirStorage`] — one real directory. Appends go through cached
//!   file handles, `sync` is `fsync` on the file *and* the directory
//!   (so newly created names survive power loss too), and
//!   `write_atomic` is the classic temp-file + `fsync` + `rename` +
//!   directory-`fsync` sequence.
//! * [`MemStorage`] — an in-memory directory for tests. Each file
//!   tracks a `synced` watermark: bytes past it were accepted but
//!   never fsynced, and [`MemStorage::lose_unsynced`] drops them —
//!   the power-loss model that distinguishes the fsync policies. A
//!   plain process crash (kill -9) loses nothing that was appended,
//!   which is exactly how the deterministic crash suite uses it.
//!
//! The seeded fault decorator over any `Storage` lives in
//! [`crate::fault::FaultedStorage`].

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use sit_obs::sync::lock_recover;

/// A flat namespace of byte files, with explicit durability points.
///
/// All methods take `&self`; implementations are internally
/// synchronized so the per-session persistence states can do I/O
/// concurrently.
pub trait Storage: Send + Sync {
    /// Append `data` to `name`, creating the file if missing. Appending
    /// an empty slice creates an empty file. Not durable until
    /// [`Storage::sync`].
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Make `name`'s current contents (and its directory entry)
    /// durable.
    fn sync(&self, name: &str) -> io::Result<()>;

    /// Atomically replace `name` with `data`: on success the new
    /// contents are durable and readers never observe a partial file.
    fn write_atomic(&self, name: &str, data: &[u8]) -> io::Result<()>;

    /// Read the whole file. `ErrorKind::NotFound` if it does not exist.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Remove the file; removing a missing file is not an error.
    fn remove(&self, name: &str) -> io::Result<()>;

    /// All file names, sorted.
    fn list(&self) -> io::Result<Vec<String>>;
}

fn check_name(name: &str) -> io::Result<()> {
    if name.is_empty()
        || name.contains('/')
        || name.contains('\\')
        || name.contains("..")
        || name.starts_with(TMP_PREFIX)
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid storage name `{name}`"),
        ));
    }
    Ok(())
}

const TMP_PREFIX: &str = ".tmp.";

/// [`Storage`] over one real directory.
pub struct DirStorage {
    root: PathBuf,
    /// Cached append handles; invalidated by `write_atomic`/`remove`
    /// (the rename swaps the inode out from under an open descriptor).
    handles: Mutex<HashMap<String, File>>,
}

impl DirStorage {
    /// Open (creating if needed) the directory at `root`.
    pub fn open(root: impl AsRef<Path>) -> io::Result<DirStorage> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(DirStorage {
            root,
            handles: Mutex::new(HashMap::new()),
        })
    }

    /// The directory this storage lives in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn sync_dir(&self) -> io::Result<()> {
        // fsync the directory so creates/renames/removes are durable.
        File::open(&self.root)?.sync_all()
    }
}

impl Storage for DirStorage {
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        check_name(name)?;
        let mut handles = lock_recover(&self.handles);
        if !handles.contains_key(name) {
            let file = OpenOptions::new()
                .append(true)
                .create(true)
                .open(self.root.join(name))?;
            handles.insert(name.to_owned(), file);
        }
        let file = handles.get_mut(name).expect("just inserted");
        file.write_all(data)
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        check_name(name)?;
        {
            let handles = lock_recover(&self.handles);
            match handles.get(name) {
                Some(file) => file.sync_all()?,
                None => File::open(self.root.join(name))?.sync_all()?,
            }
        }
        self.sync_dir()
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> io::Result<()> {
        check_name(name)?;
        let tmp = self.root.join(format!("{TMP_PREFIX}{name}"));
        let mut file = File::create(&tmp)?;
        file.write_all(data)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, self.root.join(name))?;
        // The rename replaced the inode; a cached append handle would
        // keep writing to the unlinked old file.
        lock_recover(&self.handles).remove(name);
        self.sync_dir()
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        check_name(name)?;
        let mut out = Vec::new();
        File::open(self.root.join(name))?.read_to_end(&mut out)?;
        Ok(out)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        check_name(name)?;
        lock_recover(&self.handles).remove(name);
        match std::fs::remove_file(self.root.join(name)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => return Err(e),
            _ => {}
        }
        self.sync_dir()
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let Ok(name) = entry.file_name().into_string() else {
                continue;
            };
            if name.starts_with(TMP_PREFIX) {
                continue;
            }
            names.push(name);
        }
        names.sort();
        Ok(names)
    }
}

struct MemFile {
    data: Vec<u8>,
    /// Bytes durable so far; appends grow `data` without moving this,
    /// `sync`/`write_atomic` advance it.
    synced: usize,
}

/// In-memory [`Storage`] with an explicit durability watermark per
/// file — the simulation substrate of the crash suite.
#[derive(Default)]
pub struct MemStorage {
    files: Mutex<HashMap<String, MemFile>>,
}

impl MemStorage {
    /// An empty in-memory directory.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// Model power loss: every file keeps only its fsynced prefix.
    /// (A plain process crash keeps everything — do not call this.)
    pub fn lose_unsynced(&self) {
        let mut files = lock_recover(&self.files);
        for file in files.values_mut() {
            file.data.truncate(file.synced);
        }
    }

    /// Total bytes currently held (diagnostics).
    pub fn total_bytes(&self) -> u64 {
        lock_recover(&self.files)
            .values()
            .map(|f| f.data.len() as u64)
            .sum()
    }
}

impl Storage for MemStorage {
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        check_name(name)?;
        let mut files = lock_recover(&self.files);
        let file = files.entry(name.to_owned()).or_insert(MemFile {
            data: Vec::new(),
            synced: 0,
        });
        file.data.extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        check_name(name)?;
        let mut files = lock_recover(&self.files);
        let file = files
            .get_mut(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_owned()))?;
        file.synced = file.data.len();
        Ok(())
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> io::Result<()> {
        check_name(name)?;
        let mut files = lock_recover(&self.files);
        files.insert(
            name.to_owned(),
            MemFile {
                data: data.to_vec(),
                synced: data.len(),
            },
        );
        Ok(())
    }

    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        check_name(name)?;
        lock_recover(&self.files)
            .get(name)
            .map(|f| f.data.clone())
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_owned()))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        check_name(name)?;
        lock_recover(&self.files).remove(name);
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut names: Vec<String> = lock_recover(&self.files).keys().cloned().collect();
        names.sort();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(storage: &dyn Storage) {
        storage.append("a.journal", b"one").unwrap();
        storage.append("a.journal", b"two").unwrap();
        storage.sync("a.journal").unwrap();
        assert_eq!(storage.read("a.journal").unwrap(), b"onetwo");
        storage.write_atomic("a.snap.1", b"snapshot").unwrap();
        assert_eq!(storage.read("a.snap.1").unwrap(), b"snapshot");
        // Atomic replace of a file that has a live append handle: later
        // appends must land in the *new* file.
        storage.write_atomic("a.journal", b"compacted|").unwrap();
        storage.append("a.journal", b"tail").unwrap();
        assert_eq!(storage.read("a.journal").unwrap(), b"compacted|tail");
        assert_eq!(
            storage.list().unwrap(),
            vec!["a.journal".to_owned(), "a.snap.1".to_owned()]
        );
        storage.remove("a.snap.1").unwrap();
        storage.remove("a.snap.1").unwrap(); // idempotent
        assert!(matches!(
            storage.read("a.snap.1").map(|_| ()).unwrap_err().kind(),
            io::ErrorKind::NotFound
        ));
        assert_eq!(storage.list().unwrap(), vec!["a.journal".to_owned()]);
    }

    #[test]
    fn mem_storage_basics() {
        exercise(&MemStorage::new());
    }

    #[test]
    fn dir_storage_basics() {
        let dir = std::env::temp_dir().join(format!("sit-storage-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise(&DirStorage::open(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_storage_power_loss_drops_unsynced_bytes_only() {
        let m = MemStorage::new();
        m.append("j", b"durable").unwrap();
        m.sync("j").unwrap();
        m.append("j", b"-volatile").unwrap();
        m.write_atomic("s", b"atomic-is-durable").unwrap();
        m.lose_unsynced();
        assert_eq!(m.read("j").unwrap(), b"durable");
        assert_eq!(m.read("s").unwrap(), b"atomic-is-durable");
    }

    #[test]
    fn names_are_validated() {
        let m = MemStorage::new();
        for bad in ["", "../x", "a/b", ".tmp.j"] {
            assert!(m.append(bad, b"x").is_err(), "{bad}");
        }
    }
}
