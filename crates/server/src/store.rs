//! The session store: many concurrent integration sessions, bounded.
//!
//! Sessions are keyed by a server-assigned numeric id. The store holds at
//! most [`StoreConfig::max_sessions`] entries; opening one more evicts the
//! least-recently-used session. Entries idle longer than
//! [`StoreConfig::ttl`] are expired lazily (on any store operation that
//! takes the registry lock).
//!
//! Locking is two-level so sessions do not serialize each other: the
//! registry mutex guards only id→entry bookkeeping (lookup, LRU stamps,
//! eviction), while each session lives behind its own `Arc<Mutex<_>>` —
//! two requests to *different* sessions run fully in parallel on the
//! worker pool, and an eviction never blocks on a long-running request
//! (the in-flight request keeps its `Arc` and completes against the
//! now-anonymous session).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sit_core::session::Session;

/// Store limits.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Maximum live sessions; opening beyond this evicts the LRU entry.
    pub max_sessions: usize,
    /// Idle time after which a session may be expired; `None` disables
    /// TTL eviction.
    pub ttl: Option<Duration>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            max_sessions: 64,
            ttl: Some(Duration::from_secs(600)),
        }
    }
}

/// Shared handle to one session.
pub type SharedSession = Arc<Mutex<Session>>;

struct Entry {
    session: SharedSession,
    last_used: Instant,
}

struct Registry {
    next_id: u64,
    entries: HashMap<u64, Entry>,
    evicted_lru: u64,
    evicted_ttl: u64,
}

/// Bounded, concurrently shared collection of sessions.
pub struct SessionStore {
    config: StoreConfig,
    registry: Mutex<Registry>,
}

impl SessionStore {
    /// Empty store with the given limits.
    pub fn new(config: StoreConfig) -> SessionStore {
        SessionStore {
            config,
            registry: Mutex::new(Registry {
                next_id: 1,
                entries: HashMap::new(),
                evicted_lru: 0,
                evicted_ttl: 0,
            }),
        }
    }

    /// Insert a session and return its assigned id.
    pub fn open(&self, session: Session) -> String {
        let mut reg = self.registry.lock().expect("store lock");
        self.expire(&mut reg);
        let id = reg.next_id;
        Self::insert(&mut reg, self.config, id, session);
        id.to_string()
    }

    /// Insert a session under a caller-chosen id (crash recovery pins
    /// recovered sessions back to their journaled ids). Future
    /// server-assigned ids stay above it.
    pub fn insert_with_id(&self, id: u64, session: Session) {
        let mut reg = self.registry.lock().expect("store lock");
        self.expire(&mut reg);
        Self::insert(&mut reg, self.config, id, session);
    }

    fn insert(reg: &mut Registry, config: StoreConfig, id: u64, session: Session) {
        while reg.entries.len() >= config.max_sessions.max(1) {
            // Evict the least-recently-used entry to make room.
            if let Some((&victim, _)) = reg
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
            {
                reg.entries.remove(&victim);
                reg.evicted_lru += 1;
            } else {
                break;
            }
        }
        reg.next_id = reg.next_id.max(id + 1);
        reg.entries.insert(
            id,
            Entry {
                session: Arc::new(Mutex::new(session)),
                last_used: Instant::now(),
            },
        );
    }

    /// Fetch a session handle by id, refreshing its LRU stamp. `None` if
    /// the id is unknown, closed, expired, or evicted.
    pub fn get(&self, id: &str) -> Option<SharedSession> {
        let key: u64 = id.parse().ok()?;
        let mut reg = self.registry.lock().expect("store lock");
        self.expire(&mut reg);
        let entry = reg.entries.get_mut(&key)?;
        entry.last_used = Instant::now();
        Some(Arc::clone(&entry.session))
    }

    /// Remove a session; `true` if it was live.
    pub fn close(&self, id: &str) -> bool {
        let Ok(key) = id.parse::<u64>() else {
            return false;
        };
        let mut reg = self.registry.lock().expect("store lock");
        self.expire(&mut reg);
        reg.entries.remove(&key).is_some()
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        let mut reg = self.registry.lock().expect("store lock");
        self.expire(&mut reg);
        reg.entries.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (LRU, TTL) eviction counts so far.
    pub fn evictions(&self) -> (u64, u64) {
        let reg = self.registry.lock().expect("store lock");
        (reg.evicted_lru, reg.evicted_ttl)
    }

    fn expire(&self, reg: &mut Registry) {
        let Some(ttl) = self.config.ttl else { return };
        let now = Instant::now();
        let before = reg.entries.len();
        reg.entries
            .retain(|_, e| now.duration_since(e.last_used) < ttl);
        reg.evicted_ttl += (before - reg.entries.len()) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(max: usize, ttl: Option<Duration>) -> SessionStore {
        SessionStore::new(StoreConfig {
            max_sessions: max,
            ttl,
        })
    }

    #[test]
    fn open_get_close_round_trip() {
        let s = store(4, None);
        let id = s.open(Session::new());
        assert_eq!(id, "1");
        assert!(s.get(&id).is_some());
        assert!(s.close(&id));
        assert!(s.get(&id).is_none());
        assert!(!s.close(&id));
        assert!(s.get("not-a-number").is_none());
    }

    #[test]
    fn lru_eviction_at_cap() {
        let s = store(2, None);
        let a = s.open(Session::new());
        let b = s.open(Session::new());
        // Touch `a` so `b` becomes the LRU victim.
        std::thread::sleep(Duration::from_millis(2));
        assert!(s.get(&a).is_some());
        let c = s.open(Session::new());
        assert_eq!(s.len(), 2);
        assert!(s.get(&a).is_some(), "recently used survives");
        assert!(s.get(&b).is_none(), "LRU evicted");
        assert!(s.get(&c).is_some());
        assert_eq!(s.evictions().0, 1);
    }

    #[test]
    fn ttl_expiry_is_lazy_but_effective() {
        let s = store(8, Some(Duration::from_millis(5)));
        let id = s.open(Session::new());
        assert!(s.get(&id).is_some());
        std::thread::sleep(Duration::from_millis(10));
        assert!(s.get(&id).is_none(), "expired after idle ttl");
        assert_eq!(s.evictions().1, 1);
    }

    #[test]
    fn insert_with_id_pins_recovered_ids_and_bumps_the_counter() {
        let s = store(4, None);
        s.insert_with_id(7, Session::new());
        assert!(s.get("7").is_some());
        let next = s.open(Session::new());
        assert_eq!(next, "8", "fresh ids never collide with recovered ones");
    }

    #[test]
    fn in_flight_handle_survives_eviction() {
        let s = store(1, None);
        let a = s.open(Session::new());
        let handle = s.get(&a).unwrap();
        let _b = s.open(Session::new()); // evicts `a`
        assert!(s.get(&a).is_none());
        // The held Arc still works; the request in flight completes.
        handle.lock().unwrap().catalog();
    }
}
