//! Request dispatch: one [`Service`] turns request frames into response
//! frames against a shared [`SessionStore`].
//!
//! The service is transport-agnostic — the TCP server, the stdio server,
//! and the in-process tests all call [`Service::handle_line`]. It never
//! panics on malformed input: bad JSON, bad requests, unknown sessions,
//! engine conflicts, and drain-mode rejections all come back as typed
//! error frames.
//!
//! Every request runs under a `request` span on the service's
//! [`Tracer`] with `parse`/`dispatch`/`encode` children (and, through
//! the scoped current tracer, whatever engine spans the dispatched
//! verb emits — `ocs.*`, `closure.assert`, `integrate`, ...). A
//! client-supplied `trace_id` on the frame is attached to the request
//! span. All timing — spans, latency metrics, `stats` uptime — reads
//! one injected [`Clock`], so a service built over a virtual clock
//! ([`Service::with_clock`]) produces byte-deterministic timing fields
//! under deterministic schedules; this is what lets the chaos suite
//! keep `stats` in byte-traced workloads.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use sit_core::integrate::IntegrationOptions;
use sit_core::script;
use sit_core::session::Session;
use sit_ecr::render;
use sit_obs::clock::{Clock, MonotonicClock};
use sit_obs::metrics::prom_counter;
use sit_obs::sync::lock_recover;
use sit_obs::trace::{self, Tracer};

use crate::metrics::Metrics;
use crate::persist::{PersistConfig, Persistence};
use crate::proto::{ok_response, Request, ServerError};
use crate::storage::Storage;
use crate::store::{SessionStore, StoreConfig};
use crate::wire::Json;

/// Finished trace events the service retains (oldest overwritten).
pub const TRACE_CAPACITY: usize = 8_192;

/// Newest events a `trace_dump` response carries when the request
/// names no `limit` — sized so the frame stays far below the 1 MiB
/// wire ceiling.
pub const TRACE_DUMP_DEFAULT_LIMIT: usize = 512;

/// A handled frame: the response line plus whether the request asked the
/// server to shut down.
pub struct Handled {
    /// The encoded response (no trailing newline).
    pub frame: String,
    /// `true` exactly for a successful `shutdown` request.
    pub shutdown: bool,
}

/// Shared per-server state behind every worker.
pub struct Service {
    store: SessionStore,
    metrics: Metrics,
    tracer: Tracer,
    clock: Arc<dyn Clock>,
    persist: Option<Arc<Persistence>>,
    draining: AtomicBool,
    shutdown_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl Service {
    /// Service over a fresh store, timed by wall-clock time.
    pub fn new(store_config: StoreConfig) -> Service {
        Service::with_clock(store_config, Arc::new(MonotonicClock::new()))
    }

    /// Service whose spans, latencies, and uptime all read `clock` —
    /// inject [`crate::fault::VirtualClock`] for deterministic timing
    /// fields under chaos schedules.
    pub fn with_clock(store_config: StoreConfig, clock: Arc<dyn Clock>) -> Service {
        Service {
            store: SessionStore::new(store_config),
            metrics: Metrics::with_clock(Arc::clone(&clock)),
            tracer: Tracer::new(Arc::clone(&clock), TRACE_CAPACITY),
            clock,
            persist: None,
            draining: AtomicBool::new(false),
            shutdown_hook: Mutex::new(None),
        }
    }

    /// Durable service: recover every session found in `storage`, pin
    /// them back to their journaled ids, and journal all future
    /// mutations per `persist_config`. Errors only on storage failures
    /// recovery cannot work around (corrupt *records* never error —
    /// they are truncated or skipped and counted in the metrics).
    pub fn with_persistence(
        store_config: StoreConfig,
        clock: Arc<dyn Clock>,
        storage: Arc<dyn Storage>,
        persist_config: PersistConfig,
    ) -> io::Result<Service> {
        let mut service = Service::with_clock(store_config, Arc::clone(&clock));
        let persistence = Persistence::new(storage, persist_config, clock);
        let report = {
            // Recovery spans land on this service's tracer.
            let _current = trace::set_current(&service.tracer);
            persistence.recover()?
        };
        for (id, session) in report.sessions {
            service.store.insert_with_id(id, session);
        }
        service.persist = Some(Arc::new(persistence));
        Ok(service)
    }

    /// The persistence engine, when the service runs durable.
    pub fn persistence(&self) -> Option<&Arc<Persistence>> {
        self.persist.as_ref()
    }

    /// The service's trace collector.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The clock every timing field reads.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Register a callback fired once when a `shutdown` request is
    /// accepted (the TCP server uses it to unblock its accept loop).
    pub fn set_shutdown_hook(&self, hook: Box<dyn Fn() + Send + Sync>) {
        *self.shutdown_hook.lock().expect("hook lock") = Some(hook);
    }

    /// Has a shutdown been requested?
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Trigger drain mode directly (ctrl-channel shutdown, as opposed to
    /// the wire verb).
    pub fn begin_shutdown(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            if let Some(hook) = self.shutdown_hook.lock().expect("hook lock").as_ref() {
                hook();
            }
        }
    }

    /// The session store (tests/diagnostics).
    pub fn store(&self) -> &SessionStore {
        &self.store
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Handle one request line; always produces exactly one response
    /// frame.
    pub fn handle_line(&self, line: &str) -> Handled {
        // Install this service's tracer for the scope, so engine code
        // reached from dispatch attaches its spans here. The request
        // span drops (and records) after its children — including the
        // encode span opened inside `finish`.
        let _current = trace::set_current(&self.tracer);
        let mut req_span = self.tracer.span("request");
        let started_ns = self.clock.now_ns();
        let trimmed = line.trim();
        let parsed = {
            let _parse = self.tracer.span("parse");
            Json::parse(trimmed)
        };
        let value = match parsed {
            Err(e) => {
                let err = ServerError {
                    code: crate::proto::ErrorCode::Parse,
                    message: e.to_string(),
                };
                req_span.set_arg("op", "_parse");
                return self.finish("_parse", started_ns, Err(err), false);
            }
            Ok(v) => v,
        };
        if let Some(trace_id) = value.get("trace_id").and_then(Json::as_str) {
            req_span.set_arg("trace_id", trace_id);
        }
        let request = match Request::from_json(&value) {
            Err(e) => {
                req_span.set_arg("op", "_invalid");
                return self.finish("_invalid", started_ns, Err(e), false);
            }
            Ok(r) => r,
        };
        let op = request.op();
        req_span.set_arg("op", op);
        if self.is_draining()
            && !matches!(
                request,
                Request::Stats
                    | Request::Ping
                    | Request::MetricsText
                    | Request::TraceDump { .. }
                    | Request::PersistStats
            )
        {
            return self.finish(op, started_ns, Err(ServerError::shutting_down()), false);
        }
        let shutdown = matches!(request, Request::Shutdown);
        let result = {
            let _dispatch = self.tracer.span("dispatch");
            self.dispatch(request, trimmed)
        };
        let shutdown = shutdown && result.is_ok();
        if shutdown {
            self.begin_shutdown();
        }
        self.finish(op, started_ns, result, shutdown)
    }

    fn finish(
        &self,
        op: &'static str,
        started_ns: u64,
        result: Result<Json, ServerError>,
        shutdown: bool,
    ) -> Handled {
        let latency = self.clock.now_ns().saturating_sub(started_ns);
        self.metrics.record(op, latency, result.is_err());
        let _encode = self.tracer.span("encode");
        let frame = match result {
            Ok(v) => v.encode(),
            Err(e) => e.to_response().encode(),
        };
        Handled { frame, shutdown }
    }

    fn dispatch(&self, request: Request, raw: &str) -> Result<Json, ServerError> {
        // Session-addressed verbs (everything carrying a `session`
        // except `close`, whose effect is on the store itself) share
        // one path: resolve, journal if mutating, apply.
        if request.session_id().is_some() && !matches!(request, Request::Close { .. }) {
            return self.dispatch_session(&request, raw);
        }
        match request {
            Request::Ping => Ok(ok_response(vec![("pong", Json::Bool(true))])),
            Request::Open => {
                let id = self.store.open(Session::new());
                if let Some(p) = &self.persist {
                    let key: u64 = id.parse().expect("store ids are numeric");
                    if let Err(e) = p.create_session(key) {
                        // Nothing durable exists: the open must fail
                        // rather than hand out a session that would
                        // vanish on restart.
                        self.store.close(&id);
                        return Err(e);
                    }
                }
                Ok(ok_response(vec![("session", Json::str(id))]))
            }
            Request::Close { session } => {
                if let Some(p) = &self.persist {
                    if let Ok(key) = session.parse::<u64>() {
                        // Files first: an acknowledged close means the
                        // session does not resurrect on restart. This
                        // also clears files of already-evicted ids.
                        p.remove_session(key)?;
                    }
                }
                let closed = self.store.close(&session);
                Ok(ok_response(vec![("closed", Json::Bool(closed))]))
            }
            Request::Load { script } => {
                let session = script::load(&script)?;
                let schemas: Vec<Json> = session
                    .catalog()
                    .schemas()
                    .map(|(_, sch)| Json::str(sch.name()))
                    .collect();
                let id = self.store.open(session);
                if let Some(p) = &self.persist {
                    let key: u64 = id.parse().expect("store ids are numeric");
                    // The canonical `load` frame is the session's first
                    // journal record; replay re-runs `script::load`.
                    let frame = Request::Load {
                        script: script.clone(),
                    }
                    .to_json()
                    .encode();
                    let journaled = p
                        .create_session(key)
                        .and_then(|()| p.append(key, frame.as_bytes()));
                    if let Err(e) = journaled {
                        self.store.close(&id);
                        return Err(e);
                    }
                }
                Ok(ok_response(vec![
                    ("session", Json::str(id)),
                    ("schemas", Json::Arr(schemas)),
                ]))
            }
            Request::Stats => {
                let (lru, ttl) = self.store.evictions();
                let verbs: Vec<(String, Json)> = self
                    .metrics
                    .summaries()
                    .into_iter()
                    .map(|(op, s)| {
                        (
                            op.to_owned(),
                            Json::obj(vec![
                                ("count", Json::num(s.count)),
                                ("errors", Json::num(s.errors)),
                                ("min_ns", Json::num(s.min_ns)),
                                ("median_ns", Json::num(s.median_ns)),
                                ("p95_ns", Json::num(s.p95_ns)),
                            ]),
                        )
                    })
                    .collect();
                Ok(ok_response(vec![
                    ("uptime_ms", Json::num(self.metrics.uptime_ms())),
                    ("sessions", Json::num(self.store.len() as u64)),
                    ("evicted_lru", Json::num(lru)),
                    ("evicted_ttl", Json::num(ttl)),
                    ("verbs", Json::Obj(verbs)),
                ]))
            }
            Request::MetricsText => {
                Ok(ok_response(vec![("text", Json::str(self.metrics_text()))]))
            }
            Request::TraceDump { limit } => {
                let limit = limit
                    .map(|n| usize::try_from(n).unwrap_or(usize::MAX))
                    .unwrap_or(TRACE_DUMP_DEFAULT_LIMIT)
                    .min(TRACE_CAPACITY);
                let mut events = self.tracer.snapshot();
                let truncated = events.len().saturating_sub(limit);
                if truncated > 0 {
                    events.drain(..truncated);
                }
                Ok(ok_response(vec![
                    ("events", Json::num(events.len() as u64)),
                    (
                        "dropped",
                        Json::num(self.tracer.dropped() + truncated as u64),
                    ),
                    ("trace", Json::str(trace::chrome_json(&events))),
                ]))
            }
            Request::PersistStats => match &self.persist {
                None => Ok(ok_response(vec![("enabled", Json::Bool(false))])),
                Some(p) => {
                    let m = p.metrics();
                    Ok(ok_response(vec![
                        ("enabled", Json::Bool(true)),
                        ("fsync", Json::str(p.config().fsync.to_string())),
                        ("snapshot_every", Json::num(p.config().snapshot_every)),
                        ("journal_records", Json::num(m.journal_records.get())),
                        ("journal_bytes", Json::num(m.journal_bytes.get())),
                        ("fsyncs", Json::num(m.fsyncs.get())),
                        ("snapshots", Json::num(m.snapshots.get())),
                        ("compactions", Json::num(m.compactions.get())),
                        ("errors", Json::num(m.errors.get())),
                        ("recovered_sessions", Json::num(m.recovered_sessions.get())),
                        ("recovered_records", Json::num(m.recovered_records.get())),
                        ("replay_errors", Json::num(m.replay_errors.get())),
                    ]))
                }
            },
            Request::Shutdown => Ok(ok_response(vec![("draining", Json::Bool(true))])),
            // Session verbs were routed to `dispatch_session` above.
            other => Err(ServerError::bad_request(format!(
                "`{}` requires a session",
                other.op()
            ))),
        }
    }

    /// One session-addressed request: look up the session, journal the
    /// frame first if it mutates (write-ahead: an acknowledged mutation
    /// is durable *before* it is visible), then apply through
    /// [`apply_session_request`] — the same function recovery replays
    /// records through.
    fn dispatch_session(&self, request: &Request, raw: &str) -> Result<Json, ServerError> {
        let id = request.session_id().expect("caller checked session_id");
        let handle = self
            .store
            .get(id)
            .ok_or_else(|| ServerError::unknown_session(id))?;
        let mut session = lock_recover(&handle);
        let persist = self
            .persist
            .as_ref()
            .filter(|_| request.is_mutating())
            .map(|p| {
                let key: u64 = id.parse().expect("store ids are numeric");
                (p, key)
            });
        if let Some((p, key)) = &persist {
            // The journal stores the wire frame as received — replay
            // re-parses it through the same `Request::from_json` the
            // live path used, so no re-encoding happens per mutation.
            p.append(*key, raw.as_bytes())?;
        }
        let result = apply_session_request(&mut session, request);
        if let Some((p, key)) = &persist {
            // The record is durable whatever `result` was (a failed
            // verb replays to the same failure); snapshot cadence
            // counts attempts.
            p.maybe_snapshot(*key, &session);
        }
        result
    }

    /// The full Prometheus text exposition: service gauges first, then
    /// the per-verb counters and latency histograms from [`Metrics`].
    pub fn metrics_text(&self) -> String {
        let (lru, ttl) = self.store.evictions();
        let mut out = String::new();
        out.push_str("# TYPE sit_uptime_ms gauge\n");
        prom_counter(&mut out, "sit_uptime_ms", "", self.metrics.uptime_ms());
        out.push_str("# TYPE sit_sessions gauge\n");
        prom_counter(&mut out, "sit_sessions", "", self.store.len() as u64);
        out.push_str("# TYPE sit_sessions_evicted_total counter\n");
        prom_counter(&mut out, "sit_sessions_evicted_total", "kind=\"lru\"", lru);
        prom_counter(&mut out, "sit_sessions_evicted_total", "kind=\"ttl\"", ttl);
        out.push_str("# TYPE sit_trace_events gauge\n");
        prom_counter(&mut out, "sit_trace_events", "", self.tracer.len() as u64);
        out.push_str("# TYPE sit_trace_events_dropped_total counter\n");
        prom_counter(
            &mut out,
            "sit_trace_events_dropped_total",
            "",
            self.tracer.dropped(),
        );
        if let Some(p) = &self.persist {
            p.metrics().prometheus(&mut out);
        }
        out.push_str(&self.metrics.prometheus());
        out
    }

}

/// Apply one session-addressed verb to a session. Pure with respect to
/// the service: live dispatch and journal replay both come through
/// here, which is what makes replay deterministic.
pub(crate) fn apply_session_request(
    s: &mut Session,
    request: &Request,
) -> Result<Json, ServerError> {
    match request {
        Request::Save { .. } => Ok(ok_response(vec![("script", Json::str(script::save(s)))])),
        Request::AddSchema { ddl, .. } => {
            let schemas = sit_ecr::ddl::parse_many(ddl)
                .map_err(|e| ServerError::bad_request(format!("DDL error: {e}")))?;
            if schemas.is_empty() {
                return Err(ServerError::bad_request("no `schema` blocks in ddl"));
            }
            let mut names = Vec::new();
            for schema in schemas {
                let name = schema.name().to_owned();
                s.add_schema(schema)?;
                names.push(Json::Str(name));
            }
            Ok(ok_response(vec![("schemas", Json::Arr(names))]))
        }
        Request::ListSchemas { .. } => {
            let schemas: Vec<Json> = s
                .catalog()
                .schemas()
                .map(|(_, sch)| {
                    Json::obj(vec![
                        ("name", Json::str(sch.name())),
                        ("objects", Json::num(sch.object_count() as u64)),
                        ("relationships", Json::num(sch.relationship_count() as u64)),
                    ])
                })
                .collect();
            Ok(ok_response(vec![("schemas", Json::Arr(schemas))]))
        }
        Request::Render { schema, .. } => {
            let sid = schema_id(s, schema)?;
            let text = render::render(s.catalog().schema(sid));
            Ok(ok_response(vec![("text", Json::str(text))]))
        }
        Request::Equiv { a, b, .. } => {
            let (sa, oa, aa) = attr_path(a)?;
            let (sb, ob, ab) = attr_path(b)?;
            s.declare_equivalent_named(sa, oa, aa, sb, ob, ab)?;
            let classes = s.equivalences().classes().len();
            Ok(ok_response(vec![("classes", Json::num(classes as u64))]))
        }
        Request::Unequiv { a, .. } => {
            let (sa, oa, aa) = attr_path(a)?;
            let attr = s.catalog().attr_named(sa, oa, aa)?;
            let removed = s.remove_from_class(attr);
            Ok(ok_response(vec![("removed", Json::Bool(removed))]))
        }
        Request::Candidates { a, b, .. } => {
            let (sa, sb) = (schema_id(s, a)?, schema_id(s, b)?);
            let pairs: Vec<Json> = s
                .candidates(sa, sb)
                .into_iter()
                .map(|p| {
                    Json::obj(vec![
                        ("left", Json::str(s.catalog().obj_display(p.left))),
                        ("right", Json::str(s.catalog().obj_display(p.right))),
                        ("equivalent", Json::num(p.equivalent as u64)),
                        ("ratio", Json::Num(p.ratio)),
                    ])
                })
                .collect();
            Ok(ok_response(vec![("pairs", Json::Arr(pairs))]))
        }
        Request::RelCandidates { a, b, .. } => {
            let (sa, sb) = (schema_id(s, a)?, schema_id(s, b)?);
            let pairs: Vec<Json> = s
                .rel_candidates(sa, sb)
                .into_iter()
                .map(|p| {
                    Json::obj(vec![
                        ("left", Json::str(s.catalog().rel_display(p.left))),
                        ("right", Json::str(s.catalog().rel_display(p.right))),
                        ("equivalent", Json::num(p.equivalent as u64)),
                        ("ratio", Json::Num(p.ratio)),
                    ])
                })
                .collect();
            Ok(ok_response(vec![("pairs", Json::Arr(pairs))]))
        }
        Request::Assert { a, b, assertion, .. } => {
            let ga = object_path(s, a)?;
            let gb = object_path(s, b)?;
            let derived = s.assert_objects(ga, gb, *assertion)?;
            let derived: Vec<Json> = derived
                .iter()
                .map(|d| {
                    Json::obj(vec![
                        ("a", Json::str(s.catalog().obj_display(d.a))),
                        ("rel", Json::str(d.rel.to_string())),
                        ("b", Json::str(s.catalog().obj_display(d.b))),
                    ])
                })
                .collect();
            Ok(ok_response(vec![("derived", Json::Arr(derived))]))
        }
        Request::RelAssert { a, b, assertion, .. } => {
            let ga = rel_path(s, a)?;
            let gb = rel_path(s, b)?;
            let derived = s.assert_rels(ga, gb, *assertion)?;
            let derived: Vec<Json> = derived
                .iter()
                .map(|d| {
                    Json::obj(vec![
                        ("a", Json::str(s.catalog().rel_display(d.a))),
                        ("rel", Json::str(d.rel.to_string())),
                        ("b", Json::str(s.catalog().rel_display(d.b))),
                    ])
                })
                .collect();
            Ok(ok_response(vec![("derived", Json::Arr(derived))]))
        }
        Request::Retract { a, b, .. } => {
            let ga = object_path(s, a)?;
            let gb = object_path(s, b)?;
            let retracted = s.retract_objects(ga, gb);
            Ok(ok_response(vec![("retracted", Json::Bool(retracted))]))
        }
        Request::RelRetract { a, b, .. } => {
            let ga = rel_path(s, a)?;
            let gb = rel_path(s, b)?;
            let retracted = s.retract_rels(ga, gb);
            Ok(ok_response(vec![("retracted", Json::Bool(retracted))]))
        }
        Request::Matrix { a, b, .. } => {
            let (sa, sb) = (schema_id(s, a)?, schema_id(s, b)?);
            let rows: Vec<Json> = s
                .catalog()
                .objects_of(sa)
                .map(|o| Json::str(s.catalog().obj_display(o)))
                .collect();
            let cols: Vec<Json> = s
                .catalog()
                .objects_of(sb)
                .map(|o| Json::str(s.catalog().obj_display(o)))
                .collect();
            let cells: Vec<Json> = s
                .assertion_matrix(sa, sb)
                .into_iter()
                .map(|row| {
                    Json::Arr(
                        row.into_iter()
                            .map(|cell| match cell {
                                Some(a) => Json::str(script::keyword(a)),
                                None => Json::Null,
                            })
                            .collect(),
                    )
                })
                .collect();
            Ok(ok_response(vec![
                ("rows", Json::Arr(rows)),
                ("cols", Json::Arr(cols)),
                ("cells", Json::Arr(cells)),
            ]))
        }
        Request::Integrate {
            a,
            b,
            pull_up,
            mappings,
            ..
        } => {
            let (sa, sb) = (schema_id(s, a)?, schema_id(s, b)?);
            let options = IntegrationOptions {
                pull_up_common_attrs: *pull_up,
                ..Default::default()
            };
            let mut pairs: Vec<(&str, Json)> = Vec::new();
            if *mappings {
                let (integrated, maps) = s.integrate_with_mappings(sa, sb, &options)?;
                pairs.push(("schema", Json::str(render::render(&integrated.schema))));
                pairs.push(("objects", Json::num(integrated.schema.object_count() as u64)));
                pairs.push((
                    "relationships",
                    Json::num(integrated.schema.relationship_count() as u64),
                ));
                pairs.push(("mappings", Json::str(maps.describe())));
            } else {
                let integrated = s.integrate(sa, sb, &options)?;
                pairs.push(("schema", Json::str(render::render(&integrated.schema))));
                pairs.push(("objects", Json::num(integrated.schema.object_count() as u64)));
                pairs.push((
                    "relationships",
                    Json::num(integrated.schema.relationship_count() as u64),
                ));
            }
            Ok(ok_response(pairs))
        }
        other => Err(ServerError::bad_request(format!(
            "`{}` is not a session verb",
            other.op()
        ))),
    }
}

fn schema_id(s: &Session, name: &str) -> Result<sit_ecr::SchemaId, ServerError> {
    s.catalog()
        .by_name(name)
        .ok_or_else(|| ServerError::bad_request(format!("unknown schema `{name}`")))
}

fn attr_path(path: &str) -> Result<(&str, &str, &str), ServerError> {
    let mut it = path.split('.');
    match (it.next(), it.next(), it.next(), it.next()) {
        (Some(s), Some(o), Some(a), None) if !s.is_empty() && !o.is_empty() && !a.is_empty() => {
            Ok((s, o, a))
        }
        _ => Err(ServerError::bad_request(format!(
            "attribute paths are `schema.Owner.attr`: `{path}`"
        ))),
    }
}

fn object_path(s: &Session, path: &str) -> Result<sit_core::catalog::GObj, ServerError> {
    let (schema, object) = path
        .split_once('.')
        .ok_or_else(|| ServerError::bad_request(format!("object paths are `schema.Object`: `{path}`")))?;
    Ok(s.object_named(schema, object)?)
}

fn rel_path(s: &Session, path: &str) -> Result<sit_core::catalog::GRel, ServerError> {
    let (schema, rel) = path
        .split_once('.')
        .ok_or_else(|| ServerError::bad_request(format!("relationship paths are `schema.Rel`: `{path}`")))?;
    Ok(s.rel_named(schema, rel)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ErrorCode;

    fn call(service: &Service, line: &str) -> Json {
        Json::parse(&service.handle_line(line).frame).expect("response is valid json")
    }

    fn ok(v: &Json) -> bool {
        v.get("ok").and_then(Json::as_bool) == Some(true)
    }

    fn err_code(v: &Json) -> Option<String> {
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .map(str::to_owned)
    }

    const SC1: &str = r#"
    schema sc1 {
      entity Student { Name: char key; GPA: real; }
      entity Department { Dname: char key; }
      relationship Majors { Student (0,1); Department (0,n); }
    }
    "#;
    const SC2: &str = r#"
    schema sc2 {
      entity Grad_student { Name: char key; GPA: real; }
      entity Department { Dname: char key; }
      relationship Majors { Grad_student (0,1); Department (0,n); }
    }
    "#;

    #[test]
    fn full_session_over_frames() {
        let service = Service::new(StoreConfig::default());
        let opened = call(&service, r#"{"op":"open"}"#);
        assert!(ok(&opened));
        let sid = opened.get("session").and_then(Json::as_str).unwrap().to_owned();

        let add = |ddl: &str| {
            let frame = Request::AddSchema {
                session: sid.clone(),
                ddl: ddl.into(),
            }
            .to_json()
            .encode();
            call(&service, &frame)
        };
        assert!(ok(&add(SC1)), "{:?}", add(SC1));
        assert!(ok(&add(SC2)));

        let eq = Request::Equiv {
            session: sid.clone(),
            a: "sc1.Student.Name".into(),
            b: "sc2.Grad_student.Name".into(),
        };
        assert!(ok(&call(&service, &eq.to_json().encode())));

        let cands = call(
            &service,
            &Request::Candidates {
                session: sid.clone(),
                a: "sc1".into(),
                b: "sc2".into(),
            }
            .to_json()
            .encode(),
        );
        assert!(ok(&cands));
        let pairs = cands.get("pairs").and_then(Json::as_arr).unwrap();
        assert!(!pairs.is_empty());

        let assert_req = Request::Assert {
            session: sid.clone(),
            a: "sc1.Department".into(),
            b: "sc2.Department".into(),
            assertion: sit_core::assertion::Assertion::Equal,
        };
        assert!(ok(&call(&service, &assert_req.to_json().encode())));

        let contains = Request::Assert {
            session: sid.clone(),
            a: "sc1.Student".into(),
            b: "sc2.Grad_student".into(),
            assertion: sit_core::assertion::Assertion::Contains,
        };
        assert!(ok(&call(&service, &contains.to_json().encode())));

        let integ = call(
            &service,
            &Request::Integrate {
                session: sid.clone(),
                a: "sc1".into(),
                b: "sc2".into(),
                pull_up: false,
                mappings: true,
            }
            .to_json()
            .encode(),
        );
        assert!(ok(&integ), "{integ:?}");
        assert!(integ
            .get("schema")
            .and_then(Json::as_str)
            .unwrap()
            .contains("Department"));
        assert!(integ.get("mappings").is_some());

        let stats = call(&service, r#"{"op":"stats"}"#);
        assert!(ok(&stats));
        assert!(stats.get("verbs").and_then(|v| v.get("assert")).is_some());
    }

    #[test]
    fn errors_are_typed_not_panics() {
        let service = Service::new(StoreConfig::default());
        // Parse error.
        let r = call(&service, "{nope");
        assert_eq!(err_code(&r).as_deref(), Some("parse"));
        // Invalid request.
        let r = call(&service, r#"{"op":"warp"}"#);
        assert_eq!(err_code(&r).as_deref(), Some("bad_request"));
        // Unknown session.
        let r = call(&service, r#"{"op":"save","session":"99"}"#);
        assert_eq!(err_code(&r).as_deref(), Some("unknown_session"));
        // Bad DDL inside a live session.
        let opened = call(&service, r#"{"op":"open"}"#);
        let sid = opened.get("session").and_then(Json::as_str).unwrap();
        let r = call(
            &service,
            &format!(r#"{{"op":"add_schema","session":"{sid}","ddl":"schema x {{ nonsense"}}"#),
        );
        assert_eq!(err_code(&r).as_deref(), Some("bad_request"));
    }

    #[test]
    fn conflict_is_reported_with_its_code() {
        let service = Service::new(StoreConfig::default());
        let opened = call(&service, r#"{"op":"open"}"#);
        let sid = opened.get("session").and_then(Json::as_str).unwrap().to_owned();
        let load = |ddl: &str| {
            let frame = Request::AddSchema {
                session: sid.clone(),
                ddl: ddl.into(),
            }
            .to_json()
            .encode();
            call(&service, &frame)
        };
        assert!(ok(&load(SC1)));
        assert!(ok(&load(SC2)));
        let eq = |a: &str, b: &str, kw: &str| {
            call(
                &service,
                &format!(
                    r#"{{"op":"assert","session":"{sid}","a":"{a}","b":"{b}","assertion":"{kw}"}}"#
                ),
            )
        };
        assert!(ok(&eq("sc1.Student", "sc2.Grad_student", "contains")));
        let conflict = eq("sc1.Student", "sc2.Grad_student", "disjoint-non-integrable");
        assert_eq!(err_code(&conflict).as_deref(), Some("conflict"));
    }

    #[test]
    fn shutdown_verb_drains() {
        let service = Service::new(StoreConfig::default());
        let r = call(&service, r#"{"op":"shutdown"}"#);
        assert!(ok(&r));
        assert!(service.is_draining());
        // Further mutating requests are rejected...
        let r = call(&service, r#"{"op":"open"}"#);
        assert_eq!(err_code(&r).as_deref(), Some("shutting_down"));
        // ...but observability verbs still answer during the drain.
        assert!(ok(&call(&service, r#"{"op":"ping"}"#)));
        assert!(ok(&call(&service, r#"{"op":"stats"}"#)));
        assert!(ok(&call(&service, r#"{"op":"metrics_text"}"#)));
        assert!(ok(&call(&service, r#"{"op":"trace_dump"}"#)));
        assert!(ok(&call(&service, r#"{"op":"persist_stats"}"#)));
    }

    #[test]
    fn error_codes_enum_matches_wire() {
        assert_eq!(ErrorCode::Overloaded.as_str(), "overloaded");
    }

    fn durable_service(storage: &Arc<crate::storage::MemStorage>) -> Service {
        Service::with_persistence(
            StoreConfig::default(),
            Arc::new(MonotonicClock::new()),
            Arc::clone(storage) as Arc<dyn Storage>,
            PersistConfig::default(),
        )
        .expect("recovery over MemStorage cannot fail")
    }

    #[test]
    fn durable_sessions_survive_a_service_rebuild() {
        let storage = Arc::new(crate::storage::MemStorage::new());
        let first = durable_service(&storage);
        let opened = call(&first, r#"{"op":"open"}"#);
        let sid = opened.get("session").and_then(Json::as_str).unwrap().to_owned();
        for ddl in [SC1, SC2] {
            let add = Request::AddSchema {
                session: sid.clone(),
                ddl: ddl.into(),
            };
            assert!(ok(&call(&first, &add.to_json().encode())));
        }
        let eq = Request::Equiv {
            session: sid.clone(),
            a: "sc1.Student.Name".into(),
            b: "sc2.Grad_student.Name".into(),
        };
        assert!(ok(&call(&first, &eq.to_json().encode())));
        let save = Request::Save { session: sid.clone() }.to_json().encode();
        let before = call(&first, &save);
        drop(first);

        // Same storage, new process: the session comes back under the
        // same id with byte-identical script output.
        let second = durable_service(&storage);
        let after = call(&second, &save);
        assert_eq!(before, after);
        let stats = call(&second, r#"{"op":"persist_stats"}"#);
        assert_eq!(stats.get("enabled"), Some(&Json::Bool(true)));
        assert!(
            stats.get("recovered_records").and_then(Json::as_num).unwrap() >= 2.0,
            "{stats:?}"
        );
        let metrics = call(&second, r#"{"op":"metrics_text"}"#);
        let text = metrics.get("text").and_then(Json::as_str).unwrap();
        assert!(text.contains("sit_persist_journal_records_total"), "{text}");
        assert!(text.contains("sit_recover_sessions_total"), "{text}");
    }

    #[test]
    fn closed_sessions_do_not_resurrect() {
        let storage = Arc::new(crate::storage::MemStorage::new());
        let first = durable_service(&storage);
        let opened = call(&first, r#"{"op":"open"}"#);
        let sid = opened.get("session").and_then(Json::as_str).unwrap().to_owned();
        let closed = call(&first, &format!(r#"{{"op":"close","session":"{sid}"}}"#));
        assert!(ok(&closed));
        drop(first);
        let second = durable_service(&storage);
        assert!(second.store().is_empty(), "close removed the files");
    }
}
