//! Request dispatch: one [`Service`] turns request frames into response
//! frames against a shared [`SessionStore`].
//!
//! The service is transport-agnostic — the TCP server, the stdio server,
//! and the in-process tests all call [`Service::handle_line`]. It never
//! panics on malformed input: bad JSON, bad requests, unknown sessions,
//! engine conflicts, and drain-mode rejections all come back as typed
//! error frames.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use sit_core::integrate::IntegrationOptions;
use sit_core::script;
use sit_core::session::Session;
use sit_ecr::render;

use crate::metrics::Metrics;
use crate::proto::{ok_response, Request, ServerError};
use crate::store::{SessionStore, StoreConfig};
use crate::wire::Json;

/// A handled frame: the response line plus whether the request asked the
/// server to shut down.
pub struct Handled {
    /// The encoded response (no trailing newline).
    pub frame: String,
    /// `true` exactly for a successful `shutdown` request.
    pub shutdown: bool,
}

/// Shared per-server state behind every worker.
pub struct Service {
    store: SessionStore,
    metrics: Metrics,
    draining: AtomicBool,
    shutdown_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl Service {
    /// Service over a fresh store.
    pub fn new(store_config: StoreConfig) -> Service {
        Service {
            store: SessionStore::new(store_config),
            metrics: Metrics::new(),
            draining: AtomicBool::new(false),
            shutdown_hook: Mutex::new(None),
        }
    }

    /// Register a callback fired once when a `shutdown` request is
    /// accepted (the TCP server uses it to unblock its accept loop).
    pub fn set_shutdown_hook(&self, hook: Box<dyn Fn() + Send + Sync>) {
        *self.shutdown_hook.lock().expect("hook lock") = Some(hook);
    }

    /// Has a shutdown been requested?
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Trigger drain mode directly (ctrl-channel shutdown, as opposed to
    /// the wire verb).
    pub fn begin_shutdown(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            if let Some(hook) = self.shutdown_hook.lock().expect("hook lock").as_ref() {
                hook();
            }
        }
    }

    /// The session store (tests/diagnostics).
    pub fn store(&self) -> &SessionStore {
        &self.store
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Handle one request line; always produces exactly one response
    /// frame.
    pub fn handle_line(&self, line: &str) -> Handled {
        let started = Instant::now();
        let trimmed = line.trim();
        let parsed = Json::parse(trimmed);
        let value = match parsed {
            Err(e) => {
                let err = ServerError {
                    code: crate::proto::ErrorCode::Parse,
                    message: e.to_string(),
                };
                return self.finish("_parse", started, Err(err), false);
            }
            Ok(v) => v,
        };
        let request = match Request::from_json(&value) {
            Err(e) => return self.finish("_invalid", started, Err(e), false),
            Ok(r) => r,
        };
        let op = request.op();
        if self.is_draining() && !matches!(request, Request::Stats | Request::Ping) {
            return self.finish(op, started, Err(ServerError::shutting_down()), false);
        }
        let shutdown = matches!(request, Request::Shutdown);
        let result = self.dispatch(request);
        let shutdown = shutdown && result.is_ok();
        if shutdown {
            self.begin_shutdown();
        }
        self.finish(op, started, result, shutdown)
    }

    fn finish(
        &self,
        op: &'static str,
        started: Instant,
        result: Result<Json, ServerError>,
        shutdown: bool,
    ) -> Handled {
        let latency = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.metrics.record(op, latency, result.is_err());
        let frame = match result {
            Ok(v) => v.encode(),
            Err(e) => e.to_response().encode(),
        };
        Handled { frame, shutdown }
    }

    fn dispatch(&self, request: Request) -> Result<Json, ServerError> {
        match request {
            Request::Ping => Ok(ok_response(vec![("pong", Json::Bool(true))])),
            Request::Open => {
                let id = self.store.open(Session::new());
                Ok(ok_response(vec![("session", Json::str(id))]))
            }
            Request::Close { session } => {
                let closed = self.store.close(&session);
                Ok(ok_response(vec![("closed", Json::Bool(closed))]))
            }
            Request::Load { script } => {
                let session = script::load(&script)?;
                let schemas: Vec<Json> = session
                    .catalog()
                    .schemas()
                    .map(|(_, sch)| Json::str(sch.name()))
                    .collect();
                let id = self.store.open(session);
                Ok(ok_response(vec![
                    ("session", Json::str(id)),
                    ("schemas", Json::Arr(schemas)),
                ]))
            }
            Request::Save { session } => self.with_session(&session, |s| {
                Ok(ok_response(vec![("script", Json::str(script::save(s)))]))
            }),
            Request::AddSchema { session, ddl } => self.with_session(&session, |s| {
                let schemas = sit_ecr::ddl::parse_many(&ddl)
                    .map_err(|e| ServerError::bad_request(format!("DDL error: {e}")))?;
                if schemas.is_empty() {
                    return Err(ServerError::bad_request("no `schema` blocks in ddl"));
                }
                let mut names = Vec::new();
                for schema in schemas {
                    let name = schema.name().to_owned();
                    s.add_schema(schema)?;
                    names.push(Json::Str(name));
                }
                Ok(ok_response(vec![("schemas", Json::Arr(names))]))
            }),
            Request::ListSchemas { session } => self.with_session(&session, |s| {
                let schemas: Vec<Json> = s
                    .catalog()
                    .schemas()
                    .map(|(_, sch)| {
                        Json::obj(vec![
                            ("name", Json::str(sch.name())),
                            ("objects", Json::num(sch.object_count() as u64)),
                            ("relationships", Json::num(sch.relationship_count() as u64)),
                        ])
                    })
                    .collect();
                Ok(ok_response(vec![("schemas", Json::Arr(schemas))]))
            }),
            Request::Render { session, schema } => self.with_session(&session, |s| {
                let sid = schema_id(s, &schema)?;
                let text = render::render(s.catalog().schema(sid));
                Ok(ok_response(vec![("text", Json::str(text))]))
            }),
            Request::Equiv { session, a, b } => self.with_session(&session, |s| {
                let (sa, oa, aa) = attr_path(&a)?;
                let (sb, ob, ab) = attr_path(&b)?;
                s.declare_equivalent_named(sa, oa, aa, sb, ob, ab)?;
                let classes = s.equivalences().classes().len();
                Ok(ok_response(vec![("classes", Json::num(classes as u64))]))
            }),
            Request::Unequiv { session, a } => self.with_session(&session, |s| {
                let (sa, oa, aa) = attr_path(&a)?;
                let attr = s.catalog().attr_named(sa, oa, aa)?;
                let removed = s.remove_from_class(attr);
                Ok(ok_response(vec![("removed", Json::Bool(removed))]))
            }),
            Request::Candidates { session, a, b } => self.with_session(&session, |s| {
                let (sa, sb) = (schema_id(s, &a)?, schema_id(s, &b)?);
                let pairs: Vec<Json> = s
                    .candidates(sa, sb)
                    .into_iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("left", Json::str(s.catalog().obj_display(p.left))),
                            ("right", Json::str(s.catalog().obj_display(p.right))),
                            ("equivalent", Json::num(p.equivalent as u64)),
                            ("ratio", Json::Num(p.ratio)),
                        ])
                    })
                    .collect();
                Ok(ok_response(vec![("pairs", Json::Arr(pairs))]))
            }),
            Request::RelCandidates { session, a, b } => self.with_session(&session, |s| {
                let (sa, sb) = (schema_id(s, &a)?, schema_id(s, &b)?);
                let pairs: Vec<Json> = s
                    .rel_candidates(sa, sb)
                    .into_iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("left", Json::str(s.catalog().rel_display(p.left))),
                            ("right", Json::str(s.catalog().rel_display(p.right))),
                            ("equivalent", Json::num(p.equivalent as u64)),
                            ("ratio", Json::Num(p.ratio)),
                        ])
                    })
                    .collect();
                Ok(ok_response(vec![("pairs", Json::Arr(pairs))]))
            }),
            Request::Assert {
                session,
                a,
                b,
                assertion,
            } => self.with_session(&session, |s| {
                let ga = object_path(s, &a)?;
                let gb = object_path(s, &b)?;
                let derived = s.assert_objects(ga, gb, assertion)?;
                let derived: Vec<Json> = derived
                    .iter()
                    .map(|d| {
                        Json::obj(vec![
                            ("a", Json::str(s.catalog().obj_display(d.a))),
                            ("rel", Json::str(d.rel.to_string())),
                            ("b", Json::str(s.catalog().obj_display(d.b))),
                        ])
                    })
                    .collect();
                Ok(ok_response(vec![("derived", Json::Arr(derived))]))
            }),
            Request::RelAssert {
                session,
                a,
                b,
                assertion,
            } => self.with_session(&session, |s| {
                let ga = rel_path(s, &a)?;
                let gb = rel_path(s, &b)?;
                let derived = s.assert_rels(ga, gb, assertion)?;
                let derived: Vec<Json> = derived
                    .iter()
                    .map(|d| {
                        Json::obj(vec![
                            ("a", Json::str(s.catalog().rel_display(d.a))),
                            ("rel", Json::str(d.rel.to_string())),
                            ("b", Json::str(s.catalog().rel_display(d.b))),
                        ])
                    })
                    .collect();
                Ok(ok_response(vec![("derived", Json::Arr(derived))]))
            }),
            Request::Retract { session, a, b } => self.with_session(&session, |s| {
                let ga = object_path(s, &a)?;
                let gb = object_path(s, &b)?;
                let retracted = s.retract_objects(ga, gb);
                Ok(ok_response(vec![("retracted", Json::Bool(retracted))]))
            }),
            Request::RelRetract { session, a, b } => self.with_session(&session, |s| {
                let ga = rel_path(s, &a)?;
                let gb = rel_path(s, &b)?;
                let retracted = s.retract_rels(ga, gb);
                Ok(ok_response(vec![("retracted", Json::Bool(retracted))]))
            }),
            Request::Matrix { session, a, b } => self.with_session(&session, |s| {
                let (sa, sb) = (schema_id(s, &a)?, schema_id(s, &b)?);
                let rows: Vec<Json> = s
                    .catalog()
                    .objects_of(sa)
                    .map(|o| Json::str(s.catalog().obj_display(o)))
                    .collect();
                let cols: Vec<Json> = s
                    .catalog()
                    .objects_of(sb)
                    .map(|o| Json::str(s.catalog().obj_display(o)))
                    .collect();
                let cells: Vec<Json> = s
                    .assertion_matrix(sa, sb)
                    .into_iter()
                    .map(|row| {
                        Json::Arr(
                            row.into_iter()
                                .map(|cell| match cell {
                                    Some(a) => Json::str(script::keyword(a)),
                                    None => Json::Null,
                                })
                                .collect(),
                        )
                    })
                    .collect();
                Ok(ok_response(vec![
                    ("rows", Json::Arr(rows)),
                    ("cols", Json::Arr(cols)),
                    ("cells", Json::Arr(cells)),
                ]))
            }),
            Request::Integrate {
                session,
                a,
                b,
                pull_up,
                mappings,
            } => self.with_session(&session, |s| {
                let (sa, sb) = (schema_id(s, &a)?, schema_id(s, &b)?);
                let options = IntegrationOptions {
                    pull_up_common_attrs: pull_up,
                    ..Default::default()
                };
                let mut pairs: Vec<(&str, Json)> = Vec::new();
                if mappings {
                    let (integrated, maps) = s.integrate_with_mappings(sa, sb, &options)?;
                    pairs.push(("schema", Json::str(render::render(&integrated.schema))));
                    pairs.push(("objects", Json::num(integrated.schema.object_count() as u64)));
                    pairs.push((
                        "relationships",
                        Json::num(integrated.schema.relationship_count() as u64),
                    ));
                    pairs.push(("mappings", Json::str(maps.describe())));
                } else {
                    let integrated = s.integrate(sa, sb, &options)?;
                    pairs.push(("schema", Json::str(render::render(&integrated.schema))));
                    pairs.push(("objects", Json::num(integrated.schema.object_count() as u64)));
                    pairs.push((
                        "relationships",
                        Json::num(integrated.schema.relationship_count() as u64),
                    ));
                }
                Ok(ok_response(pairs))
            }),
            Request::Stats => {
                let (lru, ttl) = self.store.evictions();
                let verbs: Vec<(String, Json)> = self
                    .metrics
                    .summaries()
                    .into_iter()
                    .map(|(op, s)| {
                        (
                            op.to_owned(),
                            Json::obj(vec![
                                ("count", Json::num(s.count)),
                                ("errors", Json::num(s.errors)),
                                ("min_ns", Json::num(s.min_ns)),
                                ("median_ns", Json::num(s.median_ns)),
                                ("p95_ns", Json::num(s.p95_ns)),
                            ]),
                        )
                    })
                    .collect();
                Ok(ok_response(vec![
                    ("uptime_ms", Json::num(self.metrics.uptime_ms())),
                    ("sessions", Json::num(self.store.len() as u64)),
                    ("evicted_lru", Json::num(lru)),
                    ("evicted_ttl", Json::num(ttl)),
                    ("verbs", Json::Obj(verbs)),
                ]))
            }
            Request::Shutdown => Ok(ok_response(vec![("draining", Json::Bool(true))])),
        }
    }

    fn with_session<F>(&self, id: &str, f: F) -> Result<Json, ServerError>
    where
        F: FnOnce(&mut Session) -> Result<Json, ServerError>,
    {
        let handle = self
            .store
            .get(id)
            .ok_or_else(|| ServerError::unknown_session(id))?;
        let mut session = handle.lock().expect("session lock");
        f(&mut session)
    }
}

fn schema_id(s: &Session, name: &str) -> Result<sit_ecr::SchemaId, ServerError> {
    s.catalog()
        .by_name(name)
        .ok_or_else(|| ServerError::bad_request(format!("unknown schema `{name}`")))
}

fn attr_path(path: &str) -> Result<(&str, &str, &str), ServerError> {
    let mut it = path.split('.');
    match (it.next(), it.next(), it.next(), it.next()) {
        (Some(s), Some(o), Some(a), None) if !s.is_empty() && !o.is_empty() && !a.is_empty() => {
            Ok((s, o, a))
        }
        _ => Err(ServerError::bad_request(format!(
            "attribute paths are `schema.Owner.attr`: `{path}`"
        ))),
    }
}

fn object_path(s: &Session, path: &str) -> Result<sit_core::catalog::GObj, ServerError> {
    let (schema, object) = path
        .split_once('.')
        .ok_or_else(|| ServerError::bad_request(format!("object paths are `schema.Object`: `{path}`")))?;
    Ok(s.object_named(schema, object)?)
}

fn rel_path(s: &Session, path: &str) -> Result<sit_core::catalog::GRel, ServerError> {
    let (schema, rel) = path
        .split_once('.')
        .ok_or_else(|| ServerError::bad_request(format!("relationship paths are `schema.Rel`: `{path}`")))?;
    Ok(s.rel_named(schema, rel)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ErrorCode;

    fn call(service: &Service, line: &str) -> Json {
        Json::parse(&service.handle_line(line).frame).expect("response is valid json")
    }

    fn ok(v: &Json) -> bool {
        v.get("ok").and_then(Json::as_bool) == Some(true)
    }

    fn err_code(v: &Json) -> Option<String> {
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .map(str::to_owned)
    }

    const SC1: &str = r#"
    schema sc1 {
      entity Student { Name: char key; GPA: real; }
      entity Department { Dname: char key; }
      relationship Majors { Student (0,1); Department (0,n); }
    }
    "#;
    const SC2: &str = r#"
    schema sc2 {
      entity Grad_student { Name: char key; GPA: real; }
      entity Department { Dname: char key; }
      relationship Majors { Grad_student (0,1); Department (0,n); }
    }
    "#;

    #[test]
    fn full_session_over_frames() {
        let service = Service::new(StoreConfig::default());
        let opened = call(&service, r#"{"op":"open"}"#);
        assert!(ok(&opened));
        let sid = opened.get("session").and_then(Json::as_str).unwrap().to_owned();

        let add = |ddl: &str| {
            let frame = Request::AddSchema {
                session: sid.clone(),
                ddl: ddl.into(),
            }
            .to_json()
            .encode();
            call(&service, &frame)
        };
        assert!(ok(&add(SC1)), "{:?}", add(SC1));
        assert!(ok(&add(SC2)));

        let eq = Request::Equiv {
            session: sid.clone(),
            a: "sc1.Student.Name".into(),
            b: "sc2.Grad_student.Name".into(),
        };
        assert!(ok(&call(&service, &eq.to_json().encode())));

        let cands = call(
            &service,
            &Request::Candidates {
                session: sid.clone(),
                a: "sc1".into(),
                b: "sc2".into(),
            }
            .to_json()
            .encode(),
        );
        assert!(ok(&cands));
        let pairs = cands.get("pairs").and_then(Json::as_arr).unwrap();
        assert!(!pairs.is_empty());

        let assert_req = Request::Assert {
            session: sid.clone(),
            a: "sc1.Department".into(),
            b: "sc2.Department".into(),
            assertion: sit_core::assertion::Assertion::Equal,
        };
        assert!(ok(&call(&service, &assert_req.to_json().encode())));

        let contains = Request::Assert {
            session: sid.clone(),
            a: "sc1.Student".into(),
            b: "sc2.Grad_student".into(),
            assertion: sit_core::assertion::Assertion::Contains,
        };
        assert!(ok(&call(&service, &contains.to_json().encode())));

        let integ = call(
            &service,
            &Request::Integrate {
                session: sid.clone(),
                a: "sc1".into(),
                b: "sc2".into(),
                pull_up: false,
                mappings: true,
            }
            .to_json()
            .encode(),
        );
        assert!(ok(&integ), "{integ:?}");
        assert!(integ
            .get("schema")
            .and_then(Json::as_str)
            .unwrap()
            .contains("Department"));
        assert!(integ.get("mappings").is_some());

        let stats = call(&service, r#"{"op":"stats"}"#);
        assert!(ok(&stats));
        assert!(stats.get("verbs").and_then(|v| v.get("assert")).is_some());
    }

    #[test]
    fn errors_are_typed_not_panics() {
        let service = Service::new(StoreConfig::default());
        // Parse error.
        let r = call(&service, "{nope");
        assert_eq!(err_code(&r).as_deref(), Some("parse"));
        // Invalid request.
        let r = call(&service, r#"{"op":"warp"}"#);
        assert_eq!(err_code(&r).as_deref(), Some("bad_request"));
        // Unknown session.
        let r = call(&service, r#"{"op":"save","session":"99"}"#);
        assert_eq!(err_code(&r).as_deref(), Some("unknown_session"));
        // Bad DDL inside a live session.
        let opened = call(&service, r#"{"op":"open"}"#);
        let sid = opened.get("session").and_then(Json::as_str).unwrap();
        let r = call(
            &service,
            &format!(r#"{{"op":"add_schema","session":"{sid}","ddl":"schema x {{ nonsense"}}"#),
        );
        assert_eq!(err_code(&r).as_deref(), Some("bad_request"));
    }

    #[test]
    fn conflict_is_reported_with_its_code() {
        let service = Service::new(StoreConfig::default());
        let opened = call(&service, r#"{"op":"open"}"#);
        let sid = opened.get("session").and_then(Json::as_str).unwrap().to_owned();
        let load = |ddl: &str| {
            let frame = Request::AddSchema {
                session: sid.clone(),
                ddl: ddl.into(),
            }
            .to_json()
            .encode();
            call(&service, &frame)
        };
        assert!(ok(&load(SC1)));
        assert!(ok(&load(SC2)));
        let eq = |a: &str, b: &str, kw: &str| {
            call(
                &service,
                &format!(
                    r#"{{"op":"assert","session":"{sid}","a":"{a}","b":"{b}","assertion":"{kw}"}}"#
                ),
            )
        };
        assert!(ok(&eq("sc1.Student", "sc2.Grad_student", "contains")));
        let conflict = eq("sc1.Student", "sc2.Grad_student", "disjoint-non-integrable");
        assert_eq!(err_code(&conflict).as_deref(), Some("conflict"));
    }

    #[test]
    fn shutdown_verb_drains() {
        let service = Service::new(StoreConfig::default());
        let r = call(&service, r#"{"op":"shutdown"}"#);
        assert!(ok(&r));
        assert!(service.is_draining());
        // Further mutating requests are rejected...
        let r = call(&service, r#"{"op":"open"}"#);
        assert_eq!(err_code(&r).as_deref(), Some("shutting_down"));
        // ...but stats/ping still answer (drain observability).
        assert!(ok(&call(&service, r#"{"op":"ping"}"#)));
        assert!(ok(&call(&service, r#"{"op":"stats"}"#)));
    }

    #[test]
    fn error_codes_enum_matches_wire() {
        assert_eq!(ErrorCode::Overloaded.as_str(), "overloaded");
    }
}
