//! Request dispatch: one [`Service`] turns request frames into response
//! frames against a shared [`SessionStore`].
//!
//! The service is transport-agnostic — the TCP server, the stdio server,
//! and the in-process tests all call [`Service::handle_line`]. It never
//! panics on malformed input: bad JSON, bad requests, unknown sessions,
//! engine conflicts, and drain-mode rejections all come back as typed
//! error frames.
//!
//! Every request runs under a `request` span on the service's
//! [`Tracer`] with `parse`/`dispatch`/`encode` children (and, through
//! the scoped current tracer, whatever engine spans the dispatched
//! verb emits — `ocs.*`, `closure.assert`, `integrate`, ...). A
//! client-supplied `trace_id` on the frame is attached to the request
//! span. All timing — spans, latency metrics, `stats` uptime — reads
//! one injected [`Clock`], so a service built over a virtual clock
//! ([`Service::with_clock`]) produces byte-deterministic timing fields
//! under deterministic schedules; this is what lets the chaos suite
//! keep `stats` in byte-traced workloads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use sit_core::integrate::IntegrationOptions;
use sit_core::script;
use sit_core::session::Session;
use sit_ecr::render;
use sit_obs::clock::{Clock, MonotonicClock};
use sit_obs::metrics::prom_counter;
use sit_obs::trace::{self, Tracer};

use crate::metrics::Metrics;
use crate::proto::{ok_response, Request, ServerError};
use crate::store::{SessionStore, StoreConfig};
use crate::wire::Json;

/// Finished trace events the service retains (oldest overwritten).
pub const TRACE_CAPACITY: usize = 8_192;

/// Newest events a `trace_dump` response carries when the request
/// names no `limit` — sized so the frame stays far below the 1 MiB
/// wire ceiling.
pub const TRACE_DUMP_DEFAULT_LIMIT: usize = 512;

/// A handled frame: the response line plus whether the request asked the
/// server to shut down.
pub struct Handled {
    /// The encoded response (no trailing newline).
    pub frame: String,
    /// `true` exactly for a successful `shutdown` request.
    pub shutdown: bool,
}

/// Shared per-server state behind every worker.
pub struct Service {
    store: SessionStore,
    metrics: Metrics,
    tracer: Tracer,
    clock: Arc<dyn Clock>,
    draining: AtomicBool,
    shutdown_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl Service {
    /// Service over a fresh store, timed by wall-clock time.
    pub fn new(store_config: StoreConfig) -> Service {
        Service::with_clock(store_config, Arc::new(MonotonicClock::new()))
    }

    /// Service whose spans, latencies, and uptime all read `clock` —
    /// inject [`crate::fault::VirtualClock`] for deterministic timing
    /// fields under chaos schedules.
    pub fn with_clock(store_config: StoreConfig, clock: Arc<dyn Clock>) -> Service {
        Service {
            store: SessionStore::new(store_config),
            metrics: Metrics::with_clock(Arc::clone(&clock)),
            tracer: Tracer::new(Arc::clone(&clock), TRACE_CAPACITY),
            clock,
            draining: AtomicBool::new(false),
            shutdown_hook: Mutex::new(None),
        }
    }

    /// The service's trace collector.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The clock every timing field reads.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Register a callback fired once when a `shutdown` request is
    /// accepted (the TCP server uses it to unblock its accept loop).
    pub fn set_shutdown_hook(&self, hook: Box<dyn Fn() + Send + Sync>) {
        *self.shutdown_hook.lock().expect("hook lock") = Some(hook);
    }

    /// Has a shutdown been requested?
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Trigger drain mode directly (ctrl-channel shutdown, as opposed to
    /// the wire verb).
    pub fn begin_shutdown(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            if let Some(hook) = self.shutdown_hook.lock().expect("hook lock").as_ref() {
                hook();
            }
        }
    }

    /// The session store (tests/diagnostics).
    pub fn store(&self) -> &SessionStore {
        &self.store
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Handle one request line; always produces exactly one response
    /// frame.
    pub fn handle_line(&self, line: &str) -> Handled {
        // Install this service's tracer for the scope, so engine code
        // reached from dispatch attaches its spans here. The request
        // span drops (and records) after its children — including the
        // encode span opened inside `finish`.
        let _current = trace::set_current(&self.tracer);
        let mut req_span = self.tracer.span("request");
        let started_ns = self.clock.now_ns();
        let trimmed = line.trim();
        let parsed = {
            let _parse = self.tracer.span("parse");
            Json::parse(trimmed)
        };
        let value = match parsed {
            Err(e) => {
                let err = ServerError {
                    code: crate::proto::ErrorCode::Parse,
                    message: e.to_string(),
                };
                req_span.set_arg("op", "_parse");
                return self.finish("_parse", started_ns, Err(err), false);
            }
            Ok(v) => v,
        };
        if let Some(trace_id) = value.get("trace_id").and_then(Json::as_str) {
            req_span.set_arg("trace_id", trace_id);
        }
        let request = match Request::from_json(&value) {
            Err(e) => {
                req_span.set_arg("op", "_invalid");
                return self.finish("_invalid", started_ns, Err(e), false);
            }
            Ok(r) => r,
        };
        let op = request.op();
        req_span.set_arg("op", op);
        if self.is_draining()
            && !matches!(
                request,
                Request::Stats | Request::Ping | Request::MetricsText | Request::TraceDump { .. }
            )
        {
            return self.finish(op, started_ns, Err(ServerError::shutting_down()), false);
        }
        let shutdown = matches!(request, Request::Shutdown);
        let result = {
            let _dispatch = self.tracer.span("dispatch");
            self.dispatch(request)
        };
        let shutdown = shutdown && result.is_ok();
        if shutdown {
            self.begin_shutdown();
        }
        self.finish(op, started_ns, result, shutdown)
    }

    fn finish(
        &self,
        op: &'static str,
        started_ns: u64,
        result: Result<Json, ServerError>,
        shutdown: bool,
    ) -> Handled {
        let latency = self.clock.now_ns().saturating_sub(started_ns);
        self.metrics.record(op, latency, result.is_err());
        let _encode = self.tracer.span("encode");
        let frame = match result {
            Ok(v) => v.encode(),
            Err(e) => e.to_response().encode(),
        };
        Handled { frame, shutdown }
    }

    fn dispatch(&self, request: Request) -> Result<Json, ServerError> {
        match request {
            Request::Ping => Ok(ok_response(vec![("pong", Json::Bool(true))])),
            Request::Open => {
                let id = self.store.open(Session::new());
                Ok(ok_response(vec![("session", Json::str(id))]))
            }
            Request::Close { session } => {
                let closed = self.store.close(&session);
                Ok(ok_response(vec![("closed", Json::Bool(closed))]))
            }
            Request::Load { script } => {
                let session = script::load(&script)?;
                let schemas: Vec<Json> = session
                    .catalog()
                    .schemas()
                    .map(|(_, sch)| Json::str(sch.name()))
                    .collect();
                let id = self.store.open(session);
                Ok(ok_response(vec![
                    ("session", Json::str(id)),
                    ("schemas", Json::Arr(schemas)),
                ]))
            }
            Request::Save { session } => self.with_session(&session, |s| {
                Ok(ok_response(vec![("script", Json::str(script::save(s)))]))
            }),
            Request::AddSchema { session, ddl } => self.with_session(&session, |s| {
                let schemas = sit_ecr::ddl::parse_many(&ddl)
                    .map_err(|e| ServerError::bad_request(format!("DDL error: {e}")))?;
                if schemas.is_empty() {
                    return Err(ServerError::bad_request("no `schema` blocks in ddl"));
                }
                let mut names = Vec::new();
                for schema in schemas {
                    let name = schema.name().to_owned();
                    s.add_schema(schema)?;
                    names.push(Json::Str(name));
                }
                Ok(ok_response(vec![("schemas", Json::Arr(names))]))
            }),
            Request::ListSchemas { session } => self.with_session(&session, |s| {
                let schemas: Vec<Json> = s
                    .catalog()
                    .schemas()
                    .map(|(_, sch)| {
                        Json::obj(vec![
                            ("name", Json::str(sch.name())),
                            ("objects", Json::num(sch.object_count() as u64)),
                            ("relationships", Json::num(sch.relationship_count() as u64)),
                        ])
                    })
                    .collect();
                Ok(ok_response(vec![("schemas", Json::Arr(schemas))]))
            }),
            Request::Render { session, schema } => self.with_session(&session, |s| {
                let sid = schema_id(s, &schema)?;
                let text = render::render(s.catalog().schema(sid));
                Ok(ok_response(vec![("text", Json::str(text))]))
            }),
            Request::Equiv { session, a, b } => self.with_session(&session, |s| {
                let (sa, oa, aa) = attr_path(&a)?;
                let (sb, ob, ab) = attr_path(&b)?;
                s.declare_equivalent_named(sa, oa, aa, sb, ob, ab)?;
                let classes = s.equivalences().classes().len();
                Ok(ok_response(vec![("classes", Json::num(classes as u64))]))
            }),
            Request::Unequiv { session, a } => self.with_session(&session, |s| {
                let (sa, oa, aa) = attr_path(&a)?;
                let attr = s.catalog().attr_named(sa, oa, aa)?;
                let removed = s.remove_from_class(attr);
                Ok(ok_response(vec![("removed", Json::Bool(removed))]))
            }),
            Request::Candidates { session, a, b } => self.with_session(&session, |s| {
                let (sa, sb) = (schema_id(s, &a)?, schema_id(s, &b)?);
                let pairs: Vec<Json> = s
                    .candidates(sa, sb)
                    .into_iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("left", Json::str(s.catalog().obj_display(p.left))),
                            ("right", Json::str(s.catalog().obj_display(p.right))),
                            ("equivalent", Json::num(p.equivalent as u64)),
                            ("ratio", Json::Num(p.ratio)),
                        ])
                    })
                    .collect();
                Ok(ok_response(vec![("pairs", Json::Arr(pairs))]))
            }),
            Request::RelCandidates { session, a, b } => self.with_session(&session, |s| {
                let (sa, sb) = (schema_id(s, &a)?, schema_id(s, &b)?);
                let pairs: Vec<Json> = s
                    .rel_candidates(sa, sb)
                    .into_iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("left", Json::str(s.catalog().rel_display(p.left))),
                            ("right", Json::str(s.catalog().rel_display(p.right))),
                            ("equivalent", Json::num(p.equivalent as u64)),
                            ("ratio", Json::Num(p.ratio)),
                        ])
                    })
                    .collect();
                Ok(ok_response(vec![("pairs", Json::Arr(pairs))]))
            }),
            Request::Assert {
                session,
                a,
                b,
                assertion,
            } => self.with_session(&session, |s| {
                let ga = object_path(s, &a)?;
                let gb = object_path(s, &b)?;
                let derived = s.assert_objects(ga, gb, assertion)?;
                let derived: Vec<Json> = derived
                    .iter()
                    .map(|d| {
                        Json::obj(vec![
                            ("a", Json::str(s.catalog().obj_display(d.a))),
                            ("rel", Json::str(d.rel.to_string())),
                            ("b", Json::str(s.catalog().obj_display(d.b))),
                        ])
                    })
                    .collect();
                Ok(ok_response(vec![("derived", Json::Arr(derived))]))
            }),
            Request::RelAssert {
                session,
                a,
                b,
                assertion,
            } => self.with_session(&session, |s| {
                let ga = rel_path(s, &a)?;
                let gb = rel_path(s, &b)?;
                let derived = s.assert_rels(ga, gb, assertion)?;
                let derived: Vec<Json> = derived
                    .iter()
                    .map(|d| {
                        Json::obj(vec![
                            ("a", Json::str(s.catalog().rel_display(d.a))),
                            ("rel", Json::str(d.rel.to_string())),
                            ("b", Json::str(s.catalog().rel_display(d.b))),
                        ])
                    })
                    .collect();
                Ok(ok_response(vec![("derived", Json::Arr(derived))]))
            }),
            Request::Retract { session, a, b } => self.with_session(&session, |s| {
                let ga = object_path(s, &a)?;
                let gb = object_path(s, &b)?;
                let retracted = s.retract_objects(ga, gb);
                Ok(ok_response(vec![("retracted", Json::Bool(retracted))]))
            }),
            Request::RelRetract { session, a, b } => self.with_session(&session, |s| {
                let ga = rel_path(s, &a)?;
                let gb = rel_path(s, &b)?;
                let retracted = s.retract_rels(ga, gb);
                Ok(ok_response(vec![("retracted", Json::Bool(retracted))]))
            }),
            Request::Matrix { session, a, b } => self.with_session(&session, |s| {
                let (sa, sb) = (schema_id(s, &a)?, schema_id(s, &b)?);
                let rows: Vec<Json> = s
                    .catalog()
                    .objects_of(sa)
                    .map(|o| Json::str(s.catalog().obj_display(o)))
                    .collect();
                let cols: Vec<Json> = s
                    .catalog()
                    .objects_of(sb)
                    .map(|o| Json::str(s.catalog().obj_display(o)))
                    .collect();
                let cells: Vec<Json> = s
                    .assertion_matrix(sa, sb)
                    .into_iter()
                    .map(|row| {
                        Json::Arr(
                            row.into_iter()
                                .map(|cell| match cell {
                                    Some(a) => Json::str(script::keyword(a)),
                                    None => Json::Null,
                                })
                                .collect(),
                        )
                    })
                    .collect();
                Ok(ok_response(vec![
                    ("rows", Json::Arr(rows)),
                    ("cols", Json::Arr(cols)),
                    ("cells", Json::Arr(cells)),
                ]))
            }),
            Request::Integrate {
                session,
                a,
                b,
                pull_up,
                mappings,
            } => self.with_session(&session, |s| {
                let (sa, sb) = (schema_id(s, &a)?, schema_id(s, &b)?);
                let options = IntegrationOptions {
                    pull_up_common_attrs: pull_up,
                    ..Default::default()
                };
                let mut pairs: Vec<(&str, Json)> = Vec::new();
                if mappings {
                    let (integrated, maps) = s.integrate_with_mappings(sa, sb, &options)?;
                    pairs.push(("schema", Json::str(render::render(&integrated.schema))));
                    pairs.push(("objects", Json::num(integrated.schema.object_count() as u64)));
                    pairs.push((
                        "relationships",
                        Json::num(integrated.schema.relationship_count() as u64),
                    ));
                    pairs.push(("mappings", Json::str(maps.describe())));
                } else {
                    let integrated = s.integrate(sa, sb, &options)?;
                    pairs.push(("schema", Json::str(render::render(&integrated.schema))));
                    pairs.push(("objects", Json::num(integrated.schema.object_count() as u64)));
                    pairs.push((
                        "relationships",
                        Json::num(integrated.schema.relationship_count() as u64),
                    ));
                }
                Ok(ok_response(pairs))
            }),
            Request::Stats => {
                let (lru, ttl) = self.store.evictions();
                let verbs: Vec<(String, Json)> = self
                    .metrics
                    .summaries()
                    .into_iter()
                    .map(|(op, s)| {
                        (
                            op.to_owned(),
                            Json::obj(vec![
                                ("count", Json::num(s.count)),
                                ("errors", Json::num(s.errors)),
                                ("min_ns", Json::num(s.min_ns)),
                                ("median_ns", Json::num(s.median_ns)),
                                ("p95_ns", Json::num(s.p95_ns)),
                            ]),
                        )
                    })
                    .collect();
                Ok(ok_response(vec![
                    ("uptime_ms", Json::num(self.metrics.uptime_ms())),
                    ("sessions", Json::num(self.store.len() as u64)),
                    ("evicted_lru", Json::num(lru)),
                    ("evicted_ttl", Json::num(ttl)),
                    ("verbs", Json::Obj(verbs)),
                ]))
            }
            Request::MetricsText => {
                Ok(ok_response(vec![("text", Json::str(self.metrics_text()))]))
            }
            Request::TraceDump { limit } => {
                let limit = limit
                    .map(|n| usize::try_from(n).unwrap_or(usize::MAX))
                    .unwrap_or(TRACE_DUMP_DEFAULT_LIMIT)
                    .min(TRACE_CAPACITY);
                let mut events = self.tracer.snapshot();
                let truncated = events.len().saturating_sub(limit);
                if truncated > 0 {
                    events.drain(..truncated);
                }
                Ok(ok_response(vec![
                    ("events", Json::num(events.len() as u64)),
                    (
                        "dropped",
                        Json::num(self.tracer.dropped() + truncated as u64),
                    ),
                    ("trace", Json::str(trace::chrome_json(&events))),
                ]))
            }
            Request::Shutdown => Ok(ok_response(vec![("draining", Json::Bool(true))])),
        }
    }

    /// The full Prometheus text exposition: service gauges first, then
    /// the per-verb counters and latency histograms from [`Metrics`].
    pub fn metrics_text(&self) -> String {
        let (lru, ttl) = self.store.evictions();
        let mut out = String::new();
        out.push_str("# TYPE sit_uptime_ms gauge\n");
        prom_counter(&mut out, "sit_uptime_ms", "", self.metrics.uptime_ms());
        out.push_str("# TYPE sit_sessions gauge\n");
        prom_counter(&mut out, "sit_sessions", "", self.store.len() as u64);
        out.push_str("# TYPE sit_sessions_evicted_total counter\n");
        prom_counter(&mut out, "sit_sessions_evicted_total", "kind=\"lru\"", lru);
        prom_counter(&mut out, "sit_sessions_evicted_total", "kind=\"ttl\"", ttl);
        out.push_str("# TYPE sit_trace_events gauge\n");
        prom_counter(&mut out, "sit_trace_events", "", self.tracer.len() as u64);
        out.push_str("# TYPE sit_trace_events_dropped_total counter\n");
        prom_counter(
            &mut out,
            "sit_trace_events_dropped_total",
            "",
            self.tracer.dropped(),
        );
        out.push_str(&self.metrics.prometheus());
        out
    }

    fn with_session<F>(&self, id: &str, f: F) -> Result<Json, ServerError>
    where
        F: FnOnce(&mut Session) -> Result<Json, ServerError>,
    {
        let handle = self
            .store
            .get(id)
            .ok_or_else(|| ServerError::unknown_session(id))?;
        let mut session = handle.lock().expect("session lock");
        f(&mut session)
    }
}

fn schema_id(s: &Session, name: &str) -> Result<sit_ecr::SchemaId, ServerError> {
    s.catalog()
        .by_name(name)
        .ok_or_else(|| ServerError::bad_request(format!("unknown schema `{name}`")))
}

fn attr_path(path: &str) -> Result<(&str, &str, &str), ServerError> {
    let mut it = path.split('.');
    match (it.next(), it.next(), it.next(), it.next()) {
        (Some(s), Some(o), Some(a), None) if !s.is_empty() && !o.is_empty() && !a.is_empty() => {
            Ok((s, o, a))
        }
        _ => Err(ServerError::bad_request(format!(
            "attribute paths are `schema.Owner.attr`: `{path}`"
        ))),
    }
}

fn object_path(s: &Session, path: &str) -> Result<sit_core::catalog::GObj, ServerError> {
    let (schema, object) = path
        .split_once('.')
        .ok_or_else(|| ServerError::bad_request(format!("object paths are `schema.Object`: `{path}`")))?;
    Ok(s.object_named(schema, object)?)
}

fn rel_path(s: &Session, path: &str) -> Result<sit_core::catalog::GRel, ServerError> {
    let (schema, rel) = path
        .split_once('.')
        .ok_or_else(|| ServerError::bad_request(format!("relationship paths are `schema.Rel`: `{path}`")))?;
    Ok(s.rel_named(schema, rel)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ErrorCode;

    fn call(service: &Service, line: &str) -> Json {
        Json::parse(&service.handle_line(line).frame).expect("response is valid json")
    }

    fn ok(v: &Json) -> bool {
        v.get("ok").and_then(Json::as_bool) == Some(true)
    }

    fn err_code(v: &Json) -> Option<String> {
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .map(str::to_owned)
    }

    const SC1: &str = r#"
    schema sc1 {
      entity Student { Name: char key; GPA: real; }
      entity Department { Dname: char key; }
      relationship Majors { Student (0,1); Department (0,n); }
    }
    "#;
    const SC2: &str = r#"
    schema sc2 {
      entity Grad_student { Name: char key; GPA: real; }
      entity Department { Dname: char key; }
      relationship Majors { Grad_student (0,1); Department (0,n); }
    }
    "#;

    #[test]
    fn full_session_over_frames() {
        let service = Service::new(StoreConfig::default());
        let opened = call(&service, r#"{"op":"open"}"#);
        assert!(ok(&opened));
        let sid = opened.get("session").and_then(Json::as_str).unwrap().to_owned();

        let add = |ddl: &str| {
            let frame = Request::AddSchema {
                session: sid.clone(),
                ddl: ddl.into(),
            }
            .to_json()
            .encode();
            call(&service, &frame)
        };
        assert!(ok(&add(SC1)), "{:?}", add(SC1));
        assert!(ok(&add(SC2)));

        let eq = Request::Equiv {
            session: sid.clone(),
            a: "sc1.Student.Name".into(),
            b: "sc2.Grad_student.Name".into(),
        };
        assert!(ok(&call(&service, &eq.to_json().encode())));

        let cands = call(
            &service,
            &Request::Candidates {
                session: sid.clone(),
                a: "sc1".into(),
                b: "sc2".into(),
            }
            .to_json()
            .encode(),
        );
        assert!(ok(&cands));
        let pairs = cands.get("pairs").and_then(Json::as_arr).unwrap();
        assert!(!pairs.is_empty());

        let assert_req = Request::Assert {
            session: sid.clone(),
            a: "sc1.Department".into(),
            b: "sc2.Department".into(),
            assertion: sit_core::assertion::Assertion::Equal,
        };
        assert!(ok(&call(&service, &assert_req.to_json().encode())));

        let contains = Request::Assert {
            session: sid.clone(),
            a: "sc1.Student".into(),
            b: "sc2.Grad_student".into(),
            assertion: sit_core::assertion::Assertion::Contains,
        };
        assert!(ok(&call(&service, &contains.to_json().encode())));

        let integ = call(
            &service,
            &Request::Integrate {
                session: sid.clone(),
                a: "sc1".into(),
                b: "sc2".into(),
                pull_up: false,
                mappings: true,
            }
            .to_json()
            .encode(),
        );
        assert!(ok(&integ), "{integ:?}");
        assert!(integ
            .get("schema")
            .and_then(Json::as_str)
            .unwrap()
            .contains("Department"));
        assert!(integ.get("mappings").is_some());

        let stats = call(&service, r#"{"op":"stats"}"#);
        assert!(ok(&stats));
        assert!(stats.get("verbs").and_then(|v| v.get("assert")).is_some());
    }

    #[test]
    fn errors_are_typed_not_panics() {
        let service = Service::new(StoreConfig::default());
        // Parse error.
        let r = call(&service, "{nope");
        assert_eq!(err_code(&r).as_deref(), Some("parse"));
        // Invalid request.
        let r = call(&service, r#"{"op":"warp"}"#);
        assert_eq!(err_code(&r).as_deref(), Some("bad_request"));
        // Unknown session.
        let r = call(&service, r#"{"op":"save","session":"99"}"#);
        assert_eq!(err_code(&r).as_deref(), Some("unknown_session"));
        // Bad DDL inside a live session.
        let opened = call(&service, r#"{"op":"open"}"#);
        let sid = opened.get("session").and_then(Json::as_str).unwrap();
        let r = call(
            &service,
            &format!(r#"{{"op":"add_schema","session":"{sid}","ddl":"schema x {{ nonsense"}}"#),
        );
        assert_eq!(err_code(&r).as_deref(), Some("bad_request"));
    }

    #[test]
    fn conflict_is_reported_with_its_code() {
        let service = Service::new(StoreConfig::default());
        let opened = call(&service, r#"{"op":"open"}"#);
        let sid = opened.get("session").and_then(Json::as_str).unwrap().to_owned();
        let load = |ddl: &str| {
            let frame = Request::AddSchema {
                session: sid.clone(),
                ddl: ddl.into(),
            }
            .to_json()
            .encode();
            call(&service, &frame)
        };
        assert!(ok(&load(SC1)));
        assert!(ok(&load(SC2)));
        let eq = |a: &str, b: &str, kw: &str| {
            call(
                &service,
                &format!(
                    r#"{{"op":"assert","session":"{sid}","a":"{a}","b":"{b}","assertion":"{kw}"}}"#
                ),
            )
        };
        assert!(ok(&eq("sc1.Student", "sc2.Grad_student", "contains")));
        let conflict = eq("sc1.Student", "sc2.Grad_student", "disjoint-non-integrable");
        assert_eq!(err_code(&conflict).as_deref(), Some("conflict"));
    }

    #[test]
    fn shutdown_verb_drains() {
        let service = Service::new(StoreConfig::default());
        let r = call(&service, r#"{"op":"shutdown"}"#);
        assert!(ok(&r));
        assert!(service.is_draining());
        // Further mutating requests are rejected...
        let r = call(&service, r#"{"op":"open"}"#);
        assert_eq!(err_code(&r).as_deref(), Some("shutting_down"));
        // ...but observability verbs still answer during the drain.
        assert!(ok(&call(&service, r#"{"op":"ping"}"#)));
        assert!(ok(&call(&service, r#"{"op":"stats"}"#)));
        assert!(ok(&call(&service, r#"{"op":"metrics_text"}"#)));
        assert!(ok(&call(&service, r#"{"op":"trace_dump"}"#)));
    }

    #[test]
    fn error_codes_enum_matches_wire() {
        assert_eq!(ErrorCode::Overloaded.as_str(), "overloaded");
    }
}
