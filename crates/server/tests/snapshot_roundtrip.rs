//! Property: `script::save` is a byte-stable fixpoint under
//! `script::load` — the invariant the whole persistence layer leans on.
//!
//! Snapshots *are* `script::save` text, recovery replays `load`, and
//! the crash suites compare recovered state by comparing `save`
//! output. All of that is only sound if save∘load is the identity on
//! saved scripts: one round trip must reproduce the exact bytes, for
//! arbitrary sessions, not just the handwritten fixtures. Here the
//! arbitrary sessions come from 64 seeded `sit-datagen` workloads
//! (generated schema pairs plus their ground-truth equivalences and
//! assertions, replayed skip-on-error like the wire path does).

use sit_core::script;
use sit_core::session::Session;
use sit_datagen::{GeneratedPair, GeneratorConfig};

fn workload(seed: u64) -> GeneratedPair {
    GeneratorConfig {
        seed,
        objects_per_schema: 6,
        relationships_per_schema: 2,
        ..Default::default()
    }
    .generate_pair()
}

fn build_session(pair: &GeneratedPair) -> Session {
    let mut session = Session::new();
    session.add_schema(pair.a.clone()).expect("fresh session");
    session.add_schema(pair.b.clone()).expect("fresh session");
    let (na, nb) = (pair.a.name().to_owned(), pair.b.name().to_owned());
    for (oa, aa, ob, ab) in &pair.truth.attr_pairs {
        // Skip-on-error: derived or redundant ground-truth steps are
        // rejected by the engine; the persisted state is whatever it
        // accepted, same as a live session.
        let _ = session.declare_equivalent_named(&na, oa, aa, &nb, ob, ab);
    }
    for t in &pair.truth.assertions {
        let (Ok(ga), Ok(gb)) = (
            session.object_named(&na, &t.a),
            session.object_named(&nb, &t.b),
        ) else {
            panic!("ground truth names a missing object: {} / {}", t.a, t.b);
        };
        let _ = session.assert_objects(ga, gb, t.assertion);
    }
    session
}

#[test]
fn save_load_save_is_byte_stable_across_64_seeded_sessions() {
    for seed in 0..64u64 {
        let session = build_session(&workload(seed));
        let first = script::save(&session);
        let reloaded = script::load(&first)
            .unwrap_or_else(|e| panic!("seed {seed}: saved script failed to load: {e}"));
        let second = script::save(&reloaded);
        assert_eq!(
            first, second,
            "seed {seed}: save∘load must reproduce the script byte-for-byte"
        );
        // And the fixpoint holds from there on (load of the reloaded
        // save changes nothing either).
        let third = script::save(&script::load(&second).expect("stable script loads"));
        assert_eq!(second, third, "seed {seed}: fixpoint must be stable");
    }
}
