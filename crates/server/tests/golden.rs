//! Golden request/response fixtures for every protocol verb.
//!
//! The transcript below drives one service through all 23 verbs
//! ([`sit_server::proto::VERBS`]) with byte-exact expected responses
//! (the `stats`, `metrics_text`, and `trace_dump` responses carry
//! wall-clock timings and are checked structurally instead). If a
//! protocol change alters any frame, this test names the verb and shows
//! both lines — update deliberately.

use sit_server::service::Service;
use sit_server::store::StoreConfig;
use sit_server::wire::Json;

const DDL1: &str = "schema sc1 { entity Student { Name: char key; GPA: real; } entity Department { Dname: char key; } relationship Majors { Student (0,1); Department (0,n); } }";
const DDL2: &str = "schema sc2 { entity Grad_student { Name: char key; GPA: real; } entity Department { Dname: char key; } relationship Majors { Grad_student (0,1); Department (0,n); } }";

/// `(verb, request frame, expected response frame)`; `@stats`,
/// `@metrics_text`, and `@trace` mark structurally-checked responses.
const TRANSCRIPT: &[(&str, &str, &str)] = &[
    ("ping", r#"{"op":"ping"}"#, r#"{"ok":true,"pong":true}"#),
    ("open", r#"{"op":"open"}"#, r#"{"ok":true,"session":"1"}"#),
    ("add_schema", r#"{"op":"add_schema","session":"1","ddl":"%DDL1%"}"#, r#"{"ok":true,"schemas":["sc1"]}"#),
    ("add_schema", r#"{"op":"add_schema","session":"1","ddl":"%DDL2%"}"#, r#"{"ok":true,"schemas":["sc2"]}"#),
    ("list_schemas", r#"{"op":"list_schemas","session":"1"}"#, r#"{"ok":true,"schemas":[{"name":"sc1","objects":2,"relationships":1},{"name":"sc2","objects":2,"relationships":1}]}"#),
    ("render", r#"{"op":"render","session":"1","schema":"sc1"}"#, r#"{"ok":true,"text":"schema sc1\n  object classes:\n    [Student] (entity)\n        . Name: char [key]\n        . GPA: real\n    [Department] (entity)\n        . Dname: char [key]\n  relationship sets:\n    <Majors> -- Student (0,1) -- Department (0,n)\n"}"#),
    ("equiv", r#"{"op":"equiv","session":"1","a":"sc1.Student.Name","b":"sc2.Grad_student.Name"}"#, r#"{"ok":true,"classes":1}"#),
    ("equiv", r#"{"op":"equiv","session":"1","a":"sc1.Department.Dname","b":"sc2.Department.Dname"}"#, r#"{"ok":true,"classes":2}"#),
    ("candidates", r#"{"op":"candidates","session":"1","a":"sc1","b":"sc2"}"#, r#"{"ok":true,"pairs":[{"left":"sc1.Department","right":"sc2.Department","equivalent":1,"ratio":0.5},{"left":"sc1.Student","right":"sc2.Grad_student","equivalent":1,"ratio":0.3333333333333333}]}"#),
    ("rel_candidates", r#"{"op":"rel_candidates","session":"1","a":"sc1","b":"sc2"}"#, r#"{"ok":true,"pairs":[]}"#),
    ("assert", r#"{"op":"assert","session":"1","a":"sc1.Department","b":"sc2.Department","assertion":"equals"}"#, r#"{"ok":true,"derived":[{"a":"sc1.Student","rel":"DR","b":"sc2.Department"},{"a":"sc1.Department","rel":"DR","b":"sc2.Grad_student"}]}"#),
    ("assert", r#"{"op":"assert","session":"1","a":"sc1.Student","b":"sc2.Grad_student","assertion":"contains"}"#, r#"{"ok":true,"derived":[]}"#),
    ("rel_assert", r#"{"op":"rel_assert","session":"1","a":"sc1.Majors","b":"sc2.Majors","assertion":"equals"}"#, r#"{"ok":true,"derived":[]}"#),
    ("matrix", r#"{"op":"matrix","session":"1","a":"sc1","b":"sc2"}"#, r#"{"ok":true,"rows":["sc1.Student","sc1.Department"],"cols":["sc2.Grad_student","sc2.Department"],"cells":[["contains","disjoint-non-integrable"],["disjoint-non-integrable","equals"]]}"#),
    ("integrate", r#"{"op":"integrate","session":"1","a":"sc1","b":"sc2","pull_up":false,"mappings":true}"#, r##"{"ok":true,"schema":"schema sc1+sc2\n  object classes:\n    [Student] (entity)\n        . D_Name: char [key]\n        . GPA: real\n      [Grad_student] (category)\n          . GPA: real\n    [E_Department] (entity)\n        . D_Dname: char [key]\n  relationship sets:\n    <E_Stud_Majo> -- Student (0,1) -- E_Department (0,n)\n","objects":3,"relationships":1,"mappings":"# mapping dictionary\nobject sc1.Department -> E_Department\nobject sc1.Majors -> E_Stud_Majo\nobject sc1.Student -> Student\nobject sc2.Department -> E_Department\nobject sc2.Grad_student -> Grad_student\nobject sc2.Majors -> E_Stud_Majo\nattr   sc1.Department.Dname -> E_Department.D_Dname\nattr   sc1.Student.GPA -> Student.GPA\nattr   sc1.Student.Name -> Student.D_Name\nattr   sc2.Department.Dname -> E_Department.D_Dname\nattr   sc2.Grad_student.GPA -> Grad_student.GPA\nattr   sc2.Grad_student.Name -> Student.D_Name\n"}"##),
    ("retract", r#"{"op":"retract","session":"1","a":"sc1.Student","b":"sc2.Grad_student"}"#, r#"{"ok":true,"retracted":true}"#),
    ("rel_retract", r#"{"op":"rel_retract","session":"1","a":"sc1.Majors","b":"sc2.Majors"}"#, r#"{"ok":true,"retracted":true}"#),
    ("unequiv", r#"{"op":"unequiv","session":"1","a":"sc2.Grad_student.Name"}"#, r#"{"ok":true,"removed":true}"#),
    ("save", r#"{"op":"save","session":"1"}"#, r##"{"ok":true,"script":"# sit session v1\nschema sc1 {\n  entity Student {\n    Name: char key;\n    GPA: real;\n  }\n  entity Department {\n    Dname: char key;\n  }\n  relationship Majors {\n    Student (0,1);\n    Department (0,n);\n  }\n}\nschema sc2 {\n  entity Grad_student {\n    Name: char key;\n    GPA: real;\n  }\n  entity Department {\n    Dname: char key;\n  }\n  relationship Majors {\n    Grad_student (0,1);\n    Department (0,n);\n  }\n}\nequiv sc1.Department.Dname = sc2.Department.Dname;\nassert sc1.Department equals sc2.Department;\n"}"##),
    ("load", r#"{"op":"load","script":"schema tiny { entity Only { id: int key; } }"}"#, r#"{"ok":true,"session":"2","schemas":["tiny"]}"#),
    ("close", r#"{"op":"close","session":"2"}"#, r#"{"ok":true,"closed":true}"#),
    ("stats", r#"{"op":"stats"}"#, "@stats"),
    ("metrics_text", r#"{"op":"metrics_text"}"#, "@metrics_text"),
    ("trace_dump", r#"{"op":"trace_dump","limit":64}"#, "@trace"),
    ("persist_stats", r#"{"op":"persist_stats"}"#, r#"{"ok":true,"enabled":false}"#),
    ("shutdown", r#"{"op":"shutdown"}"#, r#"{"ok":true,"draining":true}"#),
];

fn substitute(frame: &str) -> String {
    frame.replace("%DDL1%", DDL1).replace("%DDL2%", DDL2)
}

#[test]
fn every_verb_has_a_fixture() {
    let covered: std::collections::BTreeSet<&str> =
        TRANSCRIPT.iter().map(|(verb, _, _)| *verb).collect();
    for verb in sit_server::proto::VERBS {
        assert!(covered.contains(verb), "verb `{verb}` has no golden fixture");
    }
}

#[test]
fn transcript_matches_goldens() {
    let service = Service::new(StoreConfig::default());
    for (verb, request, expected) in TRANSCRIPT {
        let request = substitute(request);
        let handled = service.handle_line(&request);
        let response = handled.frame;
        if *expected == "@stats" {
            let v = Json::parse(&response).expect("stats parses");
            assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{response}");
            let verbs = v.get("verbs").expect("stats has verbs");
            let ping = verbs.get("ping").expect("ping was counted");
            assert_eq!(ping.get("count").and_then(Json::as_num), Some(1.0));
            assert!(v.get("uptime_ms").and_then(Json::as_num).is_some());
            assert_eq!(v.get("sessions").and_then(Json::as_num), Some(1.0));
            continue;
        }
        if *expected == "@metrics_text" {
            let v = Json::parse(&response).expect("metrics_text parses");
            assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{response}");
            let text = v.get("text").and_then(Json::as_str).expect("text field");
            assert!(text.contains("# TYPE sit_requests_total counter"), "{text}");
            assert!(text.contains("sit_requests_total{verb=\"ping\"} 1"), "{text}");
            assert!(
                text.contains("sit_request_latency_ns_bucket{verb=\"integrate\",le="),
                "{text}"
            );
            continue;
        }
        if *expected == "@trace" {
            let v = Json::parse(&response).expect("trace_dump parses");
            assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{response}");
            let trace = v.get("trace").and_then(Json::as_str).expect("trace field");
            let chrome = Json::parse(trace).expect("trace is valid JSON");
            let events = chrome
                .get("traceEvents")
                .and_then(Json::as_arr)
                .expect("traceEvents array");
            assert!(!events.is_empty(), "trace has events");
            let names: Vec<&str> = events
                .iter()
                .filter_map(|e| e.get("name").and_then(Json::as_str))
                .collect();
            assert!(names.contains(&"request"), "{names:?}");
            assert!(names.contains(&"dispatch"), "{names:?}");
            continue;
        }
        let expected = substitute(expected);
        assert_eq!(
            response, expected,
            "verb `{verb}`\nrequest : {request}\ngot     : {response}\nexpected: {expected}"
        );
    }
}

/// Error frames are fixtures too: the typed codes are part of the
/// protocol surface.
#[test]
fn golden_error_frames() {
    let service = Service::new(StoreConfig::default());
    let cases = [
        (
            "not json at all",
            r#"{"ok":false,"error":{"code":"parse","message":"json error at byte 0: expected `null`"}}"#,
        ),
        (
            r#"{"op":"frobnicate"}"#,
            r#"{"ok":false,"error":{"code":"bad_request","message":"unknown op `frobnicate`"}}"#,
        ),
        (
            r#"{"op":"save","session":"41"}"#,
            r#"{"ok":false,"error":{"code":"unknown_session","message":"no session `41` (closed, evicted, or never opened)"}}"#,
        ),
    ];
    for (request, expected) in cases {
        let got = service.handle_line(request).frame;
        assert_eq!(got, expected, "request: {request}");
    }
}
