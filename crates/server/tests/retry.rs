//! Client retry/backoff behavior against scripted mock servers.
//!
//! Each test stands up a raw `TcpListener` that plays a fixed script —
//! answer `overloaded`, drop the connection, stall, or succeed — and
//! counts exactly how many requests arrived. The assertions pin the
//! retry contract:
//!
//! * idempotent verbs retry through `overloaded` rejections and dead
//!   connections (re-dialing first), bounded by the retry budget;
//! * non-idempotent verbs are NEVER retried — the mock proves the
//!   request arrived exactly once;
//! * read timeouts turn a stalled server into an error instead of a
//!   hang;
//! * the backoff schedule is capped and deterministic (unit-tested in
//!   `client.rs`; re-checked here end to end by timing a retry run).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sit_server::client::{error_code, Client, ClientConfig, RetryPolicy};
use sit_server::proto::Request;

/// How the mock answers one incoming request line.
#[derive(Clone, Copy)]
enum Play {
    /// Reply with the typed `overloaded` error frame.
    Overloaded,
    /// Reply with a minimal `ok` frame.
    Ok,
    /// Close the connection without replying.
    Hangup,
    /// Read the request but never reply (forces a client read timeout).
    Stall,
}

/// A scripted TCP server: request number `i` (across reconnects) gets
/// `script[i]`. Connections persist until the script says `Hangup` or
/// the client goes away; the counter proves exactly how many requests
/// were (re)sent. The serving thread is detached — after the script is
/// exhausted or the client stops dialing it parks in `accept` and dies
/// with the test process.
struct MockServer {
    addr: std::net::SocketAddr,
    requests: Arc<AtomicUsize>,
}

impl MockServer {
    fn start(script: Vec<Play>) -> MockServer {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind mock");
        let addr = listener.local_addr().expect("mock addr");
        let requests = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&requests);
        std::thread::spawn(move || {
            let mut idx = 0;
            while idx < script.len() {
                let Ok((stream, _)) = listener.accept() else { return };
                let Ok(clone) = stream.try_clone() else { return };
                let mut reader = BufReader::new(clone);
                let mut writer = stream;
                loop {
                    if idx >= script.len() {
                        return;
                    }
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        break; // client gone; await the next dial
                    }
                    counter.fetch_add(1, Ordering::SeqCst);
                    match script[idx] {
                        Play::Overloaded => {
                            let frame = concat!(
                                r#"{"ok":false,"error":"#,
                                r#"{"code":"overloaded","message":"queue full"}}"#
                            );
                            let _ = writeln!(writer, "{frame}");
                        }
                        Play::Ok => {
                            let _ = writeln!(writer, r#"{{"ok":true,"pong":true}}"#);
                        }
                        Play::Hangup => {
                            idx += 1;
                            break; // drop the connection without replying
                        }
                        Play::Stall => std::thread::sleep(Duration::from_millis(400)),
                    }
                    idx += 1;
                }
            }
        });
        MockServer { addr, requests }
    }

    fn requests(&self) -> usize {
        self.requests.load(Ordering::SeqCst)
    }
}

fn fast_config(retries: u32) -> ClientConfig {
    ClientConfig {
        timeout: Some(Duration::from_millis(200)),
        retry: RetryPolicy {
            retries,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(10),
            jitter: false,
            seed: 7,
        },
    }
}

#[test]
fn idempotent_call_retries_through_overloaded_and_succeeds() {
    let mock = MockServer::start(vec![Play::Overloaded, Play::Overloaded, Play::Ok]);
    let mut client = Client::connect_with(mock.addr, fast_config(5)).expect("connect");
    let response = client.call_retrying(&Request::Ping).expect("retried to success");
    assert_eq!(
        response.get("pong").and_then(sit_server::Json::as_bool),
        Some(true),
        "final response is the ok frame: {}",
        response.encode()
    );
    assert_eq!(mock.requests(), 3, "two overloaded rejections then one success");
}

#[test]
fn idempotent_call_reconnects_after_server_drops_the_connection() {
    let mock = MockServer::start(vec![Play::Hangup, Play::Hangup, Play::Ok]);
    let mut client = Client::connect_with(mock.addr, fast_config(5)).expect("connect");
    let response = client.call_retrying(&Request::Ping).expect("reconnected");
    assert_eq!(
        response.get("pong").and_then(sit_server::Json::as_bool),
        Some(true)
    );
    assert_eq!(mock.requests(), 3, "request resent once per fresh connection");
}

#[test]
fn retry_budget_is_bounded() {
    let mock = MockServer::start(vec![Play::Overloaded; 4]);
    let mut client = Client::connect_with(mock.addr, fast_config(2)).expect("connect");
    let response = client.call_retrying(&Request::Ping).expect("last frame returned");
    assert_eq!(
        error_code(&response),
        Some("overloaded"),
        "budget exhausted: the final rejection is surfaced"
    );
    assert_eq!(mock.requests(), 3, "1 try + 2 retries, never more");
}

#[test]
fn non_idempotent_verb_is_never_retried_on_overloaded() {
    let mock = MockServer::start(vec![Play::Overloaded, Play::Ok]);
    let mut client = Client::connect_with(mock.addr, fast_config(5)).expect("connect");
    let response = client
        .call_retrying(&Request::Open)
        .expect("error frame is a response, not an io failure");
    assert_eq!(
        error_code(&response),
        Some("overloaded"),
        "the rejection reaches the caller untouched"
    );
    assert_eq!(mock.requests(), 1, "open must not be replayed");
}

#[test]
fn non_idempotent_verb_is_never_retried_on_disconnect() {
    let mock = MockServer::start(vec![Play::Hangup, Play::Ok]);
    let mut client = Client::connect_with(mock.addr, fast_config(5)).expect("connect");
    let err = client
        .call_retrying(&Request::Integrate {
            session: "1".into(),
            a: "sa".into(),
            b: "sb".into(),
            pull_up: false,
            mappings: false,
        })
        .expect_err("lost connection surfaces as io error");
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    assert_eq!(mock.requests(), 1, "integrate must not be replayed");
}

#[test]
fn read_timeout_fires_instead_of_hanging() {
    let mock = MockServer::start(vec![Play::Stall]);
    let config = ClientConfig {
        timeout: Some(Duration::from_millis(100)),
        retry: RetryPolicy {
            retries: 0,
            ..RetryPolicy::default()
        },
    };
    let mut client = Client::connect_with(mock.addr, config).expect("connect");
    let started = Instant::now();
    let err = client.call_retrying(&Request::Ping).expect_err("timed out");
    let elapsed = started.elapsed();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "timeout error kind, got {err:?}"
    );
    assert!(
        elapsed < Duration::from_millis(380),
        "returned before the stall ended ({elapsed:?})"
    );
}

#[test]
fn retries_respect_the_backoff_schedule_end_to_end() {
    // Three rejections with base 40ms / cap 60ms and no jitter must
    // spend at least 40 + 60 + 60 = 160ms sleeping between the four
    // requests.
    let mock = MockServer::start(vec![Play::Overloaded; 4]);
    let config = ClientConfig {
        timeout: Some(Duration::from_millis(500)),
        retry: RetryPolicy {
            retries: 3,
            base: Duration::from_millis(40),
            cap: Duration::from_millis(60),
            jitter: false,
            seed: 0,
        },
    };
    let mut client = Client::connect_with(mock.addr, config).expect("connect");
    let started = Instant::now();
    let response = client.call_retrying(&Request::Ping).expect("last frame");
    let elapsed = started.elapsed();
    assert_eq!(error_code(&response), Some("overloaded"));
    assert_eq!(mock.requests(), 4);
    assert!(
        elapsed >= Duration::from_millis(160),
        "backoff delays were actually waited ({elapsed:?})"
    );
}

#[test]
fn retry_against_the_real_server_saturated_pool() {
    // End-to-end: a real server with a 1-thread/1-slot pool gets
    // firehosed by a competing connection; a retrying client keeps
    // backing off through any `overloaded` rejections and lands a pong.
    use sit_server::server::{Server, ServerConfig};

    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            threads: 1,
            queue_cap: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.spawn().expect("spawn");

    let blocker = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("blocker connect");
        for _ in 0..64 {
            let _ = c.call(&Request::Ping);
        }
    });

    let config = ClientConfig {
        timeout: Some(Duration::from_secs(5)),
        retry: RetryPolicy {
            retries: 20,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            jitter: true,
            seed: 42,
        },
    };
    let mut client = Client::connect_with(addr, config).expect("connect");
    let response = client.call_retrying(&Request::Ping).expect("pong eventually");
    assert_eq!(
        response.get("pong").and_then(sit_server::Json::as_bool),
        Some(true)
    );
    blocker.join().expect("blocker");

    let mut closer = Client::connect(addr).expect("closer");
    let _ = closer.call(&Request::Shutdown);
    handle.join().expect("server thread");
}
