//! Concurrency integration test: one server, eight client threads, each
//! driving an independent session from a different `sit-datagen` seed.
//! Every thread's integrated schema must match, byte for byte, what a
//! single-threaded in-process session produces from the same workload —
//! the server must add concurrency without adding nondeterminism.

use std::sync::Arc;
use std::thread;

use sit_core::assertion::Assertion;
use sit_core::integrate::IntegrationOptions;
use sit_core::script;
use sit_core::session::Session;
use sit_datagen::{GeneratedPair, GeneratorConfig};
use sit_ecr::{ddl, render};
use sit_server::proto::Request;
use sit_server::server::{Server, ServerConfig};
use sit_server::store::StoreConfig;
use sit_server::wire::Json;
use sit_server::Client;

const CLIENTS: usize = 8;

fn workload(seed: u64) -> GeneratedPair {
    GeneratorConfig {
        seed,
        objects_per_schema: 6,
        relationships_per_schema: 2,
        ..Default::default()
    }
    .generate_pair()
}

/// The deterministic instruction stream for one workload: every true
/// attribute equivalence, then every true object assertion, in ground
/// truth order. Both the oracle and the wire client replay exactly this.
struct Steps {
    equivs: Vec<(String, String, String, String)>,
    asserts: Vec<(String, String, Assertion)>,
}

fn steps(pair: &GeneratedPair) -> Steps {
    Steps {
        equivs: pair.truth.attr_pairs.clone(),
        asserts: pair
            .truth
            .assertions
            .iter()
            .map(|t| (t.a.clone(), t.b.clone(), t.assertion))
            .collect(),
    }
}

/// Single-threaded reference: run the workload through a local
/// [`Session`] and render the integrated schema.
fn oracle_integrate(pair: &GeneratedPair) -> String {
    let s = steps(pair);
    let mut session = Session::new();
    let sa = session.add_schema(pair.a.clone()).expect("fresh session");
    let sb = session.add_schema(pair.b.clone()).expect("fresh session");
    let (na, nb) = (pair.a.name().to_owned(), pair.b.name().to_owned());
    for (oa, aa, ob, ab) in &s.equivs {
        // Skip-on-error mirrors the wire path below: both sides must
        // tolerate (and ignore) the same redundant or derived steps.
        let _ = session.declare_equivalent_named(&na, oa, aa, &nb, ob, ab);
    }
    for (a, b, assertion) in &s.asserts {
        let (Ok(ga), Ok(gb)) = (session.object_named(&na, a), session.object_named(&nb, b))
        else {
            panic!("ground truth names a missing object: {a} / {b}");
        };
        let _ = session.assert_objects(ga, gb, *assertion);
    }
    let integrated = session
        .integrate(sa, sb, &IntegrationOptions::default())
        .expect("oracle integrate");
    render::render(&integrated.schema)
}

/// Wire path: replay the same workload through a connected client.
fn wire_integrate(client: &mut Client, pair: &GeneratedPair) -> String {
    let s = steps(pair);
    let opened = client
        .call(&Request::Open)
        .expect("open response");
    let sid = opened
        .get("session")
        .and_then(Json::as_str)
        .expect("session id")
        .to_owned();
    let (na, nb) = (pair.a.name().to_owned(), pair.b.name().to_owned());
    for schema in [&pair.a, &pair.b] {
        let r = client
            .call(&Request::AddSchema {
                session: sid.clone(),
                ddl: ddl::print(schema),
            })
            .expect("add_schema response");
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "{r:?}");
    }
    for (oa, aa, ob, ab) in &s.equivs {
        // Outcome intentionally unchecked (mirrors the oracle's
        // skip-on-error); the response itself must still arrive.
        let _ = client
            .call(&Request::Equiv {
                session: sid.clone(),
                a: format!("{na}.{oa}.{aa}"),
                b: format!("{nb}.{ob}.{ab}"),
            })
            .expect("equiv response");
    }
    for (a, b, assertion) in &s.asserts {
        let _ = client
            .call(&Request::Assert {
                session: sid.clone(),
                a: format!("{na}.{a}"),
                b: format!("{nb}.{b}"),
                assertion: *assertion,
            })
            .expect("assert response");
    }
    let integ = client
        .call(&Request::Integrate {
            session: sid.clone(),
            a: na,
            b: nb,
            pull_up: false,
            mappings: false,
        })
        .expect("integrate response");
    assert_eq!(integ.get("ok"), Some(&Json::Bool(true)), "{integ:?}");
    let text = integ
        .get("schema")
        .and_then(Json::as_str)
        .expect("integrated schema text")
        .to_owned();
    let closed = client
        .call(&Request::Close { session: sid })
        .expect("close response");
    assert_eq!(closed.get("ok"), Some(&Json::Bool(true)));
    text
}

#[test]
fn concurrent_sessions_match_the_single_threaded_oracle() {
    let config = ServerConfig {
        threads: 4,
        queue_cap: 64,
        store: StoreConfig::default(),
        persist: None,
    };
    let handle = Server::bind("127.0.0.1:0", config)
        .expect("bind loopback")
        .spawn()
        .expect("spawn accept loop");
    let addr = handle.addr();

    // Reference results computed up front, single-threaded.
    let workloads: Vec<GeneratedPair> = (0..CLIENTS as u64).map(|i| workload(0xC0C0 + i)).collect();
    let expected: Vec<String> = workloads.iter().map(oracle_integrate).collect();
    // Seeds must differ enough to produce distinct schemas, otherwise
    // the test couldn't tell sessions apart.
    assert!(
        expected.iter().any(|e| e != &expected[0]),
        "workloads degenerate: all oracle results identical"
    );

    let workloads = Arc::new(workloads);
    let mut joins = Vec::new();
    for i in 0..CLIENTS {
        let workloads = Arc::clone(&workloads);
        joins.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            wire_integrate(&mut client, &workloads[i])
        }));
    }
    for (i, join) in joins.into_iter().enumerate() {
        let got = join.join().expect("client thread");
        assert_eq!(
            got, expected[i],
            "client {i}: integrated schema diverged from the oracle"
        );
    }

    handle.shutdown().expect("clean shutdown");
}

/// The assertion keywords used on the wire must round-trip through the
/// script spelling for every assertion the generator can produce.
#[test]
fn generator_assertions_have_wire_spellings() {
    for seed in 0..4u64 {
        let pair = workload(seed);
        for t in &pair.truth.assertions {
            let kw = script::keyword(t.assertion);
            assert_eq!(script::parse_keyword(kw), Some(t.assertion), "{kw}");
        }
    }
}
