//! Property tests for the wire format: encode→parse round trips over
//! generated values, plus a fuzz-ish pass feeding random and truncated
//! byte soup to the decoder (it must reject, never panic).
//!
//! Crashing inputs are not lost when they are found: every fuzz case
//! runs under `catch_unwind`, and a panic persists the offending input
//! to the committed corpus at `tests/corpus/` (as `crash-<hash>.txt`)
//! before failing the test. Every run replays the whole corpus FIRST —
//! seeded regression inputs plus any previously persisted crashes — so
//! a decoder regression trips deterministically, before any randomness.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use sit_prng::{prop, prop_assert, prop_assert_eq, Xoshiro256pp};
use sit_server::wire::{FrameBuffer, Framed, Json, MAX_DEPTH};

/// The committed fuzz corpus, shipped with the repo.
fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// One fuzz input through every decoder entry point: the JSON parser
/// directly, and the line reassembler feeding it (with a CRLF variant).
/// Outcome is free; panicking is the only failure.
fn decode_case(text: &str) {
    let _ = Json::parse(text);
    let mut frames = FrameBuffer::new();
    frames.push(text.as_bytes());
    frames.push(b"\r\n");
    while let Some(framed) = frames.next_frame() {
        if let Framed::Line(line) = framed {
            let _ = Json::parse(&line);
        }
    }
}

/// Run a generated input; if the decoder panics, persist the input to
/// the corpus so the crash replays on every future run, then fail.
fn check_case_persisting(text: &str) {
    if catch_unwind(AssertUnwindSafe(|| decode_case(text))).is_err() {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        text.hash(&mut h);
        let dir = corpus_dir();
        std::fs::create_dir_all(&dir).ok();
        let path = dir.join(format!("crash-{:016x}.txt", h.finish()));
        std::fs::write(&path, text).ok();
        panic!(
            "decoder panicked; input persisted to {} — commit it",
            path.display()
        );
    }
}

/// Replay every committed corpus file (sorted, so ordering is stable)
/// through the decoder before any random generation happens.
fn replay_corpus() {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("corpus entry").path())
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    assert!(!files.is_empty(), "committed corpus is empty");
    for path in files {
        let bytes = std::fs::read(&path).expect("read corpus file");
        // Lossy conversion mirrors what a reader hands the parser; raw
        // invalid UTF-8 bytes in the corpus exercise that path too.
        let text = String::from_utf8_lossy(&bytes);
        assert!(
            catch_unwind(AssertUnwindSafe(|| decode_case(&text))).is_ok(),
            "corpus case {} panics the decoder",
            path.display()
        );
    }
}

#[test]
fn corpus_replays_without_panicking() {
    replay_corpus();
}

/// A random scalar-ish string exercising escapes, unicode, and controls.
fn gen_string(rng: &mut Xoshiro256pp) -> String {
    let len = rng.gen_range(0usize..24);
    let mut s = String::new();
    for _ in 0..len {
        match rng.gen_range(0u32..10) {
            0 => s.push('"'),
            1 => s.push('\\'),
            2 => s.push('\n'),
            3 => s.push('\t'),
            4 => s.push(char::from_u32(rng.gen_range(1u32..0x20)).unwrap()),
            5 => s.push('é'),
            6 => s.push('\u{1F600}'), // surrogate-pair territory
            7 => s.push('\u{FFFD}'),
            _ => s.push(char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap()),
        }
    }
    s
}

fn gen_value(rng: &mut Xoshiro256pp, depth: usize) -> Json {
    let leaf = depth >= 5;
    match rng.gen_range(0u32..if leaf { 4 } else { 6 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => {
            // Integers and fractions that survive f64 round-tripping.
            let n = rng.gen_range(-1_000_000i64..1_000_000);
            if rng.gen_bool(0.5) {
                Json::Num(n as f64)
            } else {
                Json::Num(n as f64 / 64.0)
            }
        }
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = rng.gen_range(0usize..4);
            Json::Arr((0..n).map(|_| gen_value(rng, depth + 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0usize..4);
            Json::Obj(
                (0..n)
                    .map(|i| (format!("k{i}_{}", gen_string(rng)), gen_value(rng, depth + 1)))
                    .collect(),
            )
        }
    }
}

#[test]
fn encode_parse_round_trips_generated_values() {
    prop::check("wire round trip", |rng| {
        let v = gen_value(rng, 0);
        let encoded = v.encode();
        let parsed = Json::parse(&encoded).map_err(|e| format!("{e} in {encoded}"))?;
        prop_assert_eq!(parsed, v, "{}", encoded);
        Ok(())
    });
}

#[test]
fn strings_with_every_escape_round_trip() {
    prop::check("string escapes", |rng| {
        let s = gen_string(rng);
        let encoded = Json::Str(s.clone()).encode();
        let parsed = Json::parse(&encoded).map_err(|e| format!("{e} in {encoded}"))?;
        prop_assert_eq!(parsed, Json::Str(s));
        Ok(())
    });
}

#[test]
fn nesting_round_trips_exactly_at_the_depth_limit() {
    let mut v = Json::Num(1.0);
    for _ in 0..MAX_DEPTH {
        v = Json::Arr(vec![v]);
    }
    let encoded = v.encode();
    assert_eq!(Json::parse(&encoded).unwrap(), v);
    // One deeper is rejected, not a stack overflow.
    let deeper = format!("[{encoded}]");
    assert!(Json::parse(&deeper).is_err());
}

#[test]
fn decoder_never_panics_on_random_bytes() {
    replay_corpus(); // regressions first, randomness second
    prop::check_cases("wire fuzz: random bytes", 256, |rng| {
        let len = rng.gen_range(0usize..200);
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            // Bias toward JSON-ish structural bytes so the parser gets
            // deep before failing.
            let b = match rng.gen_range(0u32..4) {
                0 => *rng
                    .choose(b"{}[]\",:truefalsnl0123456789.-+eE\\u")
                    .unwrap(),
                1 => rng.gen_range(0u32..128) as u8,
                _ => rng.gen_range(0u32..256) as u8,
            };
            bytes.push(b);
        }
        // Invalid UTF-8 can't even reach the parser through &str; lossy
        // conversion mirrors what a reader would hand us.
        let text = String::from_utf8_lossy(&bytes);
        check_case_persisting(&text); // must not panic; outcome is free
        Ok(())
    });
}

#[test]
fn decoder_never_panics_on_truncated_frames() {
    replay_corpus(); // regressions first, randomness second
    prop::check_cases("wire fuzz: truncated frames", 128, |rng| {
        let v = gen_value(rng, 0);
        let encoded = v.encode();
        if encoded.is_empty() {
            return Ok(());
        }
        let cut = rng.gen_range(0usize..encoded.len());
        let mut end = cut;
        while end > 0 && !encoded.is_char_boundary(end) {
            end -= 1;
        }
        let truncated = &encoded[..end];
        check_case_persisting(truncated);
        if let Ok(reparsed) = Json::parse(truncated) {
            // A prefix can itself be valid only for scalar prefixes
            // (e.g. `12` of `123`); anything structural must fail.
            prop_assert!(
                !matches!(reparsed, Json::Arr(_) | Json::Obj(_)) || end == encoded.len(),
                "structural prefix {truncated} of {encoded} parsed"
            );
        }
        Ok(())
    });
}
