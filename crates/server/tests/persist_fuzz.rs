//! Fuzz the journal/snapshot record parser: `decode_records` and
//! `decode_snapshot` take bytes straight off disk after a crash, so
//! arbitrary garbage must decode to a clean prefix — reject, truncate,
//! never panic.
//!
//! Same harness discipline as the wire fuzz (`wire_props.rs`): the
//! committed corpus at `tests/corpus/persist/` (hex-encoded, one blob
//! per file) replays FIRST on every run, so a parser regression trips
//! deterministically before any randomness; a panic found by the
//! seeded random pass is persisted to the corpus (as
//! `crash-<hash>.hex`) before the test fails, turning every new
//! crasher into a permanent regression test.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use sit_prng::Xoshiro256pp;
use sit_server::persist::{
    decode_records, decode_snapshot, encode_record, record_crc, MAX_JOURNAL_PAYLOAD,
};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus/persist")
}

fn from_hex(text: &str) -> Vec<u8> {
    let digits: Vec<u32> = text.chars().filter_map(|c| c.to_digit(16)).collect();
    digits
        .chunks_exact(2)
        .map(|p| (p[0] * 16 + p[1]) as u8)
        .collect()
}

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// One fuzz input through both parser entry points, with a tight
/// `max_payload` variant so the length-limit branch runs too. Outcome
/// is free; panicking is the only failure.
fn decode_case(bytes: &[u8]) {
    let scan = decode_records(bytes, MAX_JOURNAL_PAYLOAD);
    // Whatever survived must be internally consistent: the consumed
    // prefix re-encodes to exactly the bytes it was decoded from.
    let mut rebuilt = Vec::new();
    for (seq, payload) in &scan.records {
        rebuilt.extend_from_slice(&encode_record(*seq, payload));
    }
    assert_eq!(
        rebuilt.len(),
        scan.consumed,
        "decoded records must re-encode to the consumed prefix"
    );
    assert_eq!(&bytes[..scan.consumed], &rebuilt[..]);
    let _ = decode_records(bytes, 24);
    let _ = decode_snapshot(bytes);
}

fn check_case_persisting(bytes: &[u8]) {
    if catch_unwind(AssertUnwindSafe(|| decode_case(bytes))).is_err() {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        bytes.hash(&mut h);
        let dir = corpus_dir();
        std::fs::create_dir_all(&dir).ok();
        let path = dir.join(format!("crash-{:016x}.hex", h.finish()));
        std::fs::write(&path, to_hex(bytes)).ok();
        panic!(
            "record parser panicked; input persisted to {} — commit it",
            path.display()
        );
    }
}

fn replay_corpus() {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus/persist exists")
        .map(|e| e.expect("corpus entry").path())
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    assert!(!files.is_empty(), "committed persist corpus is empty");
    for path in files {
        let text = std::fs::read_to_string(&path).expect("read corpus file");
        let bytes = from_hex(&text);
        assert!(
            catch_unwind(AssertUnwindSafe(|| decode_case(&bytes))).is_ok(),
            "corpus case {} panics the record parser",
            path.display()
        );
    }
}

#[test]
fn corpus_replays_without_panicking() {
    replay_corpus();
}

#[test]
fn random_byte_soup_never_panics_the_parser() {
    replay_corpus(); // regressions first, randomness second
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EED_5001);
    for _ in 0..4000 {
        let len = rng.gen_range(0usize..160);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        check_case_persisting(&bytes);
    }
}

/// Far nastier than uniform noise: start from *valid* journals and
/// mutate them — truncations, bit flips, length-field edits, splices.
#[test]
fn mutated_valid_journals_never_panic_the_parser() {
    replay_corpus(); // regressions first, randomness second
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EED_5002);
    for _ in 0..2000 {
        let records = rng.gen_range(1usize..5);
        let mut journal = Vec::new();
        for seq in 0..records {
            let plen = rng.gen_range(0usize..40);
            let payload: Vec<u8> = (0..plen).map(|_| rng.gen_range(32u32..127) as u8).collect();
            journal.extend_from_slice(&encode_record(seq as u64 + 1, &payload));
        }
        match rng.gen_range(0u32..4) {
            0 => {
                // Torn tail.
                let keep = rng.gen_range(0..journal.len() + 1);
                journal.truncate(keep);
            }
            1 => {
                // Single bit flip anywhere (header, crc, or payload).
                let at = rng.gen_range(0..journal.len());
                journal[at] ^= 1 << rng.gen_range(0u32..8);
            }
            2 => {
                // Rewrite a length field to something absurd.
                let at = rng.gen_range(0..journal.len().saturating_sub(4).max(1));
                let lie = if rng.gen_bool(0.5) { u32::MAX } else { rng.gen_range(0u32..1 << 24) };
                journal[at..at + 4].copy_from_slice(&lie.to_le_bytes());
            }
            _ => {
                // Splice two journals mid-record.
                let cut = rng.gen_range(0..journal.len() + 1);
                let extra = encode_record(99, b"{\"op\":\"close\"}");
                let graft = rng.gen_range(0..extra.len());
                journal.truncate(cut);
                journal.extend_from_slice(&extra[graft..]);
            }
        }
        check_case_persisting(&journal);
    }
}

/// The decoder's contract on *clean* input, so the fuzz has a floor:
/// every encoded journal decodes to exactly its records, and a torn
/// tail yields the intact prefix plus the torn byte count.
#[test]
fn clean_and_torn_journals_decode_to_the_intact_prefix() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EED_5003);
    for _ in 0..200 {
        let count = rng.gen_range(1usize..6);
        let mut journal = Vec::new();
        let mut expect = Vec::new();
        for seq in 0..count {
            let plen = rng.gen_range(0usize..64);
            let payload: Vec<u8> = (0..plen).map(|_| rng.gen_range(0u32..256) as u8).collect();
            journal.extend_from_slice(&encode_record(seq as u64, &payload));
            expect.push((seq as u64, payload));
        }
        let scan = decode_records(&journal, MAX_JOURNAL_PAYLOAD);
        assert_eq!(scan.records, expect);
        assert_eq!(scan.consumed, journal.len());
        assert_eq!(scan.trailing, 0);

        // Tear off 1..=header+payload-1 bytes: the last record dies,
        // everything before it survives, trailing counts the stump.
        let last_len = encode_record(expect[count - 1].0, &expect[count - 1].1).len();
        let tear = rng.gen_range(1..last_len + 1);
        let torn = &journal[..journal.len() - tear];
        let scan = decode_records(torn, MAX_JOURNAL_PAYLOAD);
        assert_eq!(scan.records[..], expect[..count - 1]);
        assert_eq!(scan.trailing, last_len - tear);
    }
}

/// CRC math the container leans on, pinned independently of the
/// implementation table.
#[test]
fn record_crc_matches_the_ieee_check_value() {
    // CRC-32/IEEE("123456789") — seq contributes too, so fold it in by
    // checking a record whose payload round-trips through decode.
    let rec = encode_record(42, b"123456789");
    let scan = decode_records(&rec, MAX_JOURNAL_PAYLOAD);
    assert_eq!(scan.records, vec![(42u64, b"123456789".to_vec())]);
    assert_ne!(record_crc(42, b"123456789"), record_crc(43, b"123456789"));
}
