//! Observability integration: the Prometheus exposition is golden under
//! a manual clock, Chrome trace exports round-trip through the
//! workspace's own wire parser, client `trace_id`s land in the span
//! ring, and fault-injection events share the span stream.

use std::sync::Arc;
use std::thread::JoinHandle;

use sit_obs::clock::ManualClock;
use sit_obs::trace::Phase;
use sit_server::fault::{EventLog, FaultConfig, FaultPlan, FaultedTransport, VirtualClock};
use sit_server::pool::ThreadPool;
use sit_server::serve_connection;
use sit_server::service::Service;
use sit_server::store::StoreConfig;
use sit_server::transport::{sim_pair, Transport};
use sit_server::wire::{FrameBuffer, Framed, Json};

const DDL1: &str = "schema sc1 { entity Student { Name: char key; GPA: real; } entity Department { Dname: char key; } relationship Majors { Student (0,1); Department (0,n); } }";
const DDL2: &str = "schema sc2 { entity Grad_student { Name: char key; GPA: real; } entity Department { Dname: char key; } relationship Majors { Grad_student (0,1); Department (0,n); } }";

fn ok_frame(service: &Service, line: &str) -> Json {
    let frame = service.handle_line(line).frame;
    let value = Json::parse(&frame).unwrap_or_else(|e| panic!("malformed frame {frame:?}: {e}"));
    assert_eq!(
        value.get("ok").and_then(Json::as_bool),
        Some(true),
        "{frame}"
    );
    value
}

/// Drive the integration demo end to end so the trace contains engine
/// spans, not just the request lifecycle.
fn drive_demo(service: &Service) {
    ok_frame(service, r#"{"op":"open"}"#);
    ok_frame(
        service,
        &format!(r#"{{"op":"add_schema","session":"1","ddl":"{DDL1}"}}"#),
    );
    ok_frame(
        service,
        &format!(r#"{{"op":"add_schema","session":"1","ddl":"{DDL2}"}}"#),
    );
    ok_frame(
        service,
        r#"{"op":"equiv","session":"1","a":"sc1.Student.Name","b":"sc2.Grad_student.Name"}"#,
    );
    ok_frame(
        service,
        r#"{"op":"equiv","session":"1","a":"sc1.Department.Dname","b":"sc2.Department.Dname"}"#,
    );
    ok_frame(service, r#"{"op":"candidates","session":"1","a":"sc1","b":"sc2"}"#);
    ok_frame(
        service,
        r#"{"op":"assert","session":"1","a":"sc1.Department","b":"sc2.Department","assertion":"equals"}"#,
    );
    ok_frame(
        service,
        r#"{"op":"assert","session":"1","a":"sc1.Student","b":"sc2.Grad_student","assertion":"contains"}"#,
    );
    ok_frame(
        service,
        r#"{"op":"integrate","session":"1","a":"sc1","b":"sc2","pull_up":false}"#,
    );
}

/// The exposition is a pure function of the request history when the
/// clock never moves: every latency is 0 ns (bucket `le="0"`), uptime is
/// 0, and the byte-exact text below is the format contract.
#[test]
fn metrics_text_is_golden_under_a_manual_clock() {
    let service = Service::with_clock(StoreConfig::default(), Arc::new(ManualClock::new()));
    ok_frame(&service, r#"{"op":"ping"}"#);
    ok_frame(&service, r#"{"op":"open"}"#);
    let value = ok_frame(&service, r#"{"op":"metrics_text"}"#);
    let text = value.get("text").and_then(Json::as_str).expect("text field");
    let expected = "\
# TYPE sit_uptime_ms gauge
sit_uptime_ms 0
# TYPE sit_sessions gauge
sit_sessions 1
# TYPE sit_sessions_evicted_total counter
sit_sessions_evicted_total{kind=\"lru\"} 0
sit_sessions_evicted_total{kind=\"ttl\"} 0
# TYPE sit_trace_events gauge
sit_trace_events 9
# TYPE sit_trace_events_dropped_total counter
sit_trace_events_dropped_total 0
# TYPE sit_requests_total counter
sit_requests_total{verb=\"open\"} 1
sit_requests_total{verb=\"ping\"} 1
# TYPE sit_request_errors_total counter
sit_request_errors_total{verb=\"open\"} 0
sit_request_errors_total{verb=\"ping\"} 0
# TYPE sit_request_latency_ns histogram
sit_request_latency_ns_bucket{verb=\"open\",le=\"0\"} 1
sit_request_latency_ns_bucket{verb=\"open\",le=\"+Inf\"} 1
sit_request_latency_ns_sum{verb=\"open\"} 0
sit_request_latency_ns_count{verb=\"open\"} 1
sit_request_latency_ns_bucket{verb=\"ping\",le=\"0\"} 1
sit_request_latency_ns_bucket{verb=\"ping\",le=\"+Inf\"} 1
sit_request_latency_ns_sum{verb=\"ping\"} 0
sit_request_latency_ns_count{verb=\"ping\"} 1
";
    assert_eq!(text, expected);
}

/// The exported Chrome trace must parse with the workspace's own JSON
/// parser and carry both request-lifecycle and engine spans with the
/// `trace_event` fields Perfetto expects.
#[test]
fn chrome_trace_round_trips_through_the_wire_parser() {
    let service = Service::new(StoreConfig::default());
    drive_demo(&service);

    let value = ok_frame(&service, r#"{"op":"trace_dump"}"#);
    let trace = value.get("trace").and_then(Json::as_str).expect("trace field");
    let chrome = Json::parse(trace).expect("exported trace is valid JSON");
    let events = chrome
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut names = Vec::new();
    for event in events {
        let name = event.get("name").and_then(Json::as_str).expect("name");
        let ph = event.get("ph").and_then(Json::as_str).expect("ph");
        assert!(ph == "X" || ph == "i", "unexpected phase {ph}");
        assert!(event.get("ts").and_then(Json::as_num).is_some(), "ts");
        if ph == "X" {
            assert!(event.get("dur").and_then(Json::as_num).is_some(), "dur");
        }
        assert_eq!(event.get("pid").and_then(Json::as_num), Some(1.0));
        names.push(name);
    }
    for expected in [
        "request",
        "parse",
        "dispatch",
        "encode",
        "session.add_schema",
        "acs.declare_equivalent",
        "ocs.ranked_pairs",
        "closure.assert",
        "integrate",
        "integrate.lattice",
        "integrate.attrs",
        "integrate.assemble",
        "integrate.rels",
    ] {
        assert!(names.contains(&expected), "missing span `{expected}` in {names:?}");
    }

    // Engine spans nest under their request: every `integrate` span has
    // a parent chain ending at a `request` span.
    let full = service.tracer().snapshot();
    let by_id: std::collections::HashMap<u64, &sit_obs::TraceEvent> =
        full.iter().map(|e| (e.id, e)).collect();
    let integrate = full
        .iter()
        .find(|e| e.name == "integrate")
        .expect("integrate span recorded");
    let mut cursor = integrate.parent;
    let mut reached_request = false;
    while let Some(pid) = cursor {
        let parent = by_id.get(&pid).expect("parent event in ring");
        if parent.name == "request" {
            reached_request = true;
            break;
        }
        cursor = parent.parent;
    }
    assert!(reached_request, "integrate span must nest under a request");
}

/// A client-supplied `trace_id` is attached to the request span, so a
/// dumped trace can be joined against client-side logs.
#[test]
fn client_trace_ids_propagate_into_request_spans() {
    let service = Service::new(StoreConfig::default());
    ok_frame(&service, r#"{"op":"ping","trace_id":"req-7f3a"}"#);
    let tagged = service
        .tracer()
        .snapshot()
        .into_iter()
        .find(|e| e.name == "request" && e.args.iter().any(|(k, _)| *k == "trace_id"))
        .expect("request span with trace_id");
    let (_, id) = tagged
        .args
        .iter()
        .find(|(k, _)| *k == "trace_id")
        .expect("trace_id arg");
    assert_eq!(id, "req-7f3a");
    assert!(matches!(tagged.phase, Phase::Complete));
}

/// Fault-injection events are mirrored onto the span stream: one
/// timeline shows both what the transport did and what the service did.
#[test]
fn fault_events_join_the_span_stream() {
    let clock = VirtualClock::new();
    let service = Arc::new(Service::with_clock(
        StoreConfig::default(),
        Arc::new(clock.clone()),
    ));
    let pool = Arc::new(ThreadPool::new(2, 8));
    let (mut client_end, server_end) = sim_pair();
    let log = EventLog::with_tracer(service.tracer().clone());
    let cfg = FaultConfig {
        min_segment: 1,
        max_segment: 3,
        delay_percent: 50,
        max_delay_ms: 5,
        read_drop_at: None,
        write_drop_at: None,
    };
    let faulted = FaultedTransport::new(
        server_end,
        0,
        FaultPlan::new(7, cfg),
        log.clone(),
        clock,
    );
    let svc = Arc::clone(&service);
    let pl = Arc::clone(&pool);
    let handle: JoinHandle<()> = std::thread::spawn(move || serve_connection(faulted, &svc, &pl));

    client_end.write_all(b"{\"op\":\"ping\"}\n").unwrap();
    let mut frames = FrameBuffer::new();
    let mut buf = [0u8; 256];
    loop {
        if let Some(Framed::Line(line)) = frames.next_frame() {
            assert!(line.contains("\"pong\":true"), "{line}");
            break;
        }
        match client_end.read(&mut buf) {
            Ok(0) | Err(_) => panic!("server hung up before answering"),
            Ok(n) => frames.push(&buf[..n]),
        }
    }
    drop(client_end);
    handle.join().unwrap();
    pool.shutdown();

    assert!(!log.snapshot().is_empty(), "faults fired");
    let faults: Vec<_> = service
        .tracer()
        .snapshot()
        .into_iter()
        .filter(|e| e.name == "fault")
        .collect();
    assert!(!faults.is_empty(), "fault events mirrored into the trace");
    for event in &faults {
        assert!(matches!(event.phase, Phase::Instant));
        assert!(
            event.args.iter().any(|(k, _)| *k == "event"),
            "fault instant carries the event text"
        );
    }
}
