//! Eviction boundary behavior of the [`SessionStore`]: exact-LRU victim
//! selection at capacity, lazy TTL expiry racing concurrent `get`s, and
//! the protocol-level guarantee that an evicted session answers
//! `unknown_session` — never `conflict` — when addressed again.

use std::time::Duration;

use sit_core::session::Session;
use sit_server::store::{SessionStore, StoreConfig};
use sit_server::{Json, Service};

fn store(max_sessions: usize, ttl: Option<Duration>) -> SessionStore {
    SessionStore::new(StoreConfig { max_sessions, ttl })
}

#[test]
fn insert_at_capacity_evicts_the_true_lru_not_the_oldest_insert() {
    let store = store(3, None);
    let a = store.open(Session::new());
    let b = store.open(Session::new());
    let c = store.open(Session::new());
    // `a` was inserted first but is the most recently USED: touching it
    // must protect it, making `b` the LRU victim.
    assert!(store.get(&a).is_some());
    let d = store.open(Session::new());
    assert_eq!(store.len(), 3);
    assert!(store.get(&a).is_some(), "recently-used survivor evicted");
    assert!(store.get(&b).is_none(), "true LRU entry was not evicted");
    assert!(store.get(&c).is_some());
    assert!(store.get(&d).is_some());
    assert_eq!(store.evictions(), (1, 0), "exactly one LRU eviction");
}

#[test]
fn repeated_touching_rotates_the_victim_order() {
    let store = store(2, None);
    let a = store.open(Session::new());
    let b = store.open(Session::new());
    // Alternate touches so the LRU victim flips each round.
    assert!(store.get(&a).is_some()); // order: b, a
    let c = store.open(Session::new()); // evicts b
    assert!(store.get(&b).is_none());
    assert!(store.get(&c).is_some()); // order: a, c
    let d = store.open(Session::new()); // evicts a
    assert!(store.get(&a).is_none());
    assert!(store.get(&c).is_some());
    assert!(store.get(&d).is_some());
    assert_eq!(store.evictions(), (2, 0));
}

#[test]
fn failed_gets_do_not_refresh_and_close_is_not_a_touch() {
    let store = store(2, None);
    let a = store.open(Session::new());
    let b = store.open(Session::new());
    // Addressing a bogus id is not a touch of anything.
    assert!(store.get("424242").is_none());
    assert!(store.get("not-a-number").is_none());
    // Closing `b` frees its slot outright; `a` remains.
    assert!(store.close(&b));
    assert!(!store.close(&b), "double close reports false");
    let c = store.open(Session::new());
    assert_eq!(store.len(), 2);
    assert!(store.get(&a).is_some(), "no eviction was needed");
    assert!(store.get(&c).is_some());
    assert_eq!(store.evictions(), (0, 0));
}

#[test]
fn ttl_expiry_is_lazy_and_counts_separately_from_lru() {
    let store = store(8, Some(Duration::from_millis(80)));
    let a = store.open(Session::new());
    let b = store.open(Session::new());
    std::thread::sleep(Duration::from_millis(50));
    // Refresh `a` midway: only `b` crosses the TTL.
    assert!(store.get(&a).is_some());
    std::thread::sleep(Duration::from_millis(50));
    assert!(store.get(&b).is_none(), "idle session survived its TTL");
    assert!(store.get(&a).is_some(), "refreshed session expired early");
    assert_eq!(store.evictions(), (0, 1));
}

#[test]
fn concurrent_gets_racing_ttl_expiry_never_panic_or_resurrect() {
    // Hammer `get` from many threads across the expiry boundary. The
    // lazy expiry path runs under the same registry lock as the gets,
    // so every get either refreshes the session (keeping it alive) or
    // finds it gone — never a torn state, never a panic, and once a
    // get has seen `None` no later get may see the session again.
    let store = std::sync::Arc::new(store(4, Some(Duration::from_millis(40))));
    let id = store.open(Session::new());
    let vanished = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut workers = Vec::new();
    for k in 0..4u64 {
        let store = std::sync::Arc::clone(&store);
        let vanished = std::sync::Arc::clone(&vanished);
        let id = id.clone();
        workers.push(std::thread::spawn(move || {
            for i in 0..40u64 {
                let hit = store.get(&id).is_some();
                if hit {
                    assert!(
                        !vanished.load(std::sync::atomic::Ordering::SeqCst),
                        "session resurrected after expiry was observed"
                    );
                } else {
                    vanished.store(true, std::sync::atomic::Ordering::SeqCst);
                }
                // Threads 0/1 poll fast (keeping the session hot at
                // first); 2/3 back off past the TTL so expiry does
                // eventually win the race.
                std::thread::sleep(Duration::from_millis(1 + (k % 2) * 25 + i / 20 * 25));
            }
        }));
    }
    for w in workers {
        w.join().expect("no panics under the race");
    }
    // Leave the session idle past the TTL: it must end up expired.
    std::thread::sleep(Duration::from_millis(60));
    assert!(store.get(&id).is_none());
    assert_eq!(store.evictions().0, 0, "no LRU pressure in this test");
}

#[test]
fn evicted_sessions_answer_unknown_session_not_conflict() {
    // Protocol-level: fill a capacity-1 store so opening a second
    // session evicts the first, then address the evicted id. The server
    // must say `unknown_session` (the id is gone), not `conflict` (which
    // would imply the session still exists in a bad state).
    let service = Service::new(StoreConfig {
        max_sessions: 1,
        ttl: None,
    });
    let open = |svc: &Service| -> String {
        let handled = svc.handle_line(r#"{"op":"open"}"#);
        let frame = Json::parse(&handled.frame).expect("open frame");
        frame
            .get("session")
            .and_then(Json::as_str)
            .expect("session id")
            .to_owned()
    };
    let first = open(&service);
    let _second = open(&service); // evicts `first`
    for line in [
        format!(r#"{{"op":"save","session":"{first}"}}"#),
        format!(r#"{{"op":"list_schemas","session":"{first}"}}"#),
        format!(r#"{{"op":"integrate","session":"{first}","a":"x","b":"y"}}"#),
    ] {
        let handled = service.handle_line(&line);
        let frame = Json::parse(&handled.frame).expect("error frame");
        let code = frame
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str);
        assert_eq!(
            code,
            Some("unknown_session"),
            "evicted id must be unknown, got: {}",
            handled.frame
        );
    }
    // `close` on the evicted id is a clean no-op, not an error.
    let handled = service.handle_line(&format!(r#"{{"op":"close","session":"{first}"}}"#));
    let frame = Json::parse(&handled.frame).expect("close frame");
    assert_eq!(frame.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(frame.get("closed").and_then(Json::as_bool), Some(false));
}
