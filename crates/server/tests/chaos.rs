//! Chaos suite: seeded multi-client fault scenarios against the real
//! serving stack.
//!
//! Each scenario builds a [`Service`] + worker pool, connects several
//! simulated clients through [`FaultedTransport`] (torn reads, short
//! writes, virtual-time stalls, planned connection drops), and drives a
//! seeded workload in lockstep — clients take turns, one outstanding
//! request each, so the interleaving (and therefore session ids, store
//! state, and every response byte) is a pure function of the seed. An
//! in-test oracle mirrors the store's capacity/LRU/TTL rules and checks
//! after every event:
//!
//! * (a) nothing panics and no lock is poisoned (serve threads are
//!   joined; the store is probed after every step);
//! * (b) every accepted request yields exactly one well-formed response
//!   frame or a typed error — or a planned drop, in which case the
//!   fault log says whether the request was applied (`write.drop`, the
//!   cut hit the response) or never executed (`read.drop`);
//! * (c) store invariants hold: live count ≤ capacity, the oracle's
//!   LRU/TTL model agrees with the store, evicted ids answer
//!   `unknown_session`.
//!
//! Every scenario runs twice and both traces must be byte-identical.
//! Set `SIT_CHAOS_TRACE=<path>` to dump all traces to a file —
//! `scripts/verify.sh` runs the suite twice and diffs the dumps.

use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sit_prng::Xoshiro256pp;
use sit_server::fault::{EventLog, FaultConfig, FaultEvent, FaultPlan, FaultedTransport, VirtualClock};
use sit_server::pool::ThreadPool;
use sit_server::serve_connection;
use sit_server::service::Service;
use sit_server::store::StoreConfig;
use sit_server::transport::{sim_pair, SimConn, Transport};
use sit_server::wire::{FrameBuffer, Framed, Json, MAX_LINE};

/// The fixed seed list (also the list `scripts/verify.sh chaos` pins).
const SCENARIO_SEEDS: [u64; 24] = [
    101, 102, 103, 104, 105, 106, 107, 108, 109, 110, 111, 112, 113, 114, 115, 116, 117, 118,
    119, 120, 121, 122, 123, 124,
];

const STORE_CAP: usize = 3;
const STEPS: usize = 36;

// ---------------------------------------------------------------------------
// Oracle: a model of the store's observable behavior.
// ---------------------------------------------------------------------------

/// Mirror of the session store: id counter, LRU order, eviction
/// counters. `live` is ordered least-recently-used first.
struct Model {
    cap: usize,
    next_id: u64,
    live: Vec<u64>,
    issued: Vec<u64>,
    evicted_lru: u64,
    evicted_ttl: u64,
}

impl Model {
    fn new(cap: usize) -> Model {
        Model {
            cap,
            next_id: 1,
            live: Vec::new(),
            issued: Vec::new(),
            evicted_lru: 0,
            evicted_ttl: 0,
        }
    }

    fn open(&mut self) -> u64 {
        while self.live.len() >= self.cap {
            self.live.remove(0);
            self.evicted_lru += 1;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.live.push(id);
        self.issued.push(id);
        id
    }

    fn is_live(&self, id: u64) -> bool {
        self.live.contains(&id)
    }

    /// Refresh the LRU stamp (any `get`-backed verb does this, even when
    /// the verb itself then fails).
    fn touch(&mut self, id: u64) {
        if let Some(pos) = self.live.iter().position(|&x| x == id) {
            let id = self.live.remove(pos);
            self.live.push(id);
        }
    }

    fn close(&mut self, id: u64) -> bool {
        match self.live.iter().position(|&x| x == id) {
            Some(pos) => {
                self.live.remove(pos);
                true
            }
            None => false,
        }
    }

    fn expire_all(&mut self) {
        self.evicted_ttl += self.live.len() as u64;
        self.live.clear();
    }
}

// ---------------------------------------------------------------------------
// Workload generation.
// ---------------------------------------------------------------------------

/// Scenario verbs. `stats` joins the byte-traced workload because the
/// scenario's service runs on its [`VirtualClock`]: uptime and every
/// latency are functions of virtual time, which advances only on
/// planned transport faults — never mid-dispatch in a lockstep
/// scenario — so the response bytes are a pure function of the seed
/// like every other verb. (`metrics_text`/`trace_dump` stay out: their
/// payloads embed the span ring, whose thread ids are process-global
/// and so not a function of the seed.)
#[derive(Clone, Debug)]
enum Op {
    Ping,
    Open,
    Close(u64),
    Save(u64),
    List(u64),
    Add(u64, usize),
    Stats,
    BadJson,
    BadVerb,
}

impl Op {
    fn frame(&self) -> String {
        match *self {
            Op::Ping => r#"{"op":"ping"}"#.into(),
            Op::Open => r#"{"op":"open"}"#.into(),
            Op::Close(id) => format!(r#"{{"op":"close","session":"{id}"}}"#),
            Op::Save(id) => format!(r#"{{"op":"save","session":"{id}"}}"#),
            Op::List(id) => format!(r#"{{"op":"list_schemas","session":"{id}"}}"#),
            Op::Add(id, step) => format!(
                r#"{{"op":"add_schema","session":"{id}","ddl":"schema s{step} {{ entity E{step} {{ Id: char key; }} }}"}}"#
            ),
            Op::Stats => r#"{"op":"stats"}"#.into(),
            Op::BadJson => "{chaos, not json".into(),
            Op::BadVerb => r#"{"op":"warp"}"#.into(),
        }
    }
}

/// Pick a session id for a verb: usually one the scenario issued
/// (possibly since evicted/closed), sometimes a never-issued id.
fn pick_id(rng: &mut Xoshiro256pp, model: &Model) -> u64 {
    if model.issued.is_empty() || rng.gen_bool(0.25) {
        7000 + rng.gen_range(0u64..9)
    } else {
        *rng.choose(&model.issued).expect("issued non-empty")
    }
}

fn gen_op(rng: &mut Xoshiro256pp, model: &Model, step: usize) -> Op {
    match rng.gen_range(0u32..23) {
        0..=2 => Op::Ping,
        3..=8 => Op::Open,
        9..=11 => Op::Close(pick_id(rng, model)),
        12..=14 => Op::Save(pick_id(rng, model)),
        15..=17 => Op::List(pick_id(rng, model)),
        18..=19 => Op::Add(pick_id(rng, model), step),
        20 => Op::Stats,
        21 => Op::BadJson,
        _ => Op::BadVerb,
    }
}

fn fault_config_for(rng: &mut Xoshiro256pp, mode: u64) -> FaultConfig {
    match mode {
        // Torn frames + virtual stalls, no drops.
        0 => FaultConfig {
            min_segment: 1,
            max_segment: 16,
            delay_percent: 30,
            max_delay_ms: 20,
            read_drop_at: None,
            write_drop_at: None,
        },
        // Inbound cut: the server loses a client mid-request.
        1 => FaultConfig {
            min_segment: 2,
            max_segment: 32,
            delay_percent: 20,
            max_delay_ms: 10,
            read_drop_at: Some(rng.gen_range(40u64..400)),
            write_drop_at: None,
        },
        // Outbound cut: a response is truncated mid-frame.
        2 => FaultConfig {
            min_segment: 2,
            max_segment: 32,
            delay_percent: 20,
            max_delay_ms: 10,
            read_drop_at: None,
            write_drop_at: Some(rng.gen_range(60u64..900)),
        },
        // TTL mode: gentle faults so the expiry semantics stay center
        // stage (the scenario sleeps past the store TTL once).
        3 => FaultConfig {
            min_segment: 4,
            max_segment: 64,
            delay_percent: 10,
            max_delay_ms: 5,
            read_drop_at: None,
            write_drop_at: None,
        },
        // Everything at once: byte-by-byte tearing, frequent stalls,
        // both cut kinds possible.
        _ => FaultConfig {
            min_segment: 1,
            max_segment: 3,
            delay_percent: 50,
            max_delay_ms: 5,
            read_drop_at: rng.gen_bool(0.5).then(|| rng.gen_range(200u64..1200)),
            write_drop_at: rng.gen_bool(0.5).then(|| rng.gen_range(300u64..1500)),
        },
    }
}

// ---------------------------------------------------------------------------
// Lockstep client.
// ---------------------------------------------------------------------------

struct ChaosClient {
    conn: SimConn,
    frames: FrameBuffer,
    dead: bool,
    handle: JoinHandle<()>,
}

enum Outcome {
    Response(String),
    Dead { partial: usize },
}

impl ChaosClient {
    /// Send one frame and block for its response (or the connection's
    /// death). Lockstep: at most one request is outstanding anywhere.
    fn call(&mut self, frame: &str) -> Outcome {
        let mut bytes = frame.as_bytes().to_vec();
        bytes.push(b'\n');
        if self.conn.write_all(&bytes).is_err() {
            return Outcome::Dead {
                partial: self.frames.buffered(),
            };
        }
        loop {
            if let Some(framed) = self.frames.next_frame() {
                match framed {
                    Framed::Line(line) => return Outcome::Response(line),
                    Framed::Overflow => panic!("server response exceeded MAX_LINE"),
                }
            }
            let mut buf = [0u8; 1024];
            match self.conn.read(&mut buf) {
                Ok(0) | Err(_) => {
                    return Outcome::Dead {
                        partial: self.frames.buffered(),
                    }
                }
                Ok(n) => self.frames.push(&buf[..n]),
            }
        }
    }
}

fn last_drop_for_conn(log: &EventLog, conn: u32) -> Option<FaultEvent> {
    log.snapshot()
        .into_iter()
        .rev()
        .find(|e| match *e {
            FaultEvent::ReadDrop { conn: c, .. } | FaultEvent::WriteDrop { conn: c, .. } => {
                c == conn
            }
            _ => false,
        })
}

// ---------------------------------------------------------------------------
// Oracle checks.
// ---------------------------------------------------------------------------

const KNOWN_CODES: [&str; 7] = [
    "parse",
    "bad_request",
    "unknown_session",
    "conflict",
    "core",
    "overloaded",
    "shutting_down",
];

/// Parse a response frame and enforce the protocol contract: valid
/// JSON, a boolean `ok`, and on failure a known error code.
fn check_frame(seed: u64, step: usize, frame: &str) -> Json {
    let value = Json::parse(frame)
        .unwrap_or_else(|e| panic!("seed={seed} s{step}: malformed response {frame:?}: {e}"));
    let ok = value
        .get("ok")
        .and_then(Json::as_bool)
        .unwrap_or_else(|| panic!("seed={seed} s{step}: response without ok: {frame}"));
    if !ok {
        let code = value
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("seed={seed} s{step}: error without code: {frame}"));
        assert!(
            KNOWN_CODES.contains(&code),
            "seed={seed} s{step}: unknown error code {code}"
        );
    }
    value
}

fn err_code(value: &Json) -> Option<&str> {
    value.get("error").and_then(|e| e.get("code")).and_then(Json::as_str)
}

fn is_ok(value: &Json) -> bool {
    value.get("ok").and_then(Json::as_bool) == Some(true)
}

/// Check a received response against the model and apply the op's
/// effect. Returns the trace form of the response.
fn apply_response(seed: u64, step: usize, op: &Op, frame: &str, model: &mut Model) -> String {
    let value = check_frame(seed, step, frame);
    let ctx = format!("seed={seed} s{step} op={op:?} resp={frame}");
    match *op {
        Op::Ping => assert!(is_ok(&value), "{ctx}"),
        Op::Open => {
            let expected = model.open();
            assert!(is_ok(&value), "{ctx}");
            let got = value.get("session").and_then(Json::as_str);
            assert_eq!(got, Some(expected.to_string().as_str()), "{ctx}");
        }
        Op::Close(id) => {
            let expected = model.close(id);
            assert!(is_ok(&value), "{ctx}");
            let got = value.get("closed").and_then(Json::as_bool);
            assert_eq!(got, Some(expected), "{ctx}");
        }
        Op::Save(id) | Op::List(id) | Op::Add(id, _) => {
            if model.is_live(id) {
                model.touch(id);
                assert!(is_ok(&value), "live session must serve: {ctx}");
            } else {
                // The eviction contract: a dead id is `unknown_session`,
                // never `conflict` or a panic.
                assert_eq!(err_code(&value), Some("unknown_session"), "{ctx}");
            }
        }
        Op::Stats => {
            assert!(is_ok(&value), "{ctx}");
            let got = value.get("sessions").and_then(Json::as_num);
            assert_eq!(got, Some(model.live.len() as f64), "{ctx}");
        }
        Op::BadJson => assert_eq!(err_code(&value), Some("parse"), "{ctx}"),
        Op::BadVerb => assert_eq!(err_code(&value), Some("bad_request"), "{ctx}"),
    }
    frame.to_owned()
}

/// Apply an op's effect without a response: the fault log proved the
/// request executed but its response was cut (`write.drop`).
fn apply_blind(op: &Op, model: &mut Model) {
    match *op {
        Op::Open => {
            model.open();
        }
        Op::Close(id) => {
            model.close(id);
        }
        Op::Save(id) | Op::List(id) | Op::Add(id, _) => {
            if model.is_live(id) {
                model.touch(id);
            }
        }
        Op::Ping | Op::Stats | Op::BadJson | Op::BadVerb => {}
    }
}

// ---------------------------------------------------------------------------
// Scenario runner.
// ---------------------------------------------------------------------------

fn run_scenario(seed: u64) -> Vec<String> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(seed));
    let n_clients = 2 + (seed % 3) as usize;
    let mode = seed % 5;
    let ttl_mode = mode == 3;
    let ttl = if ttl_mode {
        Duration::from_millis(350)
    } else {
        Duration::from_secs(600)
    };

    // The service shares the scenario's virtual clock, so the timing
    // fields in `stats` responses are deterministic (see [`Op`]).
    let clock = VirtualClock::new();
    let service = Arc::new(Service::with_clock(
        StoreConfig {
            max_sessions: STORE_CAP,
            ttl: Some(ttl),
        },
        Arc::new(clock.clone()),
    ));
    let pool = Arc::new(ThreadPool::new(2, 16));
    let log = EventLog::with_tracer(service.tracer().clone());

    let mut clients: Vec<ChaosClient> = Vec::new();
    let mut trace = vec![format!("scenario seed={seed} clients={n_clients} mode={mode}")];
    for k in 0..n_clients {
        let cfg = fault_config_for(&mut rng, mode);
        trace.push(format!(
            "c{k} faults seg={}..={} delay={}%/{}ms rdrop={:?} wdrop={:?}",
            cfg.min_segment,
            cfg.max_segment,
            cfg.delay_percent,
            cfg.max_delay_ms,
            cfg.read_drop_at,
            cfg.write_drop_at
        ));
        let (client_end, server_end) = sim_pair();
        let closer = server_end.interrupter();
        let pair_closer = client_end.interrupter();
        let plan = FaultPlan::new(seed.wrapping_mul(31).wrapping_add(k as u64), cfg);
        let faulted = FaultedTransport::new(server_end, k as u32, plan, log.clone(), clock.clone())
            .on_kill(move || {
                // Cut both directions so neither side blocks on the
                // half-dead pipe.
                closer.interrupt();
                pair_closer.interrupt();
            });
        let svc = Arc::clone(&service);
        let pl = Arc::clone(&pool);
        let handle = std::thread::Builder::new()
            .name(format!("chaos-conn-{k}"))
            .spawn(move || serve_connection(faulted, &svc, &pl))
            .expect("spawn serve thread");
        clients.push(ChaosClient {
            conn: client_end,
            frames: FrameBuffer::new(),
            dead: false,
            handle,
        });
    }

    let mut model = Model::new(STORE_CAP);
    for step in 0..STEPS {
        if ttl_mode && step == STEPS / 2 {
            // Sleep past the TTL, then force the lazy expiry via a
            // registry op so model and store agree from here on.
            std::thread::sleep(Duration::from_millis(900));
            model.expire_all();
            let len = service.store().len();
            assert_eq!(len, 0, "seed={seed}: all sessions idle past ttl");
            trace.push(format!("s{step} ttl-sleep expired all"));
        }
        let k = step % n_clients;
        if clients[k].dead {
            trace.push(format!("s{step} c{k} skip(dead)"));
            continue;
        }
        let op = gen_op(&mut rng, &model, step);
        let frame = op.frame();
        trace.push(format!("s{step} c{k} > {frame}"));
        match clients[k].call(&frame) {
            Outcome::Response(resp) => {
                let shown = apply_response(seed, step, &op, &resp, &mut model);
                assert_eq!(
                    clients[k].frames.buffered(),
                    0,
                    "seed={seed} s{step}: exactly one response frame per request"
                );
                trace.push(format!("s{step} c{k} < {shown}"));
            }
            Outcome::Dead { partial } => {
                clients[k].dead = true;
                let cause = last_drop_for_conn(&log, k as u32);
                match cause {
                    Some(FaultEvent::WriteDrop { .. }) => apply_blind(&op, &mut model),
                    Some(FaultEvent::ReadDrop { .. }) | None => {}
                    Some(other) => panic!("seed={seed} s{step}: non-drop cause {other}"),
                }
                let cause = cause.map_or_else(|| "eof".to_owned(), |e| e.to_string());
                trace.push(format!("s{step} c{k} DEAD partial={partial} cause={cause}"));
            }
        }
        // Store invariants after every event: bounded, and the oracle's
        // live-set mirrors the store exactly. (`len` also exercises the
        // registry lock — a poisoned lock panics here, failing (a).)
        let len = service.store().len();
        assert!(len <= STORE_CAP, "seed={seed} s{step}: capacity exceeded");
        assert_eq!(len, model.live.len(), "seed={seed} s{step}: live-set drift");
        let (lru, ttl_ev) = service.store().evictions();
        assert_eq!(lru, model.evicted_lru, "seed={seed} s{step}: lru counter drift");
        assert_eq!(ttl_ev, model.evicted_ttl, "seed={seed} s{step}: ttl counter drift");
    }

    // Teardown: hang up every client, join every serve thread — a panic
    // in any of them fails the scenario here (invariant (a)).
    for (k, client) in clients.into_iter().enumerate() {
        drop(client.conn);
        client
            .handle
            .join()
            .unwrap_or_else(|_| panic!("seed={seed}: serve thread c{k} panicked"));
    }
    pool.shutdown();

    // The fault trace, per connection (per-connection order is
    // deterministic; global interleaving of *logging* is not).
    for k in 0..n_clients {
        for event in log.snapshot() {
            let conn = match event {
                FaultEvent::ReadSplit { conn, .. }
                | FaultEvent::ReadDelay { conn, .. }
                | FaultEvent::ReadDrop { conn, .. }
                | FaultEvent::WriteSplit { conn, .. }
                | FaultEvent::WriteDelay { conn, .. }
                | FaultEvent::WriteDrop { conn, .. } => conn,
                // Storage faults are not connection-scoped; this suite
                // drives transports only.
                FaultEvent::StorageTorn { .. }
                | FaultEvent::StorageShort { .. }
                | FaultEvent::StorageCrash { .. } => continue,
            };
            if conn == k as u32 {
                trace.push(format!("fault {event}"));
            }
        }
    }
    trace.push(format!("clock {}ms", clock.now_ms()));
    let (lru, ttl_ev) = service.store().evictions();
    trace.push(format!(
        "store len={} evicted_lru={lru} evicted_ttl={ttl_ev}",
        service.store().len()
    ));
    trace
}

// ---------------------------------------------------------------------------
// The suite.
// ---------------------------------------------------------------------------

/// ≥ 20 seeded scenarios; each runs twice and the event traces must be
/// byte-identical. `SIT_CHAOS_TRACE=<path>` dumps the combined trace.
#[test]
fn chaos_scenarios_are_deterministic_and_hold_invariants() {
    let mut combined = String::new();
    for &seed in &SCENARIO_SEEDS {
        let first = run_scenario(seed);
        let second = run_scenario(seed);
        for (i, (a, b)) in first.iter().zip(second.iter()).enumerate() {
            assert_eq!(
                a, b,
                "seed={seed}: trace diverges at line {i} (of {}/{})",
                first.len(),
                second.len()
            );
        }
        assert_eq!(
            first.len(),
            second.len(),
            "seed={seed}: trace lengths diverge"
        );
        for line in &first {
            combined.push_str(line);
            combined.push('\n');
        }
    }
    if let Ok(path) = std::env::var("SIT_CHAOS_TRACE") {
        std::fs::write(&path, combined).expect("write chaos trace dump");
    }
}

/// Pool saturation surfaces as the typed `overloaded` error on the wire
/// (not a hang, not a dropped frame), and the connection recovers once
/// the pool frees up.
#[test]
fn saturated_pool_answers_overloaded_then_recovers() {
    let service = Arc::new(Service::new(StoreConfig::default()));
    let pool = Arc::new(ThreadPool::new(1, 1));
    let (client_end, server_end) = sim_pair();
    let svc = Arc::clone(&service);
    let pl = Arc::clone(&pool);
    let handle = std::thread::spawn(move || serve_connection(server_end, &svc, &pl));

    let mut client = ChaosClient {
        conn: client_end,
        frames: FrameBuffer::new(),
        dead: false,
        handle,
    };

    // Occupy the single worker behind a gate, then fill the queue.
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let gate_rx = Arc::new(Mutex::new(gate_rx));
    let blocker = Arc::clone(&gate_rx);
    pool.submit(Box::new(move || {
        blocker.lock().unwrap().recv().ok();
    }))
    .unwrap();
    while pool.queued() > 0 {
        std::thread::yield_now();
    }
    pool.submit(Box::new(|| {})).unwrap();
    assert_eq!(pool.queued(), pool.capacity(), "queue saturated");

    // A request now bounces with the typed backpressure error.
    let Outcome::Response(resp) = client.call(r#"{"op":"ping"}"#) else {
        panic!("saturated pool must answer, not drop");
    };
    let value = Json::parse(&resp).unwrap();
    assert_eq!(err_code(&value), Some("overloaded"), "{resp}");

    // Release the worker; the same connection recovers.
    gate_tx.send(()).unwrap();
    let mut recovered = false;
    for _ in 0..200 {
        match client.call(r#"{"op":"ping"}"#) {
            Outcome::Response(resp) if resp.contains("\"pong\":true") => {
                recovered = true;
                break;
            }
            Outcome::Response(_) => std::thread::sleep(Duration::from_millis(2)),
            Outcome::Dead { .. } => panic!("connection died during recovery"),
        }
    }
    assert!(recovered, "connection must recover after the pool drains");

    drop(client.conn);
    client.handle.join().unwrap();
    pool.shutdown();
}

/// A frame that exceeds `MAX_LINE` without a newline cannot be
/// resynchronized: the server answers one typed `parse` error and closes.
#[test]
fn oversized_frame_gets_parse_error_then_close() {
    let service = Arc::new(Service::new(StoreConfig::default()));
    let pool = Arc::new(ThreadPool::new(2, 8));
    let (mut client_end, server_end) = sim_pair();
    let svc = Arc::clone(&service);
    let pl = Arc::clone(&pool);
    let handle = std::thread::spawn(move || serve_connection(server_end, &svc, &pl));

    let flood = vec![b'x'; MAX_LINE + 16];
    client_end.write_all(&flood).unwrap();

    let mut frames = FrameBuffer::new();
    let mut buf = [0u8; 1024];
    let response = loop {
        if let Some(Framed::Line(line)) = frames.next_frame() {
            break line;
        }
        match client_end.read(&mut buf) {
            Ok(0) | Err(_) => panic!("expected a parse-error response before close"),
            Ok(n) => frames.push(&buf[..n]),
        }
    };
    let value = Json::parse(&response).unwrap();
    assert_eq!(err_code(&value), Some("parse"), "{response}");

    // Then EOF: the connection is closed, not resynchronized.
    loop {
        match client_end.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    handle.join().unwrap();
    pool.shutdown();
}

/// Drop-mid-frame from the client side: bytes of a request with no
/// newline, then hangup. The server must discard the partial frame
/// without executing it.
#[test]
fn client_hangup_mid_frame_never_executes_the_partial_request() {
    let service = Arc::new(Service::new(StoreConfig::default()));
    let pool = Arc::new(ThreadPool::new(2, 8));
    let (mut client_end, server_end) = sim_pair();
    let svc = Arc::clone(&service);
    let pl = Arc::clone(&pool);
    let handle = std::thread::spawn(move || serve_connection(server_end, &svc, &pl));

    client_end.write_all(br#"{"op":"open"#).unwrap();
    drop(client_end);
    handle.join().unwrap();
    assert_eq!(service.store().len(), 0, "partial open must not execute");
    pool.shutdown();
}

/// `stats` through a byte-by-byte torn, stalled transport must still
/// answer well-formed with the right session count (the seeded
/// scenarios mix `stats` in too, but under gentler tearing).
#[test]
fn stats_under_torn_frames_is_well_formed() {
    let service = Arc::new(Service::new(StoreConfig::default()));
    let pool = Arc::new(ThreadPool::new(2, 8));
    let (client_end, server_end) = sim_pair();
    let cfg = FaultConfig {
        min_segment: 1,
        max_segment: 3,
        delay_percent: 50,
        max_delay_ms: 5,
        read_drop_at: None,
        write_drop_at: None,
    };
    let log = EventLog::new();
    let faulted = FaultedTransport::new(
        server_end,
        0,
        FaultPlan::new(42, cfg),
        log.clone(),
        VirtualClock::new(),
    );
    let svc = Arc::clone(&service);
    let pl = Arc::clone(&pool);
    let handle = std::thread::spawn(move || serve_connection(faulted, &svc, &pl));
    let mut client = ChaosClient {
        conn: client_end,
        frames: FrameBuffer::new(),
        dead: false,
        handle,
    };

    let Outcome::Response(opened) = client.call(r#"{"op":"open"}"#) else {
        panic!("open dropped");
    };
    assert!(is_ok(&Json::parse(&opened).unwrap()), "{opened}");
    let Outcome::Response(stats) = client.call(r#"{"op":"stats"}"#) else {
        panic!("stats dropped");
    };
    let value = Json::parse(&stats).unwrap();
    assert!(is_ok(&value), "{stats}");
    assert_eq!(
        value.get("sessions").and_then(Json::as_num),
        Some(1.0),
        "{stats}"
    );
    assert!(
        !log.snapshot().is_empty(),
        "byte-by-byte segments must have fired fault events"
    );

    drop(client.conn);
    client.handle.join().unwrap();
    pool.shutdown();
}
