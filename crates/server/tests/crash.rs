//! Crash-recovery chaos suite: kill the persistence layer at **every**
//! byte offset and prove the durability contract.
//!
//! The contract under test (DESIGN.md §8): *a mutation acknowledged
//! `ok:true` under `fsync=always` is recovered after any crash*. The
//! suite runs a fixed workload over a [`FaultedStorage`] with no crash
//! point to learn the total byte budget `B`, then replays the same
//! workload once per crash offset `c ∈ 0..=B`. Each iteration:
//!
//! 1. drives the workload against a durable service whose storage dies
//!    the moment cumulative written bytes exceed `c` (torn prefix
//!    included, like a real partial write);
//! 2. collects exactly the frames the dying server acknowledged;
//! 3. feeds those acknowledged frames to a plain in-memory *oracle*
//!    service — the state the client is entitled to;
//! 4. recovers a fresh durable service from the raw storage underneath
//!    the crash (as a restarted process would) and asserts every
//!    surviving session's `script::save` output is **byte-identical**
//!    to the oracle's.
//!
//! The sweep runs with both `atomic_tear` settings, so torn snapshots
//! and torn compactions (rename-promoted partial temp files) are
//! covered as well as torn journal appends. Separate tests cover
//! transient short writes (the repair path), power loss under each
//! fsync policy (`MemStorage::lose_unsynced`), and determinism of the
//! whole fault schedule.

use std::sync::Arc;

use sit_obs::clock::MonotonicClock;
use sit_server::fault::{EventLog, FaultedStorage, StorageFaultConfig};
use sit_server::storage::{MemStorage, Storage};
use sit_server::wire::Json;
use sit_server::{FsyncPolicy, PersistConfig, Service, StoreConfig};

/// Two deliberately tiny schemas: the sweep cost is linear in total
/// bytes written, so every journal/snapshot byte is swept in seconds.
const DDL_A: &str =
    "schema sa { entity P { N: char key; } entity Q { M: char key; } relationship R { P (0,1); Q (0,n); } }";
const DDL_B: &str = "schema sb { entity P2 { N: char key; } }";

/// The fixed workload, as raw wire frames. Session ids are assigned
/// deterministically ("1", "2", "3" in open order). The workload
/// crosses every persistence path: journal appends, an apply-time
/// failure that still hits the journal (the bogus equiv), snapshots +
/// compaction (snapshot_every=2), generation pruning, and `close`.
fn workload() -> Vec<String> {
    let f = |s: &str| s.to_owned();
    vec![
        f(r#"{"op":"open"}"#),
        format!(r#"{{"op":"add_schema","session":"1","ddl":"{}"}}"#, DDL_A),
        format!(r#"{{"op":"add_schema","session":"1","ddl":"{}"}}"#, DDL_B),
        f(r#"{"op":"equiv","session":"1","a":"sa.P.N","b":"sb.P2.N"}"#),
        f(r#"{"op":"assert","session":"1","a":"sa.P","b":"sb.P2","assertion":"equals"}"#),
        f(r#"{"op":"open"}"#),
        format!(r#"{{"op":"add_schema","session":"2","ddl":"{}"}}"#, DDL_A),
        // Journaled (write-ahead) but fails at apply time: replay must
        // fail identically and leave no trace in the recovered state.
        f(r#"{"op":"equiv","session":"1","a":"sa.P.Nope","b":"sb.P2.N"}"#),
        f(r#"{"op":"save","session":"1"}"#),
        format!(r#"{{"op":"add_schema","session":"2","ddl":"{}"}}"#, DDL_B),
        f(r#"{"op":"equiv","session":"2","a":"sa.Q.M","b":"sb.P2.N"}"#),
        f(r#"{"op":"close","session":"2"}"#),
        f(r#"{"op":"open"}"#),
        format!(r#"{{"op":"add_schema","session":"3","ddl":"{}"}}"#, DDL_B),
        // Conflicts with the constraint derived from the `equals`
        // assertion above — journaled, fails at apply, fails on replay.
        f(r#"{"op":"assert","session":"1","a":"sa.Q","b":"sb.P2","assertion":"contains"}"#),
        f(r#"{"op":"equiv","session":"1","a":"sa.Q.M","b":"sb.P2.N"}"#),
    ]
}

fn persist_config(fsync: FsyncPolicy) -> PersistConfig {
    PersistConfig {
        fsync,
        snapshot_every: 2,
    }
}

fn durable_service(storage: Arc<dyn Storage>, fsync: FsyncPolicy) -> Service {
    Service::with_persistence(
        StoreConfig::default(),
        Arc::new(MonotonicClock::new()),
        storage,
        persist_config(fsync),
    )
    .expect("recovery must not error")
}

fn acked(frame: &str) -> bool {
    Json::parse(frame)
        .ok()
        .and_then(|v| v.get("ok").and_then(Json::as_bool))
        == Some(true)
}

/// Drive `frames` through `service`; return the acknowledged ones.
fn drive(service: &Service, frames: &[String]) -> Vec<String> {
    frames
        .iter()
        .filter(|f| acked(&service.handle_line(f).frame))
        .cloned()
        .collect()
}

/// Sessions still open after the acknowledged prefix: opens assign
/// "1", "2", ... in order; an acknowledged close removes one.
fn live_sessions(acked_frames: &[String]) -> Vec<String> {
    let mut next = 1u64;
    let mut live: Vec<String> = Vec::new();
    for frame in acked_frames {
        let v = Json::parse(frame).expect("workload frames are valid JSON");
        match v.get("op").and_then(Json::as_str) {
            Some("open") => {
                live.push(next.to_string());
                next += 1;
            }
            Some("close") => {
                let sid = v.get("session").and_then(Json::as_str).unwrap().to_owned();
                live.retain(|s| *s != sid);
            }
            _ => {}
        }
    }
    live
}

fn save_frame(service: &Service, sid: &str) -> String {
    let frame = format!(r#"{{"op":"save","session":"{sid}"}}"#);
    let out = service.handle_line(&frame).frame;
    assert!(acked(&out), "save of session {sid} failed: {out}");
    out
}

/// The whole contract, for one crash offset: recovered == oracle.
fn check_crash_point(c: u64, atomic_tear: bool) {
    let mem = Arc::new(MemStorage::new());
    let faulted = Arc::new(FaultedStorage::new(
        Arc::clone(&mem) as Arc<dyn Storage>,
        StorageFaultConfig {
            crash_after_bytes: Some(c),
            atomic_tear,
            ..Default::default()
        },
        EventLog::new(),
    ));
    let crashing = durable_service(faulted as Arc<dyn Storage>, FsyncPolicy::Always);
    let acked_frames = drive(&crashing, &workload());
    drop(crashing);

    // The state the client is entitled to: exactly what was acked.
    let oracle = Service::new(StoreConfig::default());
    for frame in &acked_frames {
        let out = oracle.handle_line(frame).frame;
        assert!(
            acked(&out),
            "acked frame must replay cleanly on the oracle (c={c}): {frame} -> {out}"
        );
    }

    // Restart: recover from the raw storage under the crash.
    let recovered = durable_service(Arc::clone(&mem) as Arc<dyn Storage>, FsyncPolicy::Always);
    let live = live_sessions(&acked_frames);
    for sid in &live {
        assert_eq!(
            save_frame(&oracle, sid),
            save_frame(&recovered, sid),
            "session {sid} diverged after crash at byte {c} (atomic_tear={atomic_tear})"
        );
    }
    let tracked = recovered
        .persistence()
        .expect("recovered service is durable")
        .tracked();
    assert_eq!(
        tracked,
        live.len(),
        "recovery resurrected or lost sessions at byte {c} (atomic_tear={atomic_tear})"
    );
}

/// Learn the sweep budget: total bytes the workload writes when
/// nothing crashes.
fn byte_budget() -> u64 {
    let mem = Arc::new(MemStorage::new());
    let faulted = Arc::new(FaultedStorage::new(
        mem as Arc<dyn Storage>,
        StorageFaultConfig::default(),
        EventLog::new(),
    ));
    let probe = Arc::clone(&faulted);
    let service = durable_service(faulted as Arc<dyn Storage>, FsyncPolicy::Always);
    let frames = workload();
    let acked_count = drive(&service, &frames).len();
    // Two frames (the bogus equiv and the conflicting assert) fail at
    // apply time by design.
    assert_eq!(
        acked_count,
        frames.len() - 2,
        "fault-free workload must ack everything except the two designed apply failures"
    );
    let budget = probe.bytes_written();
    assert!(budget > 0, "workload must write journal bytes");
    budget
}

#[test]
fn every_crash_offset_recovers_the_acknowledged_state() {
    let budget = byte_budget();
    for c in 0..=budget {
        check_crash_point(c, false);
    }
}

#[test]
fn every_crash_offset_recovers_with_torn_atomic_renames() {
    let budget = byte_budget();
    for c in 0..=budget {
        check_crash_point(c, true);
    }
}

#[test]
fn transient_short_writes_are_repaired_and_lose_nothing() {
    for seed in 0..8u64 {
        let mem = Arc::new(MemStorage::new());
        let faulted = Arc::new(FaultedStorage::new(
            Arc::clone(&mem) as Arc<dyn Storage>,
            StorageFaultConfig {
                short_write_percent: 35,
                seed,
                ..Default::default()
            },
            EventLog::new(),
        ));
        let flaky = durable_service(faulted as Arc<dyn Storage>, FsyncPolicy::Always);
        let acked_frames = drive(&flaky, &workload());
        drop(flaky);

        let oracle = Service::new(StoreConfig::default());
        for frame in &acked_frames {
            assert!(acked(&oracle.handle_line(frame).frame));
        }
        let recovered =
            durable_service(Arc::clone(&mem) as Arc<dyn Storage>, FsyncPolicy::Always);
        for sid in &live_sessions(&acked_frames) {
            assert_eq!(
                save_frame(&oracle, sid),
                save_frame(&recovered, sid),
                "short writes (seed {seed}) corrupted session {sid}"
            );
        }
    }
}

#[test]
fn power_loss_under_fsync_always_keeps_every_acknowledged_mutation() {
    let mem = Arc::new(MemStorage::new());
    let service = durable_service(Arc::clone(&mem) as Arc<dyn Storage>, FsyncPolicy::Always);
    let acked_frames = drive(&service, &workload());
    drop(service);
    mem.lose_unsynced(); // power loss, not just a process crash

    let oracle = Service::new(StoreConfig::default());
    for frame in &acked_frames {
        assert!(acked(&oracle.handle_line(frame).frame));
    }
    let recovered = durable_service(Arc::clone(&mem) as Arc<dyn Storage>, FsyncPolicy::Always);
    for sid in &live_sessions(&acked_frames) {
        assert_eq!(
            save_frame(&oracle, sid),
            save_frame(&recovered, sid),
            "fsync=always must survive power loss byte-for-byte"
        );
    }
}

/// Weaker policies only promise a *prefix* of the acknowledged
/// history per session: replay the acked frames on an oracle, record
/// every intermediate state of every session, and require the
/// recovered state to be one of them.
fn power_loss_recovers_a_prefix(fsync: FsyncPolicy) {
    use std::collections::HashMap;
    let mem = Arc::new(MemStorage::new());
    let service = durable_service(Arc::clone(&mem) as Arc<dyn Storage>, fsync);
    let acked_frames = drive(&service, &workload());
    drop(service);
    mem.lose_unsynced();

    // Replay on the oracle, recording every intermediate state of
    // every session — the empty just-opened state lands in the list
    // via the `open` frame itself.
    let oracle = Service::new(StoreConfig::default());
    let mut prefixes: HashMap<String, Vec<String>> = HashMap::new();
    for (i, frame) in acked_frames.iter().enumerate() {
        assert!(acked(&oracle.handle_line(frame).frame));
        for sid in &live_sessions(&acked_frames[..=i]) {
            prefixes
                .entry(sid.clone())
                .or_default()
                .push(save_frame(&oracle, sid));
        }
    }

    let recovered = durable_service(Arc::clone(&mem) as Arc<dyn Storage>, fsync);
    for sid in &live_sessions(&acked_frames) {
        let got = save_frame(&recovered, sid);
        assert!(
            prefixes.get(sid).is_some_and(|states| states.contains(&got)),
            "{fsync}: session {sid} recovered to a state that was never \
             a prefix of its acknowledged history: {got}"
        );
    }
}

#[test]
fn power_loss_under_fsync_every_n_recovers_an_acknowledged_prefix() {
    power_loss_recovers_a_prefix(FsyncPolicy::EveryN(3));
}

#[test]
fn power_loss_under_fsync_never_recovers_an_acknowledged_prefix() {
    power_loss_recovers_a_prefix(FsyncPolicy::Never);
}

/// Same seed, same crash point ⇒ identical fault schedule, identical
/// acknowledgements, identical recovered bytes. The suite is a
/// debugger, not a dice roll.
#[test]
fn the_fault_schedule_is_deterministic() {
    let run = |crash: u64| -> (Vec<String>, Vec<String>, Vec<String>) {
        let mem = Arc::new(MemStorage::new());
        let log = EventLog::new();
        let faulted = Arc::new(FaultedStorage::new(
            Arc::clone(&mem) as Arc<dyn Storage>,
            StorageFaultConfig {
                crash_after_bytes: Some(crash),
                atomic_tear: true,
                short_write_percent: 20,
                seed: 7,
            },
            log.clone(),
        ));
        let service = durable_service(faulted as Arc<dyn Storage>, FsyncPolicy::Always);
        let acked_frames = drive(&service, &workload());
        drop(service);
        let events: Vec<String> = log.snapshot().iter().map(|e| e.to_string()).collect();
        let recovered =
            durable_service(Arc::clone(&mem) as Arc<dyn Storage>, FsyncPolicy::Always);
        let saves = live_sessions(&acked_frames)
            .iter()
            .map(|sid| save_frame(&recovered, sid))
            .collect();
        (acked_frames, events, saves)
    };
    for crash in [150, 900, 2500] {
        assert_eq!(run(crash), run(crash), "crash budget {crash} diverged");
    }
}

/// The sweep genuinely exercises torn tails and journaled-but-failed
/// replays: recovery metrics across a coarse sweep must show both.
#[test]
fn the_sweep_exercises_torn_tails_and_replay_errors() {
    let budget = byte_budget();
    let mut truncated = 0u64;
    let mut replay_errors = 0u64;
    for c in (0..=budget).step_by(7) {
        let mem = Arc::new(MemStorage::new());
        let faulted = Arc::new(FaultedStorage::new(
            Arc::clone(&mem) as Arc<dyn Storage>,
            StorageFaultConfig {
                crash_after_bytes: Some(c),
                atomic_tear: true,
                ..Default::default()
            },
            EventLog::new(),
        ));
        let crashing = durable_service(faulted as Arc<dyn Storage>, FsyncPolicy::Always);
        drive(&crashing, &workload());
        drop(crashing);
        let recovered =
            durable_service(Arc::clone(&mem) as Arc<dyn Storage>, FsyncPolicy::Always);
        let m = recovered.persistence().unwrap().metrics();
        truncated += m.recover_truncated_bytes.get();
        replay_errors += m.replay_errors.get();
    }
    assert!(truncated > 0, "no crash offset produced a torn journal tail");
    assert!(
        replay_errors > 0,
        "no crash offset replayed the journaled apply-time failure"
    );
}
