//! xoshiro256++: the sampling workhorse.

use crate::splitmix::SplitMix64;

/// xoshiro256++ (Blackman & Vigna, "Scrambled linear pseudorandom number
/// generators", 2019). 256 bits of state, period 2²⁵⁶−1, all-purpose
/// 64-bit output — matching the public-domain C reference bit for bit
/// (see the known-answer test).
///
/// The sampling surface mirrors what the workspace previously used from
/// `rand`: [`gen_range`](Self::gen_range), [`gen_bool`](Self::gen_bool),
/// [`gen_f64`](Self::gen_f64), [`shuffle`](Self::shuffle),
/// [`choose`](Self::choose), and
/// [`choose_weighted`](Self::choose_weighted).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed via SplitMix64, the construction the xoshiro authors
    /// recommend: any 64-bit seed (zero included) produces a good,
    /// non-degenerate state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self::from_state([sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()])
    }

    /// Generator from raw state. The state must not be all zero (the only
    /// fixed point of the underlying linear engine).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256++ state must be non-zero");
        Self { s }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `0..bound` without modulo bias (Lemire's
    /// widening-multiply rejection method). Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(bound);
            if m as u64 >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        self.gen_f64() < p
    }

    /// Uniform draw from a half-open integer range, e.g.
    /// `rng.gen_range(0..n)`. Panics on an empty range.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Uniformly chosen element, `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.next_below(xs.len() as u64) as usize])
        }
    }

    /// Element chosen with probability proportional to `weight`. Weights
    /// must be finite and non-negative; `None` when the slice is empty or
    /// all weights are zero.
    pub fn choose_weighted<'a, T>(
        &mut self,
        xs: &'a [T],
        weight: impl Fn(&T) -> f64,
    ) -> Option<&'a T> {
        let total: f64 = xs
            .iter()
            .map(|x| {
                let w = weight(x);
                assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
                w
            })
            .sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.gen_f64() * total;
        for x in xs {
            let w = weight(x);
            if target < w {
                return Some(x);
            }
            target -= w;
        }
        // Floating-point slack put the target past the last positive
        // weight; return the last weighted element.
        xs.iter().rev().find(|x| weight(x) > 0.0)
    }

    /// Independent generator seeded from this stream — distinct streams
    /// for sub-tasks without sharing state.
    pub fn fork(&mut self) -> Self {
        let seed = self.next_u64();
        Self::seed_from_u64(seed)
    }
}

/// Integer ranges [`Xoshiro256pp::gen_range`] can sample uniformly.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draw uniformly from `self`.
    fn sample(self, rng: &mut Xoshiro256pp) -> Self::Output;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Xoshiro256pp) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Xoshiro256pp) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}
impl_uniform_signed!(i32, i64);

#[cfg(test)]
mod tests {
    use super::*;

    /// Output of the public-domain reference implementation for state
    /// `[1, 2, 3, 4]` (the vector rand_xoshiro also checks against).
    #[test]
    fn known_answer_reference_state() {
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        let expected: [u64; 10] = [
            41_943_041,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
            9_973_669_472_204_895_162,
            14_011_001_112_246_962_877,
            12_406_186_145_184_390_807,
            15_849_039_046_786_891_736,
            10_450_023_813_501_588_000,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "output {i}");
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::seed_from_u64(7);
        let mut b = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256pp::seed_from_u64(8);
        assert_ne!(Xoshiro256pp::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256pp::from_state([0; 4]);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all_values() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached: {seen:?}");
        // Signed ranges too.
        for _ in 0..100 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits} ≈ 2500");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Xoshiro256pp::seed_from_u64(14);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "50 elements virtually never shuffle to identity");
        // Same seed, same permutation.
        let mut rng2 = Xoshiro256pp::seed_from_u64(14);
        let mut ys: Vec<u32> = (0..50).collect();
        rng2.shuffle(&mut ys);
        assert_eq!(xs, ys);
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut rng = Xoshiro256pp::seed_from_u64(15);
        let items = [("never", 0.0), ("rare", 1.0), ("common", 9.0)];
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            let &(name, _) = rng.choose_weighted(&items, |&(_, w)| w).unwrap();
            let i = items.iter().position(|&(n, _)| n == name).unwrap();
            counts[i] += 1;
        }
        assert_eq!(counts[0], 0, "zero weight never drawn");
        assert!(counts[2] > counts[1] * 5, "{counts:?}");
        assert!(rng.choose_weighted(&[0.0f64; 3], |&w| w).is_none());
        assert!(rng.choose_weighted::<u8>(&[], |_| 1.0).is_none());
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = Xoshiro256pp::seed_from_u64(16);
        assert!(rng.choose::<u8>(&[]).is_none());
        let xs = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*rng.choose(&xs).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn forked_streams_diverge() {
        let mut a = Xoshiro256pp::seed_from_u64(17);
        let mut b = a.fork();
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let second: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(first, second);
    }
}
