//! SplitMix64: the seed-expansion generator.

/// SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014; Vigna's public-domain C reference). A
/// 64-bit-state generator with period 2⁶⁴ whose every seed is usable —
/// which is why it seeds [`crate::Xoshiro256pp`] (whose state must not be
/// all zero) and derives per-case seeds in [`crate::prop`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator starting from `seed`.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First outputs of the reference implementation for seed 0.
    #[test]
    fn known_answer_seed_zero() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    /// The reference vector for seed 1234567 (as used by rand_xoshiro's
    /// conformance test against the C implementation).
    #[test]
    fn known_answer_seed_1234567() {
        let mut sm = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6_457_827_717_110_365_317,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
            4_593_380_528_125_082_431,
            16_408_922_859_458_223_821,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(sm.next_u64(), e, "output {i}");
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(100);
        assert_ne!(SplitMix64::new(99).next_u64(), c.next_u64());
    }
}
