#![warn(missing_docs)]
//! # sit-prng — hermetic randomness for the workspace
//!
//! The build environment has no crates.io access, so the workspace carries
//! its own randomness instead of pulling `rand`/`proptest`/`criterion`:
//!
//! * [`SplitMix64`] — the seeding/stream-splitting generator (Steele,
//!   Lea & Flood 2014). Every 64-bit seed yields a full-period sequence,
//!   which makes it the right tool for expanding one user seed into
//!   xoshiro state and for deriving independent per-case seeds in the
//!   property runner.
//! * [`Xoshiro256pp`] — xoshiro256++ (Blackman & Vigna 2019), the
//!   workhorse stream: `gen_range`, Bernoulli draws, shuffles, and
//!   weighted choice, everything `sit-datagen` and `sit-bench` sample.
//! * [`prop`] — a seeded property-test runner: fixed default seed, a
//!   derived seed per case, and failure reports that name the reproducing
//!   seed, replacing the external `proptest` suites.
//!
//! Both generators are implemented from the public-domain reference code
//! and verified against its published output vectors (see the
//! known-answer tests), so sequences are reproducible across platforms
//! and toolchains — the determinism the benchmarks and generated
//! workloads rely on.

pub mod prop;
mod splitmix;
mod xoshiro;

pub use splitmix::SplitMix64;
pub use xoshiro::{UniformRange, Xoshiro256pp};
