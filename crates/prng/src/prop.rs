//! A seeded property-test runner: the in-tree replacement for the
//! external `proptest` suites.
//!
//! A property is a closure from a fresh [`Xoshiro256pp`] to
//! `Result<(), String>`; the closure draws whatever inputs it needs and
//! fails by returning an `Err` (usually via [`prop_assert!`] /
//! [`prop_assert_eq!`](crate::prop_assert_eq)). The runner derives one
//! seed per case from a fixed base seed through [`SplitMix64`], so:
//!
//! * runs are fully deterministic — two consecutive `cargo test` runs
//!   execute byte-identical cases;
//! * a failure report names the *case seed*, and [`replay`] re-runs
//!   exactly that case under a debugger or with added logging.
//!
//! ```
//! use sit_prng::{prop, prop_assert};
//!
//! prop::check("addition commutes", |rng| {
//!     let (a, b) = (rng.gen_range(0u32..1000), rng.gen_range(0u32..1000));
//!     prop_assert!(a + b == b + a, "{a} + {b}");
//!     Ok(())
//! });
//! ```

use crate::{SplitMix64, Xoshiro256pp};

/// Outcome of one property case.
pub type CaseResult = Result<(), String>;

/// Default number of cases per property (matching the budget the
/// replaced proptest suites ran with).
pub const DEFAULT_CASES: u64 = 64;

/// Base seed from which per-case seeds are derived. Fixed so `cargo test`
/// is reproducible; failures report the derived per-case seed.
pub const DEFAULT_BASE_SEED: u64 = 0x5EED_1988_1CDE_0001;

/// Run `property` for [`DEFAULT_CASES`] derived cases; panics with the
/// case number and reproducing seed on the first failure.
pub fn check(name: &str, property: impl FnMut(&mut Xoshiro256pp) -> CaseResult) {
    check_cases(name, DEFAULT_CASES, property);
}

/// [`check`] with an explicit case count (for expensive properties).
pub fn check_cases(
    name: &str,
    cases: u64,
    property: impl FnMut(&mut Xoshiro256pp) -> CaseResult,
) {
    check_with(name, cases, DEFAULT_BASE_SEED, property);
}

/// Fully explicit runner: `cases` cases derived from `base_seed`.
pub fn check_with(
    name: &str,
    cases: u64,
    base_seed: u64,
    mut property: impl FnMut(&mut Xoshiro256pp) -> CaseResult,
) {
    let mut seeds = SplitMix64::new(base_seed);
    for case in 0..cases {
        let case_seed = seeds.next_u64();
        let mut rng = Xoshiro256pp::seed_from_u64(case_seed);
        if let Err(msg) = property(&mut rng) {
            panic!(
                "property `{name}` failed at case {case}/{cases}\n\
                 reproduce with: sit_prng::prop::replay({case_seed:#018x}, <property>)\n\
                 {msg}"
            );
        }
    }
}

/// Re-run a single case by the seed a failure report printed.
pub fn replay(
    case_seed: u64,
    mut property: impl FnMut(&mut Xoshiro256pp) -> CaseResult,
) -> CaseResult {
    property(&mut Xoshiro256pp::seed_from_u64(case_seed))
}

/// Fail the surrounding property case unless the condition holds.
///
/// Expands to an early `return Err(..)`, so it only works inside a
/// closure/function returning [`CaseResult`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($arg:tt)+) => {
        if !($cond) {
            return Err(format!($($arg)+));
        }
    };
}

/// Fail the surrounding property case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: `{} == {}`: {}\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right),
                format!($($arg)+),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u64;
        check_cases("counts cases", 10, |_| {
            ran += 1;
            Ok(())
        });
        assert_eq!(ran, 10);
    }

    #[test]
    fn case_seeds_are_stable_across_runs() {
        let collect = || {
            let mut inputs = Vec::new();
            check_cases("stable", 5, |rng| {
                inputs.push(rng.next_u64());
                Ok(())
            });
            inputs
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn failure_names_case_and_seed() {
        let err = std::panic::catch_unwind(|| {
            check_cases("always fails", 3, |rng| {
                let v = rng.gen_range(0u32..10);
                prop_assert!(false, "drew {v}");
                Ok(())
            });
        })
        .expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("`always fails` failed at case 0/3"), "{msg}");
        assert!(msg.contains("replay(0x"), "{msg}");
        assert!(msg.contains("drew "), "{msg}");
    }

    #[test]
    fn replay_reproduces_the_reported_case() {
        // The failure message embeds the seed; replaying it must fail the
        // same way while a passing property replays cleanly.
        let mut first_seed = None;
        check_cases("record seed", 1, |rng| {
            first_seed = Some(rng.next_u64());
            Ok(())
        });
        let mut seeds = SplitMix64::new(DEFAULT_BASE_SEED);
        let case_seed = seeds.next_u64();
        let replayed = replay(case_seed, |rng| Ok(assert_eq!(Some(rng.next_u64()), first_seed)));
        assert!(replayed.is_ok());
    }

    #[test]
    fn prop_assert_eq_reports_both_sides() {
        let r: CaseResult = (|| {
            prop_assert_eq!(1 + 1, 3, "math check");
            Ok(())
        })();
        let msg = r.expect_err("unequal");
        assert!(msg.contains("left: 2") && msg.contains("right: 3"), "{msg}");
        assert!(msg.contains("math check"), "{msg}");
    }
}
