//! Synonym/antonym dictionary — "A dictionary of synonyms and antonyms
//! would also be useful in detecting candidate pairs of equivalent
//! attributes" (paper §4).
//!
//! The dictionary stores synonym groups (any two members score 1.0) and
//! antonym pairs (score pinned to 0.0 — a hard veto, because names like
//! `min_salary`/`max_salary` look nearly identical to string metrics while
//! meaning opposite things). Lookups are token-aware: `dept_name` and
//! `division_name` match when `dept` and `division` are synonyms.

use std::collections::HashMap;

use crate::string_sim::tokens;

/// A dictionary of synonym groups and antonym pairs.
#[derive(Clone, Debug, Default)]
pub struct SynonymDictionary {
    /// token → synonym-group id.
    group_of: HashMap<String, usize>,
    groups: usize,
    /// Normalized antonym pairs.
    antonyms: Vec<(String, String)>,
}

impl SynonymDictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// A dictionary preloaded with vocabulary common in the paper's
    /// university/company domain.
    pub fn builtin() -> Self {
        let mut d = Self::new();
        d.add_synonyms(&["department", "dept", "division"]);
        d.add_synonyms(&["employee", "worker", "staff"]);
        d.add_synonyms(&["salary", "wage", "pay"]);
        d.add_synonyms(&["name", "title"]);
        d.add_synonyms(&["ssn", "social", "sin"]);
        d.add_synonyms(&["student", "pupil"]);
        d.add_synonyms(&["teacher", "instructor", "faculty", "professor"]);
        d.add_synonyms(&["course", "class", "subject"]);
        d.add_synonyms(&["grade", "mark", "score"]);
        d.add_synonyms(&["id", "number", "no", "num", "code"]);
        d.add_synonyms(&["location", "address", "place"]);
        d.add_synonyms(&["phone", "telephone", "tel"]);
        d.add_synonyms(&["birth", "dob", "born"]);
        d.add_antonyms("min", "max");
        d.add_antonyms("start", "end");
        d.add_antonyms("first", "last");
        d.add_antonyms("credit", "debit");
        d
    }

    /// Register a group of mutually synonymous tokens. Tokens already in a
    /// group pull the new tokens into that group.
    pub fn add_synonyms(&mut self, words: &[&str]) {
        let gid = words
            .iter()
            .find_map(|w| self.group_of.get(&w.to_lowercase()).copied())
            .unwrap_or_else(|| {
                self.groups += 1;
                self.groups - 1
            });
        for w in words {
            self.group_of.insert(w.to_lowercase(), gid);
        }
    }

    /// Register an antonym pair (order-insensitive).
    pub fn add_antonyms(&mut self, a: &str, b: &str) {
        let (a, b) = (a.to_lowercase(), b.to_lowercase());
        let pair = if a <= b { (a, b) } else { (b, a) };
        if !self.antonyms.contains(&pair) {
            self.antonyms.push(pair);
        }
    }

    /// Are two tokens synonyms (or equal)?
    pub fn synonymous(&self, a: &str, b: &str) -> bool {
        let (a, b) = (a.to_lowercase(), b.to_lowercase());
        if a == b {
            return true;
        }
        matches!(
            (self.group_of.get(&a), self.group_of.get(&b)),
            (Some(x), Some(y)) if x == y
        )
    }

    /// Are two tokens antonyms?
    pub fn antonymous(&self, a: &str, b: &str) -> bool {
        let (a, b) = (a.to_lowercase(), b.to_lowercase());
        let pair = if a <= b { (a, b) } else { (b, a) };
        self.antonyms.contains(&pair)
    }

    /// Dictionary-aware name score: `0.0` when any token pair is
    /// antonymous (hard veto), otherwise the Dice coefficient over tokens
    /// with synonym matches counting as equal.
    pub fn name_score(&self, a: &str, b: &str) -> f64 {
        let ta = tokens(a);
        let tb = tokens(b);
        if ta.is_empty() || tb.is_empty() {
            return 0.0;
        }
        for x in &ta {
            for y in &tb {
                if self.antonymous(x, y) {
                    return 0.0;
                }
            }
        }
        let matched = ta
            .iter()
            .filter(|x| tb.iter().any(|y| self.synonymous(x, y)))
            .count();
        2.0 * matched as f64 / (ta.len() + tb.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synonym_groups_merge() {
        let mut d = SynonymDictionary::new();
        d.add_synonyms(&["dept", "department"]);
        d.add_synonyms(&["department", "division"]);
        assert!(d.synonymous("dept", "division"), "transitively merged");
        assert!(d.synonymous("Dept", "DEPT"), "case-insensitive identity");
        assert!(!d.synonymous("dept", "salary"));
    }

    #[test]
    fn antonyms_veto() {
        let d = SynonymDictionary::builtin();
        assert!(d.antonymous("min", "max"));
        assert!(d.antonymous("MAX", "min"), "order/case insensitive");
        assert_eq!(d.name_score("min_salary", "max_salary"), 0.0);
    }

    #[test]
    fn token_aware_scoring() {
        let d = SynonymDictionary::builtin();
        assert_eq!(d.name_score("dept_name", "division_name"), 1.0);
        let partial = d.name_score("dept_name", "division_budget");
        assert!((partial - 0.5).abs() < 1e-9, "{partial}");
        assert_eq!(d.name_score("", "x"), 0.0);
    }

    #[test]
    fn builtin_covers_paper_domain() {
        let d = SynonymDictionary::builtin();
        assert!(d.synonymous("faculty", "instructor"));
        assert!(d.synonymous("dept", "department"));
    }
}
