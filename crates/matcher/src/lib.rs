#![warn(missing_docs)]
//! # sit-matcher — resemblance-function extensions
//!
//! The paper's future-work section (§4) sketches the enhancements this
//! crate implements on top of `sit-core`:
//!
//! * **Syntactic processing enhancements** — "string matching heuristics to
//!   identify potentially equivalent attributes. A dictionary of synonyms
//!   and antonyms would also be useful ..." → [`string_sim`],
//!   [`synonyms`].
//! * **Weighted resemblance** — "SIS [de Souza 86] describes several
//!   resemblance functions ... Using a weighted sum of products of several
//!   resemblance functions, pairs of objects can be sorted according to
//!   their mutual resemblance." → [`weighted`].
//! * **Schema-level resemblance** — "The resemblance function among
//!   objects could be possibly extended to derive a resemblance function
//!   \[for\] schemas which could be particularly useful in picking similar
//!   schemas for integration in a binary approach." → [`schema_resemblance()`](schema_resemblance()).
//! * **Semantic processing enhancements** — "heuristics to identify
//!   corresponding objects of different constructs", e.g. a *Marriage*
//!   entity set in one schema and a *Marriage* relationship set in
//!   another, recognized "if they have several common attributes" →
//!   [`cross_construct`].
//! * **Suggestion pipeline** — [`suggest`] turns the above into concrete
//!   attribute-equivalence proposals a DDA (or oracle) reviews, reducing
//!   the manual work of phase 2.

pub mod cross_construct;
pub mod schema_resemblance;
pub mod string_sim;
pub mod suggest;
pub mod synonyms;
pub mod weighted;

pub use cross_construct::{cross_construct_candidates, CrossConstructCandidate};
pub use schema_resemblance::{schema_resemblance, best_integration_order};
pub use string_sim::{is_abbreviation, jaccard_trigrams, levenshtein, name_similarity, normalized_levenshtein};
pub use suggest::{suggest_equivalences, Suggestion};
pub use synonyms::SynonymDictionary;
pub use weighted::{AttrPairFeatures, ResemblanceWeights, WeightedResemblance};
