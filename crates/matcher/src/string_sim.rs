//! String-matching heuristics for attribute and object names.
//!
//! These are the "syntactic processing enhancements" of the paper's
//! future-work section: scores in `[0, 1]` measuring how alike two
//! identifiers are, robust to the naming conventions schema designers
//! actually use (case, underscores, abbreviation).

/// Classic Levenshtein edit distance (insert/delete/substitute, unit
/// costs), O(|a|·|b|) time, O(min) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Levenshtein scaled into a similarity: `1 - dist / max_len` (1.0 for two
/// empty strings).
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaccard similarity of character trigram sets (with `^`/`$` padding so
/// short names still produce trigrams).
pub fn jaccard_trigrams(a: &str, b: &str) -> f64 {
    let ta = trigrams(a);
    let tb = trigrams(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.iter().filter(|t| tb.contains(*t)).count();
    let union = ta.len() + tb.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

fn trigrams(s: &str) -> Vec<[char; 3]> {
    let padded: Vec<char> = std::iter::once('^')
        .chain(s.chars())
        .chain(std::iter::once('$'))
        .collect();
    let mut out: Vec<[char; 3]> = padded
        .windows(3)
        .map(|w| [w[0], w[1], w[2]])
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Split an identifier into lowercase tokens at underscores, hyphens and
/// case boundaries (`Grad_student` → `["grad", "student"]`,
/// `deptNo` → `["dept", "no"]`).
pub fn tokens(name: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut prev_lower = false;
    for c in name.chars() {
        if c == '_' || c == '-' || c == ' ' {
            if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
            prev_lower = false;
            continue;
        }
        if c.is_uppercase() && prev_lower && !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
        prev_lower = c.is_lowercase() || c.is_ascii_digit();
        cur.extend(c.to_lowercase());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// `true` when `short` abbreviates `long`: at least three characters,
/// same initial, and `short` is an ordered subsequence of `long`
/// (`dept` ⊑ `department`, `qty` ⊑ `quantity`).
pub fn is_abbreviation(short: &str, long: &str) -> bool {
    if short.chars().count() < 3 || short.len() >= long.len() {
        return false;
    }
    let mut sc = short.chars();
    let mut lc = long.chars();
    match (sc.next(), lc.next()) {
        (Some(s0), Some(l0)) if s0 == l0 => {}
        _ => return false,
    }
    let mut need = sc.peekable();
    for c in lc {
        if need.peek() == Some(&c) {
            need.next();
        }
    }
    need.peek().is_none()
}

/// Composite name similarity: the maximum of normalized edit similarity,
/// trigram Jaccard, and token overlap (Dice), all computed on the
/// lowercased forms. Also credits abbreviation: if one token abbreviates
/// the other (`dept`/`department`), that token pair counts as a match.
pub fn name_similarity(a: &str, b: &str) -> f64 {
    let la = a.to_lowercase();
    let lb = b.to_lowercase();
    if la == lb {
        return 1.0;
    }
    let lev = normalized_levenshtein(&la, &lb);
    let tri = jaccard_trigrams(&la, &lb);
    let ta = tokens(a);
    let tb = tokens(b);
    let dice = if ta.is_empty() || tb.is_empty() {
        0.0
    } else {
        let matched = ta
            .iter()
            .filter(|x| {
                tb.iter()
                    .any(|y| x == &y || is_abbreviation(x, y) || is_abbreviation(y, x))
            })
            .count();
        2.0 * matched as f64 / (ta.len() + tb.len()) as f64
    };
    lev.max(tri).max(dice)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "ab"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        // Symmetric.
        assert_eq!(levenshtein("abcdef", "azced"), levenshtein("azced", "abcdef"));
    }

    #[test]
    fn normalized_levenshtein_range() {
        assert_eq!(normalized_levenshtein("", ""), 1.0);
        assert_eq!(normalized_levenshtein("a", "a"), 1.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 0.0);
        let v = normalized_levenshtein("name", "fname");
        assert!(v > 0.7 && v < 1.0, "{v}");
    }

    #[test]
    fn trigram_similarity() {
        assert_eq!(jaccard_trigrams("", ""), 1.0);
        assert!(jaccard_trigrams("department", "departament") > 0.5);
        assert!(jaccard_trigrams("salary", "office") < 0.2);
    }

    #[test]
    fn tokenization() {
        assert_eq!(tokens("Grad_student"), vec!["grad", "student"]);
        assert_eq!(tokens("deptNo"), vec!["dept", "no"]);
        assert_eq!(tokens("SSN"), vec!["ssn"]);
        assert_eq!(tokens("birth-date"), vec!["birth", "date"]);
        assert!(tokens("").is_empty());
    }

    #[test]
    fn abbreviation_subsequence_check() {
        assert!(is_abbreviation("dept", "department"));
        assert!(is_abbreviation("qty", "quantity"));
        assert!(!is_abbreviation("dept", "separate"), "initials differ");
        assert!(!is_abbreviation("no", "number"), "too short");
        assert!(!is_abbreviation("department", "dept"), "short side first");
        assert!(!is_abbreviation("dxz", "department"), "not a subsequence");
    }

    #[test]
    fn name_similarity_recognizes_conventions() {
        assert_eq!(name_similarity("Name", "name"), 1.0);
        assert!(name_similarity("dept_no", "DeptNo") > 0.9);
        // Abbreviation credit.
        assert!(name_similarity("dept_name", "department_name") > 0.8);
        assert!(name_similarity("GPA", "Salary") < 0.3);
        // Symmetric.
        let ab = name_similarity("student_name", "name_of_student");
        let ba = name_similarity("name_of_student", "student_name");
        assert!((ab - ba).abs() < 1e-12);
    }
}
