//! Weighted multi-function resemblance (the SIS-style extension).
//!
//! "SIS [de Souza 86] describes several resemblance functions (such as 'to
//! have similar names' or 'to have identifiers with similar names'). Using
//! a weighted sum of products of several resemblance functions, pairs of
//! objects can be sorted according to their mutual resemblance. Our system
//! would benefit from having additional resemblance functions." (paper §4)
//!
//! [`WeightedResemblance`] scores an *attribute pair* from several
//! features — name similarity, synonym score, domain compatibility, key
//! agreement — and an *object pair* from its attributes' best matches plus
//! object-name similarity. The benchmark `heuristic_quality` compares this
//! richer function against the paper's plain attribute-ratio heuristic.

use sit_ecr::Attribute;

use crate::string_sim::name_similarity;
use crate::synonyms::SynonymDictionary;

/// Feature vector for one attribute pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttrPairFeatures {
    /// Composite string similarity of the attribute names.
    pub name: f64,
    /// Synonym-dictionary score of the names (0 on antonym veto).
    pub synonym: f64,
    /// 1.0 when the domains are compatible.
    pub domain: f64,
    /// 1.0 when the key flags agree.
    pub key: f64,
}

/// Weights of the resemblance features; they need not sum to one (scores
/// are normalized by the weight total).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResemblanceWeights {
    /// Weight of string name similarity.
    pub name: f64,
    /// Weight of the synonym score.
    pub synonym: f64,
    /// Weight of domain compatibility.
    pub domain: f64,
    /// Weight of key-flag agreement.
    pub key: f64,
    /// Weight of object-name similarity when scoring object pairs.
    pub object_name: f64,
}

impl Default for ResemblanceWeights {
    fn default() -> Self {
        // Name evidence dominates; domains and keys are weaker signals
        // (many attributes share `char`/non-key).
        Self {
            name: 4.0,
            synonym: 3.0,
            domain: 1.0,
            key: 1.0,
            object_name: 2.0,
        }
    }
}

/// A weighted-sum resemblance function over attribute and object pairs.
#[derive(Clone, Debug)]
pub struct WeightedResemblance {
    /// Feature weights.
    pub weights: ResemblanceWeights,
    /// Synonym dictionary consulted for the synonym feature.
    pub dictionary: SynonymDictionary,
}

impl Default for WeightedResemblance {
    fn default() -> Self {
        Self {
            weights: ResemblanceWeights::default(),
            dictionary: SynonymDictionary::builtin(),
        }
    }
}

impl WeightedResemblance {
    /// Extract the features of one attribute pair.
    pub fn features(&self, a: &Attribute, b: &Attribute) -> AttrPairFeatures {
        AttrPairFeatures {
            name: name_similarity(&a.name, &b.name),
            synonym: self.dictionary.name_score(&a.name, &b.name),
            domain: if a.domain.compatible(&b.domain) { 1.0 } else { 0.0 },
            key: if a.is_key() == b.is_key() { 1.0 } else { 0.0 },
        }
    }

    /// Score one attribute pair in `[0, 1]`. An antonym veto (synonym
    /// score 0 with high name similarity) is NOT special-cased here; the
    /// dictionary already zeroes its own feature.
    pub fn attr_score(&self, a: &Attribute, b: &Attribute) -> f64 {
        let f = self.features(a, b);
        let w = &self.weights;
        let total = w.name + w.synonym + w.domain + w.key;
        if total == 0.0 {
            return 0.0;
        }
        (w.name * f.name + w.synonym * f.synonym + w.domain * f.domain + w.key * f.key) / total
    }

    /// Score an object pair: the average best-match score of the smaller
    /// side's attributes (a soft version of the paper's attribute ratio),
    /// blended with object-name similarity by `object_name` weight.
    pub fn object_score(
        &self,
        name_a: &str,
        attrs_a: &[Attribute],
        name_b: &str,
        attrs_b: &[Attribute],
    ) -> f64 {
        let (small, large) = if attrs_a.len() <= attrs_b.len() {
            (attrs_a, attrs_b)
        } else {
            (attrs_b, attrs_a)
        };
        let attr_part = if small.is_empty() {
            0.0
        } else {
            small
                .iter()
                .map(|a| {
                    large
                        .iter()
                        .map(|b| self.attr_score(a, b))
                        .fold(0.0f64, f64::max)
                })
                .sum::<f64>()
                / small.len() as f64
        };
        let name_part = name_similarity(name_a, name_b)
            .max(self.dictionary.name_score(name_a, name_b));
        let w = &self.weights;
        let attr_weight = w.name + w.synonym + w.domain + w.key;
        let total = attr_weight + w.object_name;
        if total == 0.0 {
            return 0.0;
        }
        (attr_weight * attr_part + w.object_name * name_part) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sit_ecr::Domain;

    fn attr(name: &str, domain: Domain, key: bool) -> Attribute {
        if key {
            Attribute::key(name, domain)
        } else {
            Attribute::new(name, domain)
        }
    }

    #[test]
    fn identical_attributes_score_one() {
        let w = WeightedResemblance::default();
        let a = attr("Name", Domain::Char, true);
        assert!((w.attr_score(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scores_are_in_unit_interval_and_symmetric() {
        let w = WeightedResemblance::default();
        let samples = [
            attr("Name", Domain::Char, true),
            attr("dept_no", Domain::Int, false),
            attr("DeptNum", Domain::Int, false),
            attr("salary", Domain::Real, false),
            attr("wage", Domain::Real, false),
        ];
        for a in &samples {
            for b in &samples {
                let ab = w.attr_score(a, b);
                let ba = w.attr_score(b, a);
                assert!((0.0..=1.0).contains(&ab), "{ab}");
                assert!((ab - ba).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn synonyms_outscore_strangers() {
        let w = WeightedResemblance::default();
        let salary = attr("salary", Domain::Real, false);
        let wage = attr("wage", Domain::Real, false);
        let office = attr("office", Domain::Char, false);
        assert!(w.attr_score(&salary, &wage) > w.attr_score(&salary, &office));
    }

    #[test]
    fn antonym_veto_suppresses_lookalikes() {
        let w = WeightedResemblance::default();
        let min = attr("min_salary", Domain::Real, false);
        let max = attr("max_salary", Domain::Real, false);
        let same = attr("min_salary", Domain::Real, false);
        assert!(w.attr_score(&min, &max) < w.attr_score(&min, &same));
    }

    #[test]
    fn object_score_blends_names_and_attributes() {
        let w = WeightedResemblance::default();
        let dept_a = [attr("dname", Domain::Char, true), attr("budget", Domain::Real, false)];
        let dept_b = [attr("dept_name", Domain::Char, true), attr("budget", Domain::Real, false)];
        let project = [attr("pname", Domain::Char, true)];
        let s_match = w.object_score("Department", &dept_a, "Dept", &dept_b);
        let s_miss = w.object_score("Department", &dept_a, "Project", &project);
        assert!(s_match > s_miss, "{s_match} vs {s_miss}");
        assert!(s_match > 0.6);
        // Empty attribute lists degrade to name-only evidence.
        let s_empty = w.object_score("Department", &[], "Dept", &[]);
        assert!(s_empty > 0.0);
    }
}
