//! Cross-construct correspondence (entity set ↔ relationship set).
//!
//! Paper §4: "in one schema, a marriage between two people may be
//! represented as an entity set, while in another schema a marriage may be
//! represented as a relationship between the entity sets Male and Female.
//! One approach to this problem [Larson et al 87] is to \[relate\] two
//! different types of constructs if they have several common attributes.
//! For example, the entity set marriage and the relationship set marriage
//! could be identified as equivalent if they both have attributes
//! marriage-date, marriage-location, number of children, etc."
//!
//! [`cross_construct_candidates`] scans an object class of one schema
//! against the relationship sets of another (and vice versa) and reports
//! pairs whose attribute lists overlap strongly under the weighted
//! resemblance — flagging them for the DDA, since the base integration
//! algebra only relates like constructs.

use sit_ecr::Schema;

use crate::weighted::WeightedResemblance;

/// A flagged entity↔relationship correspondence.
#[derive(Clone, Debug, PartialEq)]
pub struct CrossConstructCandidate {
    /// Name of the object class (entity set or category).
    pub object: String,
    /// Schema the object class belongs to.
    pub object_schema: String,
    /// Name of the relationship set.
    pub rel: String,
    /// Schema the relationship set belongs to.
    pub rel_schema: String,
    /// Number of attribute pairs scoring above the attribute threshold.
    pub common_attrs: usize,
    /// Mean score of those matched pairs.
    pub score: f64,
}

/// Find object-class/relationship-set pairs across two schemas with at
/// least `min_common` strongly matching attributes (attribute pairs with
/// weighted score ≥ `attr_threshold`).
pub fn cross_construct_candidates(
    w: &WeightedResemblance,
    a: &Schema,
    b: &Schema,
    min_common: usize,
    attr_threshold: f64,
) -> Vec<CrossConstructCandidate> {
    let mut out = Vec::new();
    scan(w, a, b, min_common, attr_threshold, &mut out);
    scan(w, b, a, min_common, attr_threshold, &mut out);
    out.sort_by(|l, r| {
        r.score
            .partial_cmp(&l.score)
            .expect("finite")
            .then(l.object.cmp(&r.object))
    });
    out
}

fn scan(
    w: &WeightedResemblance,
    obj_side: &Schema,
    rel_side: &Schema,
    min_common: usize,
    attr_threshold: f64,
    out: &mut Vec<CrossConstructCandidate>,
) {
    for (_, obj) in obj_side.objects() {
        for (_, rel) in rel_side.relationships() {
            if obj.attributes.is_empty() || rel.attributes.is_empty() {
                continue;
            }
            // Greedy one-to-one matching of attribute pairs above the
            // threshold, best scores first.
            let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
            for (i, oa) in obj.attributes.iter().enumerate() {
                for (j, ra) in rel.attributes.iter().enumerate() {
                    let s = w.attr_score(oa, ra);
                    if s >= attr_threshold {
                        pairs.push((i, j, s));
                    }
                }
            }
            pairs.sort_by(|l, r| r.2.partial_cmp(&l.2).expect("finite"));
            let mut used_o = vec![false; obj.attributes.len()];
            let mut used_r = vec![false; rel.attributes.len()];
            let mut matched = Vec::new();
            for (i, j, s) in pairs {
                if !used_o[i] && !used_r[j] {
                    used_o[i] = true;
                    used_r[j] = true;
                    matched.push(s);
                }
            }
            if matched.len() >= min_common {
                out.push(CrossConstructCandidate {
                    object: obj.name.clone(),
                    object_schema: obj_side.name().to_owned(),
                    rel: rel.name.clone(),
                    rel_schema: rel_side.name().to_owned(),
                    common_attrs: matched.len(),
                    score: matched.iter().sum::<f64>() / matched.len() as f64,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sit_ecr::ddl::parse;

    #[test]
    fn marriage_example_from_the_paper() {
        let a = parse(
            "schema a { entity Marriage { marriage_date: date; marriage_location: char; num_children: int; } \
             entity Person { ssn: int key; } }",
        )
        .unwrap();
        let b = parse(
            "schema b { entity Male { ssn: int key; } entity Female { ssn: int key; } \
             relationship Married { Male (0,1); Female (0,1); marriage_date: date; \
             marriage_location: char; number_of_children: int; } }",
        )
        .unwrap();
        let w = WeightedResemblance::default();
        let candidates = cross_construct_candidates(&w, &a, &b, 2, 0.5);
        assert!(!candidates.is_empty());
        let top = &candidates[0];
        assert_eq!(top.object, "Marriage");
        assert_eq!(top.rel, "Married");
        assert!(top.common_attrs >= 2, "{top:?}");
        assert!(top.score > 0.5);
    }

    #[test]
    fn unrelated_constructs_not_flagged() {
        let a = parse("schema a { entity Invoice { total: real; issued: date; } }").unwrap();
        let b = parse(
            "schema b { entity X { id: int key; } entity Y { id: int key; } \
             relationship Follows { X (0,n); Y (0,n); since_version: int; } }",
        )
        .unwrap();
        let w = WeightedResemblance::default();
        let candidates = cross_construct_candidates(&w, &a, &b, 2, 0.7);
        assert!(candidates.is_empty(), "{candidates:?}");
    }

    #[test]
    fn scan_is_direction_symmetric() {
        // The object may live in either schema.
        let rel_side = parse(
            "schema r { entity P { id: int key; } relationship Owns { P (0,n); P (0,n); \
             deed_date: date; deed_no: int; } }",
        )
        .unwrap();
        let obj_side =
            parse("schema o { entity Deed { deed_date: date; deed_no: int; } }").unwrap();
        let w = WeightedResemblance::default();
        let c1 = cross_construct_candidates(&w, &obj_side, &rel_side, 2, 0.6);
        let c2 = cross_construct_candidates(&w, &rel_side, &obj_side, 2, 0.6);
        assert_eq!(c1.len(), c2.len());
        assert!(!c1.is_empty());
    }
}
