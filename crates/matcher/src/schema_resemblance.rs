//! Schema-level resemblance and binary integration ordering.
//!
//! "The resemblance function among objects could be possibly extended to
//! derive a resemblance function \[for\] schemas which could be particularly
//! useful in picking similar schemas for integration in a binary approach."
//! (paper §4)
//!
//! [`schema_resemblance`] lifts the weighted object resemblance to whole
//! schemas (average best-match over the smaller schema's object classes);
//! [`best_integration_order`] greedily picks the fold order for n-ary
//! integration: start from the most similar pair, then repeatedly fold in
//! the schema most similar to the accumulated set — the ordering the
//! `nary_order` benchmark evaluates against arbitrary orders.

use sit_ecr::Schema;

use crate::weighted::WeightedResemblance;

/// Resemblance of two schemas in `[0, 1]`: the symmetric mean of each
/// side's average best-match object score.
pub fn schema_resemblance(w: &WeightedResemblance, a: &Schema, b: &Schema) -> f64 {
    if a.object_count() == 0 || b.object_count() == 0 {
        return 0.0;
    }
    (directed(w, a, b) + directed(w, b, a)) / 2.0
}

fn directed(w: &WeightedResemblance, from: &Schema, to: &Schema) -> f64 {
    let mut total = 0.0;
    for (_, so) in from.objects() {
        let best = to
            .objects()
            .map(|(_, lo)| w.object_score(&so.name, &so.attributes, &lo.name, &lo.attributes))
            .fold(0.0f64, f64::max);
        total += best;
    }
    total / from.object_count() as f64
}

/// Greedy fold order over `schemas` (indexes into the slice): the most
/// resemblant pair first, then always the schema most resemblant to any
/// already-chosen schema.
pub fn best_integration_order(w: &WeightedResemblance, schemas: &[&Schema]) -> Vec<usize> {
    let n = schemas.len();
    if n <= 2 {
        return (0..n).collect();
    }
    let mut sim = vec![vec![0.0f64; n]; n];
    for (i, si) in schemas.iter().enumerate() {
        for (j, sj) in schemas.iter().enumerate().skip(i + 1) {
            let s = schema_resemblance(w, si, sj);
            sim[i][j] = s;
            sim[j][i] = s;
        }
    }
    // Seed with the best pair.
    let (mut bi, mut bj, mut best) = (0, 1, f64::MIN);
    for (i, row) in sim.iter().enumerate() {
        for (j, &s) in row.iter().enumerate().skip(i + 1) {
            if s > best {
                best = s;
                bi = i;
                bj = j;
            }
        }
    }
    let mut order = vec![bi, bj];
    let mut remaining: Vec<usize> = (0..n).filter(|&k| k != bi && k != bj).collect();
    while !remaining.is_empty() {
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &k)| {
                let attach = order
                    .iter()
                    .map(|&o| sim[o][k])
                    .fold(f64::MIN, f64::max);
                (pos, attach)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        order.push(remaining.remove(pos));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use sit_ecr::ddl::parse;

    fn uni_a() -> Schema {
        parse("schema ua { entity Student { name: char key; gpa: real; } entity Department { dname: char key; } }").unwrap()
    }

    fn uni_b() -> Schema {
        parse("schema ub { entity Pupil { name: char key; grade: real; } entity Dept { dept_name: char key; } }").unwrap()
    }

    fn shop() -> Schema {
        parse("schema shop { entity Invoice { inv_no: int key; total: real; } entity Sku { sku_code: char key; } }").unwrap()
    }

    #[test]
    fn similar_domains_score_higher() {
        let w = WeightedResemblance::default();
        let (a, b, c) = (uni_a(), uni_b(), shop());
        let uni_uni = schema_resemblance(&w, &a, &b);
        let uni_shop = schema_resemblance(&w, &a, &c);
        assert!(uni_uni > uni_shop, "{uni_uni} vs {uni_shop}");
        // Symmetry and bounds.
        assert!((schema_resemblance(&w, &b, &a) - uni_uni).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&uni_uni));
    }

    #[test]
    fn self_resemblance_is_maximal_among_candidates() {
        let w = WeightedResemblance::default();
        let a = uni_a();
        let self_sim = schema_resemblance(&w, &a, &a);
        assert!(self_sim > 0.9, "{self_sim}");
    }

    #[test]
    fn order_puts_similar_schemas_first() {
        let w = WeightedResemblance::default();
        let (a, b, c) = (uni_a(), uni_b(), shop());
        let order = best_integration_order(&w, &[&a, &c, &b]);
        // The two university schemas (indexes 0 and 2) come first.
        assert_eq!(order.len(), 3);
        assert!(order[..2].contains(&0) && order[..2].contains(&2), "{order:?}");
        assert_eq!(order[2], 1);
    }

    #[test]
    fn degenerate_orders() {
        let w = WeightedResemblance::default();
        let a = uni_a();
        assert_eq!(best_integration_order(&w, &[&a]), vec![0]);
        let b = uni_b();
        assert_eq!(best_integration_order(&w, &[&a, &b]), vec![0, 1]);
    }
}
