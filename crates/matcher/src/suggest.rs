//! Attribute-equivalence suggestions: the matcher's output, shaped for a
//! DDA (or oracle) to accept or reject.
//!
//! The paper's tool makes the DDA declare every attribute equivalence by
//! hand; the future-work matcher narrows that to a review of ranked
//! proposals. [`suggest_equivalences`] scores every cross-schema attribute
//! pair between two schemas with the weighted resemblance and returns
//! those above a threshold, best first — exactly what the question-count
//! benchmark feeds to the noisy-oracle experiments.

use sit_core::catalog::{Catalog, GAttr};
use sit_ecr::SchemaId;

use crate::weighted::WeightedResemblance;

/// One proposed attribute equivalence.
#[derive(Clone, Debug, PartialEq)]
pub struct Suggestion {
    /// Attribute in the first schema.
    pub a: GAttr,
    /// Attribute in the second schema.
    pub b: GAttr,
    /// Weighted resemblance score in `[0, 1]`.
    pub score: f64,
}

/// Score all cross-schema attribute pairs between `sa` and `sb`; return
/// pairs scoring at least `threshold`, descending. Domain-incompatible
/// pairs are never suggested (they could not be declared anyway).
pub fn suggest_equivalences(
    catalog: &Catalog,
    w: &WeightedResemblance,
    sa: SchemaId,
    sb: SchemaId,
    threshold: f64,
) -> Vec<Suggestion> {
    let mut out = Vec::new();
    let attrs_a = catalog.attrs_of(sa);
    let attrs_b = catalog.attrs_of(sb);
    for &ga in &attrs_a {
        let Ok(a) = catalog.attr(ga) else { continue };
        for &gb in &attrs_b {
            let Ok(b) = catalog.attr(gb) else { continue };
            if !a.domain.compatible(&b.domain) {
                continue;
            }
            let score = w.attr_score(a, b);
            if score >= threshold {
                out.push(Suggestion { a: ga, b: gb, score });
            }
        }
    }
    out.sort_by(|l, r| {
        r.score
            .partial_cmp(&l.score)
            .expect("finite")
            .then((l.a, l.b).cmp(&(r.a, r.b)))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sit_core::session::Session;
    use sit_ecr::fixtures;

    #[test]
    fn suggests_the_paper_equivalences_first() {
        let mut s = Session::new();
        let sc1 = s.add_schema(fixtures::sc1()).unwrap();
        let sc2 = s.add_schema(fixtures::sc2()).unwrap();
        let w = WeightedResemblance::default();
        let suggestions = suggest_equivalences(s.catalog(), &w, sc1, sc2, 0.6);
        assert!(!suggestions.is_empty());
        // The top suggestions include the Name/Name and GPA/GPA pairs a
        // DDA would accept on Screen 7.
        let display = |g: GAttr| s.catalog().attr_display(g);
        let rendered: Vec<(String, String)> = suggestions
            .iter()
            .map(|sg| (display(sg.a), display(sg.b)))
            .collect();
        assert!(rendered.contains(&(
            "sc1.Student.Name".into(),
            "sc2.Grad_student.Name".into()
        )));
        assert!(rendered.contains(&("sc1.Student.GPA".into(), "sc2.Grad_student.GPA".into())));
        assert!(rendered.contains(&(
            "sc1.Department.Dname".into(),
            "sc2.Department.Dname".into()
        )));
        // Sorted descending.
        for w in suggestions.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn incompatible_domains_never_suggested() {
        let mut s = Session::new();
        let sc1 = s.add_schema(fixtures::sc1()).unwrap();
        let sc2 = s.add_schema(fixtures::sc2()).unwrap();
        let w = WeightedResemblance::default();
        // Even with a zero threshold, Name(char) vs GPA(real) is omitted.
        let suggestions = suggest_equivalences(s.catalog(), &w, sc1, sc2, 0.0);
        let name = s.catalog().attr_named("sc1", "Student", "Name").unwrap();
        let gpa = s.catalog().attr_named("sc2", "Grad_student", "GPA").unwrap();
        assert!(!suggestions.iter().any(|sg| sg.a == name && sg.b == gpa));
    }

    #[test]
    fn threshold_filters() {
        let mut s = Session::new();
        let sc1 = s.add_schema(fixtures::sc1()).unwrap();
        let sc2 = s.add_schema(fixtures::sc2()).unwrap();
        let w = WeightedResemblance::default();
        let lo = suggest_equivalences(s.catalog(), &w, sc1, sc2, 0.1).len();
        let hi = suggest_equivalences(s.catalog(), &w, sc1, sc2, 0.9).len();
        assert!(lo >= hi);
    }
}
