//! The [`Schema`] container and its [`SchemaBuilder`].
//!
//! A schema is a named collection of object classes (entity sets and
//! categories) and relationship sets. It corresponds to one *component
//! schema* of the paper (a user view in the logical-design context, or an
//! existing database schema in the global-design context), and also to the
//! *integrated schema* produced by phase 4 — `sit-core` emits a plain
//! [`Schema`] plus mapping metadata.

use std::collections::HashMap;

use crate::attribute::Attribute;
use crate::domain::Domain;
use crate::error::{EcrError, Result};
use crate::ids::{AttrId, ObjectId, RelId};
use crate::object::{ObjectClass, ObjectKind};
use crate::relationship::{Cardinality, Participant, RelationshipSet};
use crate::validate;

/// Identifies the owner of an attribute — either an object class or a
/// relationship set. Attribute equivalence (phase 2) is declared separately
/// for the two kinds, matching the paper's main-menu split (tasks 2 and 4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AttrOwner {
    /// Attribute of an object class.
    Object(ObjectId),
    /// Attribute of a relationship set.
    Rel(RelId),
}

/// A complete ECR schema.
#[derive(Clone, PartialEq, Debug)]
pub struct Schema {
    name: String,
    objects: Vec<ObjectClass>,
    relationships: Vec<RelationshipSet>,
    object_index: HashMap<String, ObjectId>,
    rel_index: HashMap<String, RelId>,
}

impl Schema {
    /// Schema name (e.g. `sc1`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of object classes (entity sets + categories).
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Number of relationship sets.
    pub fn relationship_count(&self) -> usize {
        self.relationships.len()
    }

    /// Object class by id.
    pub fn object(&self, id: ObjectId) -> &ObjectClass {
        &self.objects[id.index()]
    }

    /// Object class by id, if in range.
    pub fn try_object(&self, id: ObjectId) -> Option<&ObjectClass> {
        self.objects.get(id.index())
    }

    /// Relationship set by id.
    pub fn relationship(&self, id: RelId) -> &RelationshipSet {
        &self.relationships[id.index()]
    }

    /// Relationship set by id, if in range.
    pub fn try_relationship(&self, id: RelId) -> Option<&RelationshipSet> {
        self.relationships.get(id.index())
    }

    /// Look up an object class by name.
    pub fn object_by_name(&self, name: &str) -> Option<ObjectId> {
        self.object_index.get(name).copied()
    }

    /// Look up a relationship set by name.
    pub fn rel_by_name(&self, name: &str) -> Option<RelId> {
        self.rel_index.get(name).copied()
    }

    /// All object ids in definition order.
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> {
        (0..self.objects.len() as u32).map(ObjectId::new)
    }

    /// All relationship ids in definition order.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> {
        (0..self.relationships.len() as u32).map(RelId::new)
    }

    /// Iterate `(id, object)` pairs.
    pub fn objects(&self) -> impl Iterator<Item = (ObjectId, &ObjectClass)> {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjectId::new(i as u32), o))
    }

    /// Iterate `(id, relationship set)` pairs.
    pub fn relationships(&self) -> impl Iterator<Item = (RelId, &RelationshipSet)> {
        self.relationships
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId::new(i as u32), r))
    }

    /// Entity sets only.
    pub fn entity_sets(&self) -> impl Iterator<Item = (ObjectId, &ObjectClass)> {
        self.objects()
            .filter(|(_, o)| matches!(o.kind, ObjectKind::EntitySet))
    }

    /// Categories only.
    pub fn categories(&self) -> impl Iterator<Item = (ObjectId, &ObjectClass)> {
        self.objects().filter(|(_, o)| o.kind.is_category())
    }

    /// Attribute lookup through an [`AttrOwner`].
    pub fn attr_of(&self, owner: AttrOwner, attr: AttrId) -> Option<&Attribute> {
        match owner {
            AttrOwner::Object(o) => self.try_object(o)?.attr(attr),
            AttrOwner::Rel(r) => self.try_relationship(r)?.attr(attr),
        }
    }

    /// Name of an attribute owner.
    pub fn owner_name(&self, owner: AttrOwner) -> Option<&str> {
        match owner {
            AttrOwner::Object(o) => self.try_object(o).map(|x| x.name.as_str()),
            AttrOwner::Rel(r) => self.try_relationship(r).map(|x| x.name.as_str()),
        }
    }

    /// Local attributes of an owner.
    pub fn owner_attrs(&self, owner: AttrOwner) -> &[Attribute] {
        match owner {
            AttrOwner::Object(o) => &self.object(o).attributes,
            AttrOwner::Rel(r) => &self.relationship(r).attributes,
        }
    }

    /// Relationship sets that `object` participates in.
    pub fn relationships_of(&self, object: ObjectId) -> impl Iterator<Item = RelId> + '_ {
        self.relationships()
            .filter(move |(_, r)| r.involves(object))
            .map(|(id, _)| id)
    }

    /// Direct children of `object` in the IS-A graph — the categories
    /// defined (partly) over it.
    pub fn children_of(&self, object: ObjectId) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects()
            .filter(move |(_, o)| o.parents().contains(&object))
            .map(|(id, _)| id)
    }

    /// Consume and decompose into raw parts, for in-place editing (the
    /// tool's "update" menu options re-enter schema collection on an
    /// existing schema).
    pub fn into_parts(self) -> (String, Vec<ObjectClass>, Vec<RelationshipSet>) {
        (self.name, self.objects, self.relationships)
    }

    /// Reassemble from parts; recomputes the name indexes and re-validates.
    pub fn from_parts(
        name: String,
        objects: Vec<ObjectClass>,
        relationships: Vec<RelationshipSet>,
    ) -> Result<Schema> {
        let mut b = SchemaBuilder::new(name);
        b.objects = objects;
        b.relationships = relationships;
        b.build()
    }

    /// Total number of attributes in the schema (objects + relationships),
    /// a size measure used by the benchmarks.
    pub fn total_attr_count(&self) -> usize {
        self.objects
            .iter()
            .map(ObjectClass::attr_count)
            .chain(self.relationships.iter().map(RelationshipSet::attr_count))
            .sum()
    }
}

/// Step-by-step construction of a [`Schema`], mirroring the paper's Schema
/// Collection screens: structures first, then attributes, then participants.
#[derive(Clone, Debug)]
pub struct SchemaBuilder {
    name: String,
    pub(crate) objects: Vec<ObjectClass>,
    pub(crate) relationships: Vec<RelationshipSet>,
}

impl SchemaBuilder {
    /// Start a schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            objects: Vec::new(),
            relationships: Vec::new(),
        }
    }

    /// Begin an entity set; finish with [`ObjectBuilder::finish`].
    pub fn entity_set(&mut self, name: impl Into<String>) -> ObjectBuilder<'_> {
        self.objects.push(ObjectClass::entity_set(name));
        ObjectBuilder { b: self }
    }

    /// Begin a category over already-defined parents.
    pub fn category(
        &mut self,
        name: impl Into<String>,
        parents: Vec<ObjectId>,
    ) -> ObjectBuilder<'_> {
        self.objects.push(ObjectClass::category(name, parents));
        ObjectBuilder { b: self }
    }

    /// Begin a category, naming its parents.
    pub fn category_of(
        &mut self,
        name: impl Into<String>,
        parent_names: &[&str],
    ) -> Result<ObjectBuilder<'_>> {
        let mut parents = Vec::with_capacity(parent_names.len());
        for p in parent_names {
            parents.push(
                self.object_by_name(p)
                    .ok_or_else(|| EcrError::UnknownName((*p).to_owned()))?,
            );
        }
        Ok(self.category(name, parents))
    }

    /// Begin a relationship set; add participants then `finish()`.
    pub fn relationship(&mut self, name: impl Into<String>) -> RelBuilder<'_> {
        self.relationships.push(RelationshipSet::new(name));
        RelBuilder { b: self }
    }

    /// The object classes added so far, in definition order (their index
    /// is the [`ObjectId`] they will carry after `build`).
    pub fn pending_objects(&self) -> &[ObjectClass] {
        &self.objects
    }

    /// Resolve an already-added object class by name.
    pub fn object_by_name(&self, name: &str) -> Option<ObjectId> {
        self.objects
            .iter()
            .position(|o| o.name == name)
            .map(|i| ObjectId::new(i as u32))
    }

    /// Validate and freeze.
    pub fn build(self) -> Result<Schema> {
        let mut object_index = HashMap::with_capacity(self.objects.len());
        for (i, o) in self.objects.iter().enumerate() {
            if object_index
                .insert(o.name.clone(), ObjectId::new(i as u32))
                .is_some()
            {
                return Err(EcrError::DuplicateName {
                    name: o.name.clone(),
                    kind: "object class",
                });
            }
        }
        let mut rel_index = HashMap::with_capacity(self.relationships.len());
        for (i, r) in self.relationships.iter().enumerate() {
            if rel_index
                .insert(r.name.clone(), RelId::new(i as u32))
                .is_some()
            {
                return Err(EcrError::DuplicateName {
                    name: r.name.clone(),
                    kind: "relationship set",
                });
            }
        }
        let schema = Schema {
            name: self.name,
            objects: self.objects,
            relationships: self.relationships,
            object_index,
            rel_index,
        };
        let violations = validate::validate(&schema);
        if violations.is_empty() {
            Ok(schema)
        } else {
            Err(EcrError::Invalid(violations))
        }
    }
}

/// Fluent attribute addition for the object class under construction.
pub struct ObjectBuilder<'a> {
    b: &'a mut SchemaBuilder,
}

impl ObjectBuilder<'_> {
    fn current(&mut self) -> &mut ObjectClass {
        self.b
            .objects
            .last_mut()
            .expect("ObjectBuilder exists only after a push")
    }

    /// Add a non-key attribute.
    pub fn attr(mut self, name: impl Into<String>, domain: Domain) -> Self {
        self.current().attributes.push(Attribute::new(name, domain));
        self
    }

    /// Add a key attribute.
    pub fn attr_key(mut self, name: impl Into<String>, domain: Domain) -> Self {
        self.current().attributes.push(Attribute::key(name, domain));
        self
    }

    /// Finish, returning the new object's id.
    pub fn finish(self) -> ObjectId {
        ObjectId::new((self.b.objects.len() - 1) as u32)
    }
}

/// Fluent construction of the relationship set being added.
pub struct RelBuilder<'a> {
    b: &'a mut SchemaBuilder,
}

impl RelBuilder<'_> {
    /// Read access to the underlying schema builder (for name resolution
    /// while participants are being added).
    pub fn builder(&self) -> &SchemaBuilder {
        self.b
    }

    fn current(&mut self) -> &mut RelationshipSet {
        self.b
            .relationships
            .last_mut()
            .expect("RelBuilder exists only after a push")
    }

    /// Add a participating object class with its structural constraint.
    pub fn participant(mut self, object: ObjectId, cardinality: Cardinality) -> Self {
        self.current()
            .participants
            .push(Participant::new(object, cardinality));
        self
    }

    /// Add a participant with a role name.
    pub fn participant_role(
        mut self,
        object: ObjectId,
        cardinality: Cardinality,
        role: impl Into<String>,
    ) -> Self {
        self.current()
            .participants
            .push(Participant::with_role(object, cardinality, role));
        self
    }

    /// Add a non-key attribute to the relationship itself.
    pub fn attr(mut self, name: impl Into<String>, domain: Domain) -> Self {
        self.current().attributes.push(Attribute::new(name, domain));
        self
    }

    /// Add a key attribute to the relationship itself.
    pub fn attr_key(mut self, name: impl Into<String>, domain: Domain) -> Self {
        self.current().attributes.push(Attribute::key(name, domain));
        self
    }

    /// Finish, returning the new relationship set's id.
    pub fn finish(self) -> RelId {
        RelId::new((self.b.relationships.len() - 1) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        let mut b = SchemaBuilder::new("sc1");
        let student = b
            .entity_set("Student")
            .attr_key("Name", Domain::Char)
            .attr("GPA", Domain::Real)
            .finish();
        let dept = b
            .entity_set("Department")
            .attr_key("Dname", Domain::Char)
            .finish();
        b.category_of("Honors", &["Student"])
            .unwrap()
            .attr("Thesis", Domain::Char)
            .finish();
        b.relationship("Majors")
            .participant(student, Cardinality::AT_MOST_ONE)
            .participant(dept, Cardinality::MANY)
            .attr("Since", Domain::Date)
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_consistent_schema() {
        let s = sample();
        assert_eq!(s.name(), "sc1");
        assert_eq!(s.object_count(), 3);
        assert_eq!(s.relationship_count(), 1);
        assert_eq!(s.entity_sets().count(), 2);
        assert_eq!(s.categories().count(), 1);
        assert_eq!(s.total_attr_count(), 5);
    }

    #[test]
    fn lookups_by_name() {
        let s = sample();
        let student = s.object_by_name("Student").unwrap();
        assert_eq!(s.object(student).name, "Student");
        assert!(s.object_by_name("Nope").is_none());
        let majors = s.rel_by_name("Majors").unwrap();
        assert_eq!(s.relationship(majors).degree(), 2);
        assert_eq!(s.relationships_of(student).count(), 1);
        let honors = s.object_by_name("Honors").unwrap();
        assert_eq!(s.children_of(student).collect::<Vec<_>>(), vec![honors]);
    }

    #[test]
    fn attr_owner_access() {
        let s = sample();
        let student = s.object_by_name("Student").unwrap();
        let a = s.attr_of(AttrOwner::Object(student), AttrId::new(0)).unwrap();
        assert_eq!(a.name, "Name");
        assert!(a.is_key());
        let majors = s.rel_by_name("Majors").unwrap();
        let since = s.attr_of(AttrOwner::Rel(majors), AttrId::new(0)).unwrap();
        assert_eq!(since.name, "Since");
        assert_eq!(s.owner_name(AttrOwner::Object(student)), Some("Student"));
        assert_eq!(s.owner_name(AttrOwner::Rel(majors)), Some("Majors"));
        assert_eq!(s.owner_attrs(AttrOwner::Rel(majors)).len(), 1);
    }

    #[test]
    fn duplicate_object_name_rejected() {
        let mut b = SchemaBuilder::new("bad");
        b.entity_set("X").finish();
        b.entity_set("X").finish();
        assert!(matches!(
            b.build(),
            Err(EcrError::DuplicateName { kind: "object class", .. })
        ));
    }

    #[test]
    fn duplicate_relationship_name_rejected() {
        let mut b = SchemaBuilder::new("bad");
        let x = b.entity_set("X").finish();
        let y = b.entity_set("Y").finish();
        b.relationship("R")
            .participant(x, Cardinality::MANY)
            .participant(y, Cardinality::MANY)
            .finish();
        b.relationship("R")
            .participant(x, Cardinality::MANY)
            .participant(y, Cardinality::MANY)
            .finish();
        assert!(matches!(
            b.build(),
            Err(EcrError::DuplicateName { kind: "relationship set", .. })
        ));
    }

    #[test]
    fn unknown_parent_name_rejected() {
        let mut b = SchemaBuilder::new("bad");
        b.entity_set("X").finish();
        assert!(matches!(
            b.category_of("C", &["Missing"]),
            Err(EcrError::UnknownName(_))
        ));
    }

    #[test]
    fn parts_roundtrip() {
        let s = sample();
        let copy = s.clone();
        let (name, objs, rels) = s.into_parts();
        let back = Schema::from_parts(name, objs, rels).unwrap();
        assert_eq!(back, copy);
    }
}
