//! The paper's example schemas, exactly as used by its figures and screens.
//!
//! These fixtures drive the reproduction tests and the `figures` binary in
//! `sit-bench`:
//!
//! * [`sc1`] / [`sc2`] — Figures 3 and 4, the university schemas whose
//!   integration yields Figure 5.
//! * [`sc3`] / [`sc4`] — the schemas behind Screen 9's assertion conflict.
//! * `fig2_*` — the schema pairs of Figures 2a–2e illustrating the five
//!   assertion types.
//!
//! Each fixture is written in the DDL (exercising the parser) and panics
//! only on programmer error (the strings are constants).

use crate::ddl;
use crate::schema::Schema;

fn must(src: &str) -> Schema {
    ddl::parse(src).expect("fixture schemas are valid")
}

/// Figure 3 — input schema `sc1`: `Student(Name key, GPA)`,
/// `Department(Dname key)`, `Majors(Student, Department)` with one
/// relationship attribute (Screen 3 lists `Majors ... # of attributes: 1`).
pub fn sc1() -> Schema {
    must(r#"
    schema sc1 {
      entity Student {
        Name: char key;
        GPA: real;
      }
      entity Department {
        Dname: char key;
      }
      relationship Majors {
        Student (0,1);
        Department (0,n);
        Since: date;
      }
    }
    "#)
}

/// Figure 4 — input schema `sc2`: `Grad_student(Name key, GPA,
/// Support_type)` (Screen 7), `Faculty(Name key, Rank)`,
/// `Department(Dname key)`, `Majors(Grad_student, Department)` and
/// `Works(Faculty, Department)` (both appear in Figure 5's integrated
/// schema as `E_Stud_Majo` and `Works`).
pub fn sc2() -> Schema {
    must(r#"
    schema sc2 {
      entity Grad_student {
        Name: char key;
        GPA: real;
        Support_type: char;
      }
      entity Faculty {
        Name: char key;
        Rank: char;
      }
      entity Department {
        Dname: char key;
      }
      relationship Majors {
        Grad_student (0,1);
        Department (0,n);
        Since: date;
      }
      relationship Works {
        Faculty (1,1);
        Department (0,n);
      }
    }
    "#)
}

/// Screen 9's schema `sc3`: an `Instructor` entity set.
pub fn sc3() -> Schema {
    must(r#"
    schema sc3 {
      entity Instructor {
        Name: char key;
        Office: char;
      }
    }
    "#)
}

/// Screen 9's schema `sc4`: `Student` with a `Grad_student` category —
/// the intra-schema containment `sc4.Grad_student ⊆ sc4.Student` shown on
/// line 4 of the Assertion Conflict Resolution Screen comes from this
/// category structure.
pub fn sc4() -> Schema {
    must(r#"
    schema sc4 {
      entity Student {
        Name: char key;
        GPA: real;
      }
      category Grad_student of Student {
        Support_type: char;
      }
    }
    "#)
}

/// Figure 2a — two schemas each with a `Department` whose domains are
/// identical ("equals" assertion; integration merges them into
/// `E_Department`).
pub fn fig2a() -> (Schema, Schema) {
    let a = must(r#"
    schema sc1 {
      entity Department { Dname: char key; Budget: real; }
    }
    "#);
    let b = must(r#"
    schema sc2 {
      entity Department { Dname: char key; Location: char; }
    }
    "#);
    (a, b)
}

/// Figure 2b — `Student` (sc1) contains `Grad_student` (sc2); after
/// integration `Grad_student` becomes a category of `Student`.
pub fn fig2b() -> (Schema, Schema) {
    let a = must(r#"
    schema sc1 {
      entity Student { Name: char key; GPA: real; }
    }
    "#);
    let b = must(r#"
    schema sc2 {
      entity Grad_student { Name: char key; Support_type: char; }
    }
    "#);
    (a, b)
}

/// Figure 2c — `Grad_student` and `Instructor` overlap ("may be"
/// assertion); integration creates the derived entity set `D_Grad_Inst`
/// with both as categories.
pub fn fig2c() -> (Schema, Schema) {
    let a = must(r#"
    schema sc1 {
      entity Grad_student { Name: char key; Support_type: char; }
    }
    "#);
    let b = must(r#"
    schema sc2 {
      entity Instructor { Name: char key; Course: char; }
    }
    "#);
    (a, b)
}

/// Figure 2d — `Secretary` and `Engineer` are disjoint but integrable;
/// integration creates `D_Secr_Engi` (the concept of employee).
pub fn fig2d() -> (Schema, Schema) {
    let a = must(r#"
    schema sc1 {
      entity Secretary { Name: char key; Typing_speed: int; }
    }
    "#);
    let b = must(r#"
    schema sc2 {
      entity Engineer { Name: char key; Discipline: char; }
    }
    "#);
    (a, b)
}

/// Figure 2e — `Under_Grad_Student` and `Full_Professor` are disjoint and
/// non-integrable; integration keeps them separate.
pub fn fig2e() -> (Schema, Schema) {
    let a = must(r#"
    schema sc1 {
      entity Under_Grad_Student { Name: char key; Class_year: int; }
    }
    "#);
    let b = must(r#"
    schema sc2 {
      entity Full_Professor { Name: char key; Chair: char; }
    }
    "#);
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sc1_matches_screen3_inventory() {
        let s = sc1();
        // Screen 3: Student e 2, Department e 1, Majors r 1.
        let student = s.object(s.object_by_name("Student").unwrap());
        assert_eq!(student.attr_count(), 2);
        let dept = s.object(s.object_by_name("Department").unwrap());
        assert_eq!(dept.attr_count(), 1);
        let majors = s.relationship(s.rel_by_name("Majors").unwrap());
        assert_eq!(majors.attr_count(), 1);
        // Screen 5: Name char key, GPA real non-key.
        assert!(student.attributes[0].is_key());
        assert_eq!(student.attributes[0].name, "Name");
        assert_eq!(student.attributes[1].name, "GPA");
        assert!(!student.attributes[1].is_key());
    }

    #[test]
    fn sc2_matches_screen7_attributes() {
        let s = sc2();
        let grad = s.object(s.object_by_name("Grad_student").unwrap());
        let names: Vec<&str> = grad.attributes.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["Name", "GPA", "Support_type"]);
    }

    #[test]
    fn sc4_has_intra_schema_containment() {
        let s = sc4();
        let grad = s.object(s.object_by_name("Grad_student").unwrap());
        assert!(grad.kind.is_category());
        let student = s.object_by_name("Student").unwrap();
        assert_eq!(grad.parents(), &[student]);
    }

    #[test]
    fn all_fixtures_valid_and_renderable() {
        for s in [sc1(), sc2(), sc3(), sc4()] {
            assert!(crate::validate::validate(&s).is_empty());
            assert!(!crate::render::render(&s).is_empty());
        }
        for (a, b) in [fig2a(), fig2b(), fig2c(), fig2d(), fig2e()] {
            assert!(crate::validate::validate(&a).is_empty());
            assert!(crate::validate::validate(&b).is_empty());
        }
    }

    #[test]
    fn fixtures_roundtrip_through_ddl() {
        for s in [sc1(), sc2(), sc3(), sc4()] {
            let text = crate::ddl::print(&s);
            assert_eq!(crate::ddl::parse(&text).unwrap(), s);
        }
    }
}
