//! A textual data-description language for ECR schemas.
//!
//! The paper notes the ECR model comes with "its data description language";
//! the tool's Schema Collection screens are form-based entry for the same
//! information. This module provides the batch equivalent: a compact text
//! format, so component schemas can live in files, fixtures, and tests.
//!
//! ## Grammar
//!
//! ```text
//! schema    := "schema" IDENT "{" element* "}"
//! element   := entity | category | relationship
//! entity    := "entity" IDENT "{" attr* "}"
//! category  := "category" IDENT "of" IDENT ("," IDENT)* "{" attr* "}"
//! relationship := "relationship" IDENT "{" (leg | attr)* "}"
//! leg       := IDENT "(" NUM "," (NUM | "n") ")" ("role" IDENT)? ";"
//! attr      := IDENT ":" DOMAIN ("key")? ";"
//! DOMAIN    := "char" | "int" | "real" | "bool" | "date"
//!            | "enum" "{" IDENT ("," IDENT)* "}" | IDENT
//! ```
//!
//! Comments run from `#` to end of line.
//!
//! ```
//! let text = r#"
//! schema sc1 {
//!   entity Student { Name: char key; GPA: real; }
//!   entity Department { Dname: char key; }
//!   relationship Majors {
//!     Student (0,1);
//!     Department (0,n);
//!   }
//! }
//! "#;
//! let schema = sit_ecr::ddl::parse(text).unwrap();
//! assert_eq!(schema.name(), "sc1");
//! let round = sit_ecr::ddl::print(&schema);
//! assert_eq!(sit_ecr::ddl::parse(&round).unwrap(), schema);
//! ```

mod lexer;
mod parser;
mod printer;

pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse, parse_many};
pub use printer::print;
