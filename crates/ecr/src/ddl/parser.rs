//! Recursive-descent parser for the ECR DDL.

use crate::ddl::lexer::{Lexer, Token, TokenKind};
use crate::domain::Domain;
use crate::error::{EcrError, Result};
use crate::relationship::Cardinality;
use crate::schema::{Schema, SchemaBuilder};

/// Parse exactly one `schema` block.
pub fn parse(src: &str) -> Result<Schema> {
    let mut schemas = parse_many(src)?;
    match schemas.len() {
        1 => Ok(schemas.pop().expect("len checked")),
        n => Err(EcrError::Parse {
            line: 1,
            col: 1,
            msg: format!("expected exactly one schema, found {n}"),
        }),
    }
}

/// Parse a file containing any number of `schema` blocks.
pub fn parse_many(src: &str) -> Result<Vec<Schema>> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser { tokens, at: 0 };
    let mut out = Vec::new();
    while !p.at_eof() {
        out.push(p.schema()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at.min(self.tokens.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.at < self.tokens.len() - 1 {
            self.at += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> EcrError {
        let t = self.peek();
        EcrError::Parse {
            line: t.line,
            col: t.col,
            msg: msg.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().kind.describe()
            )))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.error(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found {}", other.describe()))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn schema(&mut self) -> Result<Schema> {
        self.keyword("schema")?;
        let name = self.ident("schema name")?;
        self.expect(&TokenKind::LBrace)?;
        let mut b = SchemaBuilder::new(name);
        while self.peek().kind != TokenKind::RBrace {
            if self.peek_keyword("entity") {
                self.entity(&mut b)?;
            } else if self.peek_keyword("category") {
                self.category(&mut b)?;
            } else if self.peek_keyword("relationship") {
                self.relationship(&mut b)?;
            } else {
                return Err(self.error(format!(
                    "expected `entity`, `category` or `relationship`, found {}",
                    self.peek().kind.describe()
                )));
            }
        }
        self.expect(&TokenKind::RBrace)?;
        b.build()
    }

    fn entity(&mut self, b: &mut SchemaBuilder) -> Result<()> {
        self.keyword("entity")?;
        let name = self.ident("entity name")?;
        self.expect(&TokenKind::LBrace)?;
        let mut ob = b.entity_set(name);
        while self.peek().kind != TokenKind::RBrace {
            let (aname, domain, key) = self.attr()?;
            ob = if key {
                ob.attr_key(aname, domain)
            } else {
                ob.attr(aname, domain)
            };
        }
        ob.finish();
        self.expect(&TokenKind::RBrace)?;
        Ok(())
    }

    fn category(&mut self, b: &mut SchemaBuilder) -> Result<()> {
        self.keyword("category")?;
        let name = self.ident("category name")?;
        self.keyword("of")?;
        let mut parents = vec![self.ident("parent name")?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            parents.push(self.ident("parent name")?);
        }
        self.expect(&TokenKind::LBrace)?;
        let parent_refs: Vec<&str> = parents.iter().map(String::as_str).collect();
        let mut ob = b.category_of(name, &parent_refs)?;
        while self.peek().kind != TokenKind::RBrace {
            let (aname, domain, key) = self.attr()?;
            ob = if key {
                ob.attr_key(aname, domain)
            } else {
                ob.attr(aname, domain)
            };
        }
        ob.finish();
        self.expect(&TokenKind::RBrace)?;
        Ok(())
    }

    fn relationship(&mut self, b: &mut SchemaBuilder) -> Result<()> {
        self.keyword("relationship")?;
        let name = self.ident("relationship name")?;
        self.expect(&TokenKind::LBrace)?;
        // Collect members first so the builder borrow stays simple.
        enum Member {
            Leg(String, Cardinality, Option<String>),
            Attr(String, Domain, bool),
        }
        let mut members = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            let mname = self.ident("participant or attribute name")?;
            match self.peek().kind {
                TokenKind::LParen => {
                    let card = self.cardinality()?;
                    let role = if self.peek_keyword("role") {
                        self.bump();
                        Some(self.ident("role name")?)
                    } else {
                        None
                    };
                    self.expect(&TokenKind::Semi)?;
                    members.push(Member::Leg(mname, card, role));
                }
                TokenKind::Colon => {
                    self.bump();
                    let domain = self.domain()?;
                    let key = if self.peek_keyword("key") {
                        self.bump();
                        true
                    } else {
                        false
                    };
                    self.expect(&TokenKind::Semi)?;
                    members.push(Member::Attr(mname, domain, key));
                }
                _ => {
                    return Err(self.error(format!(
                        "expected `(` (participant) or `:` (attribute), found {}",
                        self.peek().kind.describe()
                    )))
                }
            }
        }
        self.expect(&TokenKind::RBrace)?;
        let mut rb = b.relationship(name);
        for m in members {
            rb = match m {
                Member::Leg(oname, card, role) => {
                    let oid = rb_lookup(rb.b(), &oname)?;
                    match role {
                        Some(r) => rb.participant_role(oid, card, r),
                        None => rb.participant(oid, card),
                    }
                }
                Member::Attr(aname, domain, true) => rb.attr_key(aname, domain),
                Member::Attr(aname, domain, false) => rb.attr(aname, domain),
            };
        }
        rb.finish();
        Ok(())
    }

    fn cardinality(&mut self) -> Result<Cardinality> {
        self.expect(&TokenKind::LParen)?;
        let min = self.num("minimum cardinality")?;
        self.expect(&TokenKind::Comma)?;
        let max = match &self.peek().kind {
            TokenKind::Num(n) => {
                let n = *n;
                self.bump();
                Some(n)
            }
            TokenKind::Ident(s) if s == "n" || s == "N" => {
                self.bump();
                None
            }
            other => {
                return Err(self.error(format!(
                    "expected a number or `n`, found {}",
                    other.describe()
                )))
            }
        };
        self.expect(&TokenKind::RParen)?;
        Ok(Cardinality::new(min, max))
    }

    fn num(&mut self, what: &str) -> Result<u32> {
        match self.peek().kind {
            TokenKind::Num(n) => {
                self.bump();
                Ok(n)
            }
            ref other => Err(self.error(format!("expected {what}, found {}", other.describe()))),
        }
    }

    fn domain(&mut self) -> Result<Domain> {
        let name = self.ident("domain")?;
        if name == "enum" {
            self.expect(&TokenKind::LBrace)?;
            let mut vals = vec![self.ident("enum value")?];
            while self.peek().kind == TokenKind::Comma {
                self.bump();
                vals.push(self.ident("enum value")?);
            }
            self.expect(&TokenKind::RBrace)?;
            Ok(Domain::Enum(vals))
        } else {
            name.parse()
        }
    }

    fn attr(&mut self) -> Result<(String, Domain, bool)> {
        let name = self.ident("attribute name")?;
        self.expect(&TokenKind::Colon)?;
        let domain = self.domain()?;
        let key = if self.peek_keyword("key") {
            self.bump();
            true
        } else {
            false
        };
        self.expect(&TokenKind::Semi)?;
        Ok((name, domain, key))
    }
}

/// Borrow helper: `RelBuilder` needs name lookup against its underlying
/// `SchemaBuilder` while the relationship is mid-construction.
trait RelBuilderExt {
    fn b(&self) -> &SchemaBuilder;
}

impl RelBuilderExt for crate::schema::RelBuilder<'_> {
    fn b(&self) -> &SchemaBuilder {
        self.builder()
    }
}

fn rb_lookup(b: &SchemaBuilder, name: &str) -> Result<crate::ids::ObjectId> {
    b.object_by_name(name)
        .ok_or_else(|| EcrError::UnknownName(name.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKind;

    const SC1: &str = r#"
    # Paper Figure 3: schema sc1
    schema sc1 {
      entity Student { Name: char key; GPA: real; }
      entity Department { Dname: char key; }
      relationship Majors {
        Student (0,1);
        Department (0,n);
        Since: date;
      }
    }
    "#;

    #[test]
    fn parses_simple_schema() {
        let s = parse(SC1).unwrap();
        assert_eq!(s.name(), "sc1");
        assert_eq!(s.object_count(), 2);
        assert_eq!(s.relationship_count(), 1);
        let majors = s.relationship(s.rel_by_name("Majors").unwrap());
        assert_eq!(majors.degree(), 2);
        assert_eq!(majors.participants[0].cardinality, Cardinality::AT_MOST_ONE);
        assert_eq!(majors.participants[1].cardinality, Cardinality::MANY);
        assert_eq!(majors.attributes[0].name, "Since");
    }

    #[test]
    fn parses_categories_roles_and_enums() {
        let src = r#"
        schema sc2 {
          entity Person { SSN: int key; }
          category Grad of Person { Support_type: enum{TA, RA}; }
          relationship Advises {
            Person (0,n) role advisor;
            Grad (1,1) role advisee;
          }
        }
        "#;
        let s = parse(src).unwrap();
        let grad = s.object(s.object_by_name("Grad").unwrap());
        assert!(matches!(grad.kind, ObjectKind::Category { .. }));
        assert_eq!(
            grad.attributes[0].domain,
            Domain::Enum(vec!["TA".into(), "RA".into()])
        );
        let adv = s.relationship(s.rel_by_name("Advises").unwrap());
        assert_eq!(adv.participants[0].role.as_deref(), Some("advisor"));
        assert_eq!(adv.participants[1].cardinality, Cardinality::ONE);
    }

    #[test]
    fn parse_many_reads_multiple_schemas() {
        let src = "schema a { entity X { } } schema b { entity Y { } }";
        let ss = parse_many(src).unwrap();
        assert_eq!(ss.len(), 2);
        assert_eq!(ss[0].name(), "a");
        assert_eq!(ss[1].name(), "b");
    }

    #[test]
    fn parse_rejects_multiple_when_one_expected() {
        let src = "schema a { } schema b { }";
        let err = parse(src).unwrap_err().to_string();
        assert!(err.contains("exactly one schema"), "{err}");
    }

    #[test]
    fn reports_position_of_syntax_errors() {
        let err = parse("schema x {\n  entity E { bad }\n}").unwrap_err();
        match err {
            EcrError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn unknown_participant_is_an_error() {
        let src = "schema x { entity A { } relationship R { A (0,n); Ghost (0,n); } }";
        let err = parse(src).unwrap_err().to_string();
        assert!(err.contains("Ghost"), "{err}");
    }

    #[test]
    fn unknown_category_parent_is_an_error() {
        let src = "schema x { category C of Ghost { } }";
        let err = parse(src).unwrap_err().to_string();
        assert!(err.contains("Ghost"), "{err}");
    }

    #[test]
    fn key_is_usable_as_attribute_name() {
        // `key` only acts as a keyword after a domain.
        let src = "schema x { entity E { key: int key; } }";
        let s = parse(src).unwrap();
        let e = s.object(s.object_by_name("E").unwrap());
        assert_eq!(e.attributes[0].name, "key");
        assert!(e.attributes[0].is_key());
    }
}
