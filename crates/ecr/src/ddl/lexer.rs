//! Tokenizer for the ECR DDL.

use crate::error::{EcrError, Result};

/// Kinds of token the DDL grammar uses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (`schema`, `entity`, names, ...). Keywords are
    /// distinguished by the parser so names like `key` can still appear as
    /// identifiers where unambiguous.
    Ident(String),
    /// Unsigned integer literal (used in cardinalities).
    Num(u32),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("`{s}`"),
            TokenKind::Num(n) => format!("`{n}`"),
            TokenKind::LBrace => "`{`".to_owned(),
            TokenKind::RBrace => "`}`".to_owned(),
            TokenKind::LParen => "`(`".to_owned(),
            TokenKind::RParen => "`)`".to_owned(),
            TokenKind::Colon => "`:`".to_owned(),
            TokenKind::Semi => "`;`".to_owned(),
            TokenKind::Comma => "`,`".to_owned(),
            TokenKind::Eof => "end of input".to_owned(),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Hand-rolled single-pass lexer.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    /// Lex over `src`.
    pub fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Tokenize the whole input (the final token is always
    /// [`TokenKind::Eof`]).
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                self.bump();
            } else if c == b'#' {
                while let Some(c) = self.peek() {
                    if c == b'\n' {
                        break;
                    }
                    self.bump();
                }
            } else {
                break;
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let mk = |kind| Token { kind, line, col };
        let Some(c) = self.peek() else {
            return Ok(mk(TokenKind::Eof));
        };
        let kind = match c {
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b':' => {
                self.bump();
                TokenKind::Colon
            }
            b';' => {
                self.bump();
                TokenKind::Semi
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b'0'..=b'9' => {
                let mut n: u64 = 0;
                while let Some(d) = self.peek() {
                    if d.is_ascii_digit() {
                        n = n * 10 + u64::from(d - b'0');
                        if n > u64::from(u32::MAX) {
                            return Err(EcrError::Parse {
                                line,
                                col,
                                msg: "number too large".to_owned(),
                            });
                        }
                        self.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Num(n as u32)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while let Some(d) = self.peek() {
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let s = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ASCII ident")
                    .to_owned();
                TokenKind::Ident(s)
            }
            other => {
                return Err(EcrError::Parse {
                    line,
                    col,
                    msg: format!("unexpected character `{}`", other as char),
                })
            }
        };
        Ok(mk(kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_punctuation_and_idents() {
        assert_eq!(
            kinds("schema sc1 { }"),
            vec![
                TokenKind::Ident("schema".into()),
                TokenKind::Ident("sc1".into()),
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_cardinality() {
        assert_eq!(
            kinds("(0,17)"),
            vec![
                TokenKind::LParen,
                TokenKind::Num(0),
                TokenKind::Comma,
                TokenKind::Num(17),
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_positions() {
        let toks = Lexer::new("# header\n  x").tokenize().unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("x".into()));
        assert_eq!((toks[0].line, toks[0].col), (2, 3));
    }

    #[test]
    fn rejects_stray_characters() {
        let err = Lexer::new("a @ b").tokenize().unwrap_err();
        assert!(err.to_string().contains("unexpected character `@`"));
    }

    #[test]
    fn rejects_huge_numbers() {
        let err = Lexer::new("99999999999").tokenize().unwrap_err();
        assert!(err.to_string().contains("number too large"));
    }
}
