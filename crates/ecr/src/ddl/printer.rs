//! Pretty-printer: the inverse of [`crate::ddl::parse`].
//!
//! `parse(print(s)) == s` for every valid schema, which the property tests
//! in the workspace `tests/` crate verify on generated schemas.

use std::fmt::Write as _;

use crate::object::ObjectKind;
use crate::schema::Schema;

/// Render a schema in DDL syntax.
pub fn print(schema: &Schema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "schema {} {{", schema.name());
    for (_, obj) in schema.objects() {
        match &obj.kind {
            ObjectKind::EntitySet => {
                let _ = writeln!(out, "  entity {} {{", obj.name);
            }
            ObjectKind::Category { parents } => {
                let names: Vec<&str> = parents
                    .iter()
                    .map(|&p| schema.object(p).name.as_str())
                    .collect();
                let _ = writeln!(out, "  category {} of {} {{", obj.name, names.join(", "));
            }
        }
        for a in &obj.attributes {
            let key = if a.is_key() { " key" } else { "" };
            let _ = writeln!(out, "    {}: {}{};", a.name, a.domain.tag(), key);
        }
        let _ = writeln!(out, "  }}");
    }
    for (_, rel) in schema.relationships() {
        let _ = writeln!(out, "  relationship {} {{", rel.name);
        for p in &rel.participants {
            let role = match &p.role {
                Some(r) => format!(" role {r}"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "    {} {}{};",
                schema.object(p.object).name,
                p.cardinality,
                role
            );
        }
        for a in &rel.attributes {
            let key = if a.is_key() { " key" } else { "" };
            let _ = writeln!(out, "    {}: {}{};", a.name, a.domain.tag(), key);
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::parse;
    use crate::domain::Domain;
    use crate::relationship::Cardinality;
    use crate::schema::SchemaBuilder;

    #[test]
    fn print_parse_roundtrip() {
        let mut b = SchemaBuilder::new("rt");
        let person = b
            .entity_set("Person")
            .attr_key("SSN", Domain::Int)
            .attr("Name", Domain::Char)
            .finish();
        let city = b.entity_set("City").attr_key("Cname", Domain::Char).finish();
        b.category("Adult", vec![person])
            .attr("Age", Domain::Int)
            .finish();
        b.relationship("LivesIn")
            .participant_role(person, Cardinality::ONE, "resident")
            .participant(city, Cardinality::MANY)
            .attr("Since", Domain::Date)
            .finish();
        let s = b.build().unwrap();
        let text = print(&s);
        let back = parse(&text).unwrap();
        assert_eq!(back, s, "printed:\n{text}");
    }

    #[test]
    fn cardinality_notation_matches_parser() {
        let mut b = SchemaBuilder::new("c");
        let x = b.entity_set("X").finish();
        let y = b.entity_set("Y").finish();
        b.relationship("R")
            .participant(x, Cardinality::at_least(2))
            .participant(y, Cardinality::new(1, Some(5)))
            .finish();
        let s = b.build().unwrap();
        let text = print(&s);
        assert!(text.contains("X (2,n);"), "{text}");
        assert!(text.contains("Y (1,5);"), "{text}");
        assert_eq!(parse(&text).unwrap(), s);
    }

    #[test]
    fn enum_domains_roundtrip() {
        let mut b = SchemaBuilder::new("e");
        b.entity_set("G")
            .attr("Support", Domain::Enum(vec!["TA".into(), "RA".into()]))
            .finish();
        let s = b.build().unwrap();
        let text = print(&s);
        assert!(text.contains("enum{TA,RA}"), "{text}");
        assert_eq!(parse(&text).unwrap(), s);
    }
}
