//! Error type for ECR model construction, parsing, and validation.

use std::fmt;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, EcrError>;

/// Errors raised while building, parsing, or validating ECR schemas.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EcrError {
    /// Two object classes or relationship sets share a name.
    DuplicateName {
        /// The clashing name.
        name: String,
        /// What kind of element clashed (`"object class"`, ...).
        kind: &'static str,
    },
    /// An attribute name repeats within one owner.
    DuplicateAttribute {
        /// Owner (object class or relationship set) name.
        owner: String,
        /// The repeated attribute name.
        attr: String,
    },
    /// A referenced object id is out of range.
    UnknownObject(String),
    /// A referenced name could not be resolved.
    UnknownName(String),
    /// A category's parent list is empty or cyclic.
    BadCategory(String),
    /// A relationship set has fewer than two participants.
    BadRelationship(String),
    /// An invalid `(min,max)` structural constraint.
    BadCardinality(String),
    /// A domain string could not be parsed.
    BadDomain(String),
    /// DDL syntax error with line/column.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Human-readable message.
        msg: String,
    },
    /// Schema failed validation; the violations are listed.
    Invalid(Vec<crate::validate::Violation>),
}

impl fmt::Display for EcrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcrError::DuplicateName { name, kind } => {
                write!(f, "duplicate {kind} name `{name}`")
            }
            EcrError::DuplicateAttribute { owner, attr } => {
                write!(f, "duplicate attribute `{attr}` in `{owner}`")
            }
            EcrError::UnknownObject(what) => write!(f, "unknown object: {what}"),
            EcrError::UnknownName(name) => write!(f, "unknown name `{name}`"),
            EcrError::BadCategory(msg) => write!(f, "bad category: {msg}"),
            EcrError::BadRelationship(msg) => write!(f, "bad relationship: {msg}"),
            EcrError::BadCardinality(msg) => write!(f, "bad cardinality: {msg}"),
            EcrError::BadDomain(s) => write!(f, "cannot parse domain `{s}`"),
            EcrError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            EcrError::Invalid(vs) => {
                write!(f, "schema invalid ({} violation(s)):", vs.len())?;
                for v in vs {
                    write!(f, "\n  - {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for EcrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = EcrError::DuplicateName {
            name: "Student".into(),
            kind: "object class",
        };
        assert_eq!(e.to_string(), "duplicate object class name `Student`");
        let p = EcrError::Parse {
            line: 3,
            col: 7,
            msg: "expected `;`".into(),
        };
        assert!(p.to_string().contains("3:7"));
    }
}
