//! Attributes of object classes and relationship sets.

use crate::domain::Domain;

/// Whether an attribute (alone) uniquely identifies instances of its owner —
/// the `Key (y/n)` column of the paper's Attribute Information Collection
/// Screen (Screen 5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum KeyStatus {
    /// The attribute is a key of its owner.
    Key,
    /// The attribute is not a key.
    #[default]
    NonKey,
}

impl KeyStatus {
    /// `true` when this is [`KeyStatus::Key`].
    #[inline]
    pub fn is_key(self) -> bool {
        matches!(self, KeyStatus::Key)
    }

    /// The `y`/`n` flag shown on the paper's screens.
    pub fn flag(self) -> char {
        match self {
            KeyStatus::Key => 'y',
            KeyStatus::NonKey => 'n',
        }
    }
}

impl From<bool> for KeyStatus {
    fn from(b: bool) -> Self {
        if b {
            KeyStatus::Key
        } else {
            KeyStatus::NonKey
        }
    }
}

/// A named, typed attribute.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Attribute {
    /// Attribute name, unique within its owner.
    pub name: String,
    /// Value domain.
    pub domain: Domain,
    /// Key property.
    pub key: KeyStatus,
}

impl Attribute {
    /// A non-key attribute.
    pub fn new(name: impl Into<String>, domain: Domain) -> Self {
        Self {
            name: name.into(),
            domain,
            key: KeyStatus::NonKey,
        }
    }

    /// A key attribute.
    pub fn key(name: impl Into<String>, domain: Domain) -> Self {
        Self {
            name: name.into(),
            domain,
            key: KeyStatus::Key,
        }
    }

    /// `true` when the attribute is a key of its owner.
    #[inline]
    pub fn is_key(&self) -> bool {
        self.key.is_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_key_status() {
        let a = Attribute::new("GPA", Domain::Real);
        assert!(!a.is_key());
        assert_eq!(a.key.flag(), 'n');
        let k = Attribute::key("Name", Domain::Char);
        assert!(k.is_key());
        assert_eq!(k.key.flag(), 'y');
    }

    #[test]
    fn key_status_from_bool() {
        assert_eq!(KeyStatus::from(true), KeyStatus::Key);
        assert_eq!(KeyStatus::from(false), KeyStatus::NonKey);
    }
}
