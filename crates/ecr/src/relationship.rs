//! Relationship sets and structural (cardinality) constraints.
//!
//! A relationship associates entities from two or more object classes; a
//! collection of relationships of the same type over the same object classes
//! is a *relationship set*. The ECR model attaches a **structural
//! constraint** `(i1, i2)` to each participating object class: every entity
//! of that class participates in at least `i1` and at most `i2` relationship
//! instances (`0 <= i1 <= i2`, `i2 > 0`; `i2` may be unbounded, written `n`).

use std::fmt;

use crate::attribute::Attribute;
use crate::ids::{AttrId, ObjectId};

/// The `(min, max)` structural constraint of the paper's section 2.
/// `max == None` means unbounded (`n`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Cardinality {
    /// Minimum participation count (`i1`).
    pub min: u32,
    /// Maximum participation count (`i2`); `None` for `n` (unbounded).
    pub max: Option<u32>,
}

impl Cardinality {
    /// Bounded cardinality `(min, max)`.
    pub const fn new(min: u32, max: Option<u32>) -> Self {
        Self { min, max }
    }

    /// `(min, n)` — unbounded above.
    pub const fn at_least(min: u32) -> Self {
        Self { min, max: None }
    }

    /// `(1, 1)` — mandatory, functional participation.
    pub const ONE: Cardinality = Cardinality {
        min: 1,
        max: Some(1),
    };

    /// `(0, 1)` — optional, functional participation.
    pub const AT_MOST_ONE: Cardinality = Cardinality {
        min: 0,
        max: Some(1),
    };

    /// `(0, n)` — unconstrained participation.
    pub const MANY: Cardinality = Cardinality { min: 0, max: None };

    /// Validity per the paper: `0 <= i1 <= i2` and `i2 > 0`.
    pub fn is_valid(&self) -> bool {
        match self.max {
            Some(max) => max > 0 && self.min <= max,
            None => true,
        }
    }

    /// The loosest constraint implied by both — used when merging
    /// equivalent relationship sets during integration (the merged
    /// constraint must admit every instance either component admitted).
    pub fn widen(&self, other: &Cardinality) -> Cardinality {
        Cardinality {
            min: self.min.min(other.min),
            max: match (self.max, other.max) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// `true` if every participation allowed by `other` is allowed by
    /// `self`.
    pub fn subsumes(&self, other: &Cardinality) -> bool {
        let upper_ok = match (self.max, other.max) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => a >= b,
        };
        self.min <= other.min && upper_ok
    }
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            Some(max) => write!(f, "({},{})", self.min, max),
            None => write!(f, "({},n)", self.min),
        }
    }
}

/// One leg of a relationship set: an object class plus its structural
/// constraint and optional role name (role names disambiguate recursive
/// relationships such as `Supervises(Employee supervisor, Employee report)`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Participant {
    /// The participating object class.
    pub object: ObjectId,
    /// Structural constraint on the participation.
    pub cardinality: Cardinality,
    /// Optional role name.
    pub role: Option<String>,
}

impl Participant {
    /// Participant without a role name.
    pub fn new(object: ObjectId, cardinality: Cardinality) -> Self {
        Self {
            object,
            cardinality,
            role: None,
        }
    }

    /// Participant with a role name.
    pub fn with_role(object: ObjectId, cardinality: Cardinality, role: impl Into<String>) -> Self {
        Self {
            object,
            cardinality,
            role: Some(role.into()),
        }
    }
}

/// A relationship set: name, participating object classes (with structural
/// constraints), and the relationship's own attributes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelationshipSet {
    /// Name, unique among the schema's relationship sets.
    pub name: String,
    /// Two or more participating legs.
    pub participants: Vec<Participant>,
    /// Attributes of the relationship itself.
    pub attributes: Vec<Attribute>,
}

impl RelationshipSet {
    /// Create an empty relationship set (participants added later).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            participants: Vec::new(),
            attributes: Vec::new(),
        }
    }

    /// Degree of the relationship (number of participating legs).
    pub fn degree(&self) -> usize {
        self.participants.len()
    }

    /// `true` when `object` participates in this relationship set.
    pub fn involves(&self, object: ObjectId) -> bool {
        self.participants.iter().any(|p| p.object == object)
    }

    /// Find a local attribute by name.
    pub fn attr_by_name(&self, name: &str) -> Option<(AttrId, &Attribute)> {
        self.attributes
            .iter()
            .enumerate()
            .find(|(_, a)| a.name == name)
            .map(|(i, a)| (AttrId::new(i as u32), a))
    }

    /// Local attribute lookup by id.
    pub fn attr(&self, id: AttrId) -> Option<&Attribute> {
        self.attributes.get(id.index())
    }

    /// Number of local attributes.
    pub fn attr_count(&self) -> usize {
        self.attributes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    #[test]
    fn cardinality_validity() {
        assert!(Cardinality::new(0, Some(1)).is_valid());
        assert!(Cardinality::new(1, Some(1)).is_valid());
        assert!(Cardinality::at_least(5).is_valid());
        assert!(!Cardinality::new(2, Some(1)).is_valid(), "min > max");
        assert!(!Cardinality::new(0, Some(0)).is_valid(), "i2 must be > 0");
    }

    #[test]
    fn widen_takes_the_looser_bound() {
        let a = Cardinality::new(1, Some(1));
        let b = Cardinality::new(0, Some(3));
        assert_eq!(a.widen(&b), Cardinality::new(0, Some(3)));
        assert_eq!(a.widen(&Cardinality::MANY), Cardinality::MANY);
        // widen is commutative
        assert_eq!(a.widen(&b), b.widen(&a));
    }

    #[test]
    fn subsumption() {
        assert!(Cardinality::MANY.subsumes(&Cardinality::ONE));
        assert!(!Cardinality::ONE.subsumes(&Cardinality::MANY));
        assert!(Cardinality::new(0, Some(3)).subsumes(&Cardinality::new(1, Some(2))));
        assert!(!Cardinality::new(1, Some(3)).subsumes(&Cardinality::new(0, Some(2))));
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(Cardinality::new(1, Some(1)).to_string(), "(1,1)");
        assert_eq!(Cardinality::at_least(0).to_string(), "(0,n)");
    }

    #[test]
    fn relationship_basics() {
        let mut r = RelationshipSet::new("Majors");
        r.participants
            .push(Participant::new(ObjectId::new(0), Cardinality::ONE));
        r.participants.push(Participant::with_role(
            ObjectId::new(1),
            Cardinality::MANY,
            "major_dept",
        ));
        r.attributes.push(Attribute::new("Since", Domain::Date));
        assert_eq!(r.degree(), 2);
        assert!(r.involves(ObjectId::new(1)));
        assert!(!r.involves(ObjectId::new(9)));
        assert!(r.attr_by_name("Since").is_some());
        assert_eq!(r.attr(AttrId::new(0)).unwrap().name, "Since");
        assert_eq!(r.attr_count(), 1);
        assert_eq!(r.participants[1].role.as_deref(), Some("major_dept"));
    }
}
