#![warn(missing_docs)]
//! # sit-ecr — the Entity-Category-Relationship conceptual data model
//!
//! This crate implements the ECR model of Elmasri, Hevner and Weeldreyer
//! ("The Category Concept: An Extension to Entity-Relationship Model", 1985)
//! as used by the ICDE 1988 paper *"A Tool for Integrating Conceptual Schemas
//! and User Views"* (Sheth, Larson, Cornelio, Navathe). It is the substrate on
//! which the schema-integration tool in `sit-core` operates.
//!
//! The ECR model extends Chen's ER model with:
//!
//! 1. **Categories** — named subsets of entities from one or more object
//!    classes, used to represent generalization hierarchies and subclasses.
//!    A category inherits the attributes of the object classes over which it
//!    is defined.
//! 2. **Structural constraints** — `(min, max)` cardinality bounds on the
//!    participation of an object class in a relationship set.
//!
//! The model here is *value-oriented and immutable-after-build*: a
//! [`Schema`] is assembled through a [`SchemaBuilder`], validated, and then
//! only read. All elements are addressed by small typed ids
//! ([`ObjectId`], [`RelId`], [`AttrId`]) so the integration engine can use
//! dense matrices.
//!
//! ## Quick tour
//!
//! ```
//! use sit_ecr::{SchemaBuilder, Domain, Cardinality};
//!
//! let mut b = SchemaBuilder::new("sc1");
//! let student = b
//!     .entity_set("Student")
//!     .attr_key("Name", Domain::Char)
//!     .attr("GPA", Domain::Real)
//!     .finish();
//! let dept = b
//!     .entity_set("Department")
//!     .attr_key("Dname", Domain::Char)
//!     .finish();
//! b.relationship("Majors")
//!     .participant(student, Cardinality::new(0, Some(1)))
//!     .participant(dept, Cardinality::at_least(0))
//!     .finish();
//! let schema = b.build().expect("valid schema");
//! assert_eq!(schema.object_count(), 2);
//! assert_eq!(schema.relationship_count(), 1);
//! ```
//!
//! Schemas can also be written in the textual DDL (see [`ddl`]) that mirrors
//! the paper's "Schema Collection" forms, and rendered back with the
//! pretty-printer.

pub mod attribute;
pub mod ddl;
pub mod domain;
pub mod error;
pub mod fixtures;
pub mod graph;
pub mod ids;
pub mod object;
pub mod relationship;
pub mod render;
pub mod schema;
pub mod validate;

pub use attribute::{Attribute, KeyStatus};
pub use domain::Domain;
pub use error::{EcrError, Result};
pub use graph::IsaGraph;
pub use ids::{AttrId, AttrRef, ObjectId, RelId, SchemaId};
pub use object::{ObjectClass, ObjectKind};
pub use relationship::{Cardinality, Participant, RelationshipSet};
pub use schema::{AttrOwner, Schema, SchemaBuilder};
pub use validate::{validate, Violation};
