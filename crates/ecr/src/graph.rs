//! IS-A (generalization) graph utilities over a schema's categories.
//!
//! Categories form a directed acyclic graph over object classes: an edge
//! `child -> parent` exists when `child` is a category defined over
//! `parent`. This module materializes that graph once and answers the
//! queries the integration engine and the viewer screens need: ancestors,
//! descendants, inherited attributes, roots, and topological order.

use std::collections::VecDeque;

use crate::attribute::Attribute;
use crate::ids::ObjectId;
use crate::schema::Schema;

/// Materialized IS-A graph of one schema.
#[derive(Clone, Debug)]
pub struct IsaGraph {
    /// `parents[o]` — direct parents of object `o` (empty for entity sets).
    parents: Vec<Vec<ObjectId>>,
    /// `children[o]` — direct children (categories defined over `o`).
    children: Vec<Vec<ObjectId>>,
}

impl IsaGraph {
    /// Build the graph from a schema.
    pub fn of(schema: &Schema) -> Self {
        let n = schema.object_count();
        let mut parents = vec![Vec::new(); n];
        let mut children = vec![Vec::new(); n];
        for (id, obj) in schema.objects() {
            for &p in obj.parents() {
                parents[id.index()].push(p);
                children[p.index()].push(id);
            }
        }
        Self { parents, children }
    }

    /// Number of object classes.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// `true` when the schema has no object classes.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Direct parents of `o`.
    pub fn parents(&self, o: ObjectId) -> &[ObjectId] {
        &self.parents[o.index()]
    }

    /// Direct children of `o`.
    pub fn children(&self, o: ObjectId) -> &[ObjectId] {
        &self.children[o.index()]
    }

    /// All (transitive) ancestors of `o`, breadth-first, excluding `o`.
    pub fn ancestors(&self, o: ObjectId) -> Vec<ObjectId> {
        self.reach(o, |g, x| &g.parents[x.index()])
    }

    /// All (transitive) descendants of `o`, breadth-first, excluding `o`.
    pub fn descendants(&self, o: ObjectId) -> Vec<ObjectId> {
        self.reach(o, |g, x| &g.children[x.index()])
    }

    fn reach(
        &self,
        start: ObjectId,
        next: impl Fn(&Self, ObjectId) -> &[ObjectId],
    ) -> Vec<ObjectId> {
        let mut seen = vec![false; self.len()];
        let mut out = Vec::new();
        let mut q = VecDeque::from([start]);
        seen[start.index()] = true;
        while let Some(x) = q.pop_front() {
            for &y in next(self, x) {
                if !seen[y.index()] {
                    seen[y.index()] = true;
                    out.push(y);
                    q.push_back(y);
                }
            }
        }
        out
    }

    /// `true` when `a` is `b` or a descendant of `b` (i.e. domain of `a`
    /// is contained in the domain of `b` by the schema's own structure).
    pub fn is_subclass_of(&self, a: ObjectId, b: ObjectId) -> bool {
        a == b || self.ancestors(a).contains(&b)
    }

    /// Root object classes (entity sets).
    pub fn roots(&self) -> Vec<ObjectId> {
        (0..self.len() as u32)
            .map(ObjectId::new)
            .filter(|o| self.parents[o.index()].is_empty())
            .collect()
    }

    /// The root entity set(s) an object ultimately specializes. Entity sets
    /// return themselves.
    pub fn root_ancestors(&self, o: ObjectId) -> Vec<ObjectId> {
        if self.parents[o.index()].is_empty() {
            return vec![o];
        }
        let mut roots: Vec<ObjectId> = self
            .ancestors(o)
            .into_iter()
            .filter(|a| self.parents[a.index()].is_empty())
            .collect();
        roots.sort_unstable();
        roots.dedup();
        roots
    }

    /// Detect a cycle; returns one offending object if the "graph" is not
    /// acyclic (which validation reports as a violation).
    pub fn find_cycle(&self) -> Option<ObjectId> {
        // Kahn's algorithm on child -> parent edges.
        let n = self.len();
        let mut indeg = vec![0usize; n];
        for ps in &self.parents {
            for p in ps {
                indeg[p.index()] += 1;
            }
        }
        let mut q: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut removed = 0usize;
        while let Some(i) = q.pop_front() {
            removed += 1;
            for &p in &self.parents[i] {
                indeg[p.index()] -= 1;
                if indeg[p.index()] == 0 {
                    q.push_back(p.index());
                }
            }
        }
        if removed == n {
            None
        } else {
            indeg
                .iter()
                .position(|&d| d > 0)
                .map(|i| ObjectId::new(i as u32))
        }
    }

    /// Objects in topological order, parents before children. Returns
    /// `None` when the graph is cyclic.
    pub fn topo_order(&self) -> Option<Vec<ObjectId>> {
        let n = self.len();
        // Edges parent -> child; indegree = number of parents.
        let mut indeg: Vec<usize> = self.parents.iter().map(Vec::len).collect();
        let mut q: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut out = Vec::with_capacity(n);
        while let Some(i) = q.pop_front() {
            out.push(ObjectId::new(i as u32));
            for c in &self.children[i] {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    q.push_back(c.index());
                }
            }
        }
        (out.len() == n).then_some(out)
    }
}

/// All attributes visible on `o`: its local attributes plus those inherited
/// from every ancestor ("a category inherits the attributes of the object
/// class over which it is defined"). Inherited attributes whose names clash
/// with a local attribute are shadowed by the local one; among ancestors,
/// the nearest definition wins (breadth-first order).
pub fn visible_attributes(schema: &Schema, o: ObjectId) -> Vec<(ObjectId, Attribute)> {
    let graph = IsaGraph::of(schema);
    let mut out: Vec<(ObjectId, Attribute)> = schema
        .object(o)
        .attributes
        .iter()
        .cloned()
        .map(|a| (o, a))
        .collect();
    for anc in graph.ancestors(o) {
        for a in &schema.object(anc).attributes {
            if !out.iter().any(|(_, have)| have.name == a.name) {
                out.push((anc, a.clone()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::schema::SchemaBuilder;

    fn diamond() -> Schema {
        // Person <- {Student, Employee} <- WorkingStudent
        let mut b = SchemaBuilder::new("d");
        let person = b
            .entity_set("Person")
            .attr_key("SSN", Domain::Int)
            .attr("Name", Domain::Char)
            .finish();
        let student = b
            .category("Student", vec![person])
            .attr("GPA", Domain::Real)
            .finish();
        let employee = b
            .category("Employee", vec![person])
            .attr("Salary", Domain::Real)
            .finish();
        b.category("WorkingStudent", vec![student, employee])
            .attr("Hours", Domain::Int)
            .finish();
        b.build().unwrap()
    }

    #[test]
    fn parents_children_ancestors_descendants() {
        let s = diamond();
        let g = IsaGraph::of(&s);
        let person = s.object_by_name("Person").unwrap();
        let student = s.object_by_name("Student").unwrap();
        let ws = s.object_by_name("WorkingStudent").unwrap();

        assert!(g.parents(person).is_empty());
        assert_eq!(g.children(person).len(), 2);
        assert_eq!(g.parents(ws).len(), 2);

        let anc = g.ancestors(ws);
        assert_eq!(anc.len(), 3, "Student, Employee, Person");
        assert!(anc.contains(&person));

        let desc = g.descendants(person);
        assert_eq!(desc.len(), 3);
        assert!(desc.contains(&ws));

        assert!(g.is_subclass_of(ws, person));
        assert!(g.is_subclass_of(student, student));
        assert!(!g.is_subclass_of(person, ws));
    }

    #[test]
    fn roots_and_root_ancestors() {
        let s = diamond();
        let g = IsaGraph::of(&s);
        let person = s.object_by_name("Person").unwrap();
        let ws = s.object_by_name("WorkingStudent").unwrap();
        assert_eq!(g.roots(), vec![person]);
        assert_eq!(g.root_ancestors(ws), vec![person]);
        assert_eq!(g.root_ancestors(person), vec![person]);
    }

    #[test]
    fn topo_order_parents_first() {
        let s = diamond();
        let g = IsaGraph::of(&s);
        let order = g.topo_order().unwrap();
        let pos = |name: &str| {
            let id = s.object_by_name(name).unwrap();
            order.iter().position(|&x| x == id).unwrap()
        };
        assert!(pos("Person") < pos("Student"));
        assert!(pos("Student") < pos("WorkingStudent"));
        assert!(pos("Employee") < pos("WorkingStudent"));
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn inherited_attributes_resolve_through_diamond_once() {
        let s = diamond();
        let ws = s.object_by_name("WorkingStudent").unwrap();
        let attrs = visible_attributes(&s, ws);
        let names: Vec<&str> = attrs.iter().map(|(_, a)| a.name.as_str()).collect();
        // Local first, then inherited; Person's attrs appear once despite
        // the diamond.
        assert_eq!(names, vec!["Hours", "GPA", "Salary", "SSN", "Name"]);
    }

    #[test]
    fn shadowing_prefers_local_attribute() {
        // The shadow uses a compatible domain (enum over char) so the
        // schema still validates; validation flags incompatible shadows.
        let shadow = Domain::Enum(vec!["Bob".into(), "Rob".into()]);
        let mut b = SchemaBuilder::new("sh");
        let person = b.entity_set("Person").attr("Name", Domain::Char).finish();
        b.category("Nicknamed", vec![person])
            .attr("Name", shadow.clone())
            .finish();
        let s = b.build().unwrap();
        let nick = s.object_by_name("Nicknamed").unwrap();
        let attrs = visible_attributes(&s, nick);
        assert_eq!(attrs.len(), 1);
        assert_eq!(attrs[0].1.domain, shadow);
        assert_eq!(attrs[0].0, nick, "owner is the shadowing class");
    }
}
