//! Structural validation of ECR schemas.
//!
//! Validation runs automatically at [`crate::SchemaBuilder::build`] time and
//! enforces the ECR well-formedness rules of the paper's section 2, so the
//! rest of the system (integration engine, screens) can assume a sound
//! model.

use std::collections::HashSet;
use std::fmt;

use crate::graph::IsaGraph;
use crate::ids::ObjectId;
use crate::relationship::RelationshipSet;
use crate::schema::Schema;

/// One well-formedness violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Violation {
    /// A category references an object id that does not exist.
    DanglingParent {
        /// The category's name.
        category: String,
        /// The out-of-range id.
        parent: ObjectId,
    },
    /// A category has no parents.
    ParentlessCategory {
        /// The category's name.
        category: String,
    },
    /// A category lists the same parent twice.
    DuplicateParent {
        /// The category's name.
        category: String,
        /// The repeated parent name.
        parent: String,
    },
    /// The IS-A graph has a cycle through this object.
    IsaCycle {
        /// An object on the cycle.
        object: String,
    },
    /// A relationship set has fewer than two participants.
    UnderDegreeRelationship {
        /// The relationship set's name.
        rel: String,
        /// How many participants it has.
        degree: usize,
    },
    /// A relationship participant references a missing object.
    DanglingParticipant {
        /// The relationship set's name.
        rel: String,
        /// The out-of-range id.
        object: ObjectId,
    },
    /// An invalid `(min,max)` constraint (`min > max` or `max == 0`).
    BadCardinality {
        /// The relationship set's name.
        rel: String,
        /// Name of the participating object.
        participant: String,
        /// The offending constraint, displayed.
        cardinality: String,
    },
    /// Duplicate attribute name within one owner.
    DuplicateAttribute {
        /// Owner (object class or relationship set) name.
        owner: String,
        /// Repeated attribute name.
        attr: String,
    },
    /// An attribute shadows an inherited attribute with an incompatible
    /// domain — legal but suspicious; reported so the DDA can fix naming
    /// during schema analysis (phase 2).
    SuspiciousShadow {
        /// The category doing the shadowing.
        object: String,
        /// The shadowed attribute name.
        attr: String,
    },
    /// An object class or relationship set has an empty name.
    EmptyName,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DanglingParent { category, parent } => {
                write!(f, "category `{category}` references missing parent {parent}")
            }
            Violation::ParentlessCategory { category } => {
                write!(f, "category `{category}` has no parents")
            }
            Violation::DuplicateParent { category, parent } => {
                write!(f, "category `{category}` lists parent `{parent}` twice")
            }
            Violation::IsaCycle { object } => {
                write!(f, "IS-A cycle through `{object}`")
            }
            Violation::UnderDegreeRelationship { rel, degree } => {
                write!(f, "relationship `{rel}` has degree {degree} (< 2)")
            }
            Violation::DanglingParticipant { rel, object } => {
                write!(f, "relationship `{rel}` references missing object {object}")
            }
            Violation::BadCardinality {
                rel,
                participant,
                cardinality,
            } => write!(
                f,
                "relationship `{rel}`: participant `{participant}` has invalid cardinality {cardinality}"
            ),
            Violation::DuplicateAttribute { owner, attr } => {
                write!(f, "`{owner}` declares attribute `{attr}` twice")
            }
            Violation::SuspiciousShadow { object, attr } => write!(
                f,
                "category `{object}` shadows inherited attribute `{attr}` with an incompatible domain"
            ),
            Violation::EmptyName => write!(f, "empty element name"),
        }
    }
}

/// Check every well-formedness rule; returns all violations found (empty
/// means valid).
pub fn validate(schema: &Schema) -> Vec<Violation> {
    let mut out = Vec::new();
    let n = schema.object_count();

    // Names and attributes of object classes.
    for (_, obj) in schema.objects() {
        if obj.name.trim().is_empty() {
            out.push(Violation::EmptyName);
        }
        check_dup_attrs(&obj.name, obj.attributes.iter().map(|a| a.name.as_str()), &mut out);
    }

    // Category structure (range checks must precede graph construction).
    let mut ranges_ok = true;
    for (_, obj) in schema.objects() {
        let parents = obj.parents();
        if obj.kind.is_category() && parents.is_empty() {
            out.push(Violation::ParentlessCategory {
                category: obj.name.clone(),
            });
        }
        let mut seen = HashSet::new();
        for &p in parents {
            if p.index() >= n {
                ranges_ok = false;
                out.push(Violation::DanglingParent {
                    category: obj.name.clone(),
                    parent: p,
                });
            } else if !seen.insert(p) {
                out.push(Violation::DuplicateParent {
                    category: obj.name.clone(),
                    parent: schema.object(p).name.clone(),
                });
            }
        }
    }

    if ranges_ok {
        let graph = IsaGraph::of(schema);
        if let Some(o) = graph.find_cycle() {
            out.push(Violation::IsaCycle {
                object: schema.object(o).name.clone(),
            });
        } else {
            check_shadows(schema, &graph, &mut out);
        }
    }

    // Relationship sets.
    for (_, rel) in schema.relationships() {
        if rel.name.trim().is_empty() {
            out.push(Violation::EmptyName);
        }
        check_relationship(schema, rel, n, &mut out);
    }

    out
}

fn check_relationship(
    schema: &Schema,
    rel: &RelationshipSet,
    object_count: usize,
    out: &mut Vec<Violation>,
) {
    if rel.degree() < 2 {
        out.push(Violation::UnderDegreeRelationship {
            rel: rel.name.clone(),
            degree: rel.degree(),
        });
    }
    for p in &rel.participants {
        if p.object.index() >= object_count {
            out.push(Violation::DanglingParticipant {
                rel: rel.name.clone(),
                object: p.object,
            });
        } else if !p.cardinality.is_valid() {
            out.push(Violation::BadCardinality {
                rel: rel.name.clone(),
                participant: schema.object(p.object).name.clone(),
                cardinality: p.cardinality.to_string(),
            });
        }
    }
    check_dup_attrs(&rel.name, rel.attributes.iter().map(|a| a.name.as_str()), out);
}

fn check_dup_attrs<'a>(
    owner: &str,
    names: impl Iterator<Item = &'a str>,
    out: &mut Vec<Violation>,
) {
    let mut seen = HashSet::new();
    for name in names {
        if !seen.insert(name) {
            out.push(Violation::DuplicateAttribute {
                owner: owner.to_owned(),
                attr: name.to_owned(),
            });
        }
    }
}

fn check_shadows(schema: &Schema, graph: &IsaGraph, out: &mut Vec<Violation>) {
    for (id, obj) in schema.objects() {
        if !obj.kind.is_category() {
            continue;
        }
        for a in &obj.attributes {
            for anc in graph.ancestors(id) {
                if let Some((_, inherited)) = schema.object(anc).attr_by_name(&a.name) {
                    if !inherited.domain.compatible(&a.domain) {
                        out.push(Violation::SuspiciousShadow {
                            object: obj.name.clone(),
                            attr: a.name.clone(),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::relationship::{Cardinality, Participant};
    use crate::schema::SchemaBuilder;

    #[test]
    fn valid_schema_has_no_violations() {
        let mut b = SchemaBuilder::new("ok");
        let x = b.entity_set("X").attr_key("id", Domain::Int).finish();
        let y = b.entity_set("Y").finish();
        b.category("C", vec![x]).finish();
        b.relationship("R")
            .participant(x, Cardinality::ONE)
            .participant(y, Cardinality::MANY)
            .finish();
        assert!(b.build().is_ok());
    }

    #[test]
    fn dangling_parent_detected_before_graph_build() {
        let mut b = SchemaBuilder::new("bad");
        b.category("C", vec![ObjectId::new(42)]).finish();
        let err = b.build().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("missing parent"), "{msg}");
    }

    #[test]
    fn duplicate_parent_detected() {
        let mut b = SchemaBuilder::new("bad");
        let x = b.entity_set("X").finish();
        b.category("C", vec![x, x]).finish();
        let err = b.build().unwrap_err().to_string();
        assert!(err.contains("twice"), "{err}");
    }

    #[test]
    fn under_degree_relationship_detected() {
        let mut b = SchemaBuilder::new("bad");
        let x = b.entity_set("X").finish();
        b.relationship("R").participant(x, Cardinality::MANY).finish();
        let err = b.build().unwrap_err().to_string();
        assert!(err.contains("degree 1"), "{err}");
    }

    #[test]
    fn bad_cardinality_detected() {
        let mut b = SchemaBuilder::new("bad");
        let x = b.entity_set("X").finish();
        let y = b.entity_set("Y").finish();
        b.relationship("R")
            .participant(x, Cardinality::new(3, Some(1)))
            .participant(y, Cardinality::MANY)
            .finish();
        let err = b.build().unwrap_err().to_string();
        assert!(err.contains("invalid cardinality"), "{err}");
    }

    #[test]
    fn duplicate_attribute_detected() {
        let mut b = SchemaBuilder::new("bad");
        b.entity_set("X")
            .attr("a", Domain::Int)
            .attr("a", Domain::Char)
            .finish();
        let err = b.build().unwrap_err().to_string();
        assert!(err.contains("declares attribute `a` twice"), "{err}");
    }

    #[test]
    fn isa_cycle_detected() {
        // Construct a cycle by abusing raw parts: C0 over C1, C1 over C0.
        let mut b = SchemaBuilder::new("cyc");
        let e = b.entity_set("E").finish();
        b.category("C0", vec![e]).finish();
        b.category("C1", vec![e]).finish();
        let s = b.build().unwrap();
        let (name, mut objs, rels) = s.into_parts();
        // Rewire: C0's parent := C1, C1's parent := C0.
        if let crate::object::ObjectKind::Category { parents } = &mut objs[1].kind {
            parents[0] = ObjectId::new(2);
        }
        if let crate::object::ObjectKind::Category { parents } = &mut objs[2].kind {
            parents[0] = ObjectId::new(1);
        }
        let err = crate::schema::Schema::from_parts(name, objs, rels)
            .unwrap_err()
            .to_string();
        assert!(err.contains("IS-A cycle"), "{err}");
    }

    #[test]
    fn suspicious_shadow_detected() {
        let mut b = SchemaBuilder::new("sh");
        let p = b.entity_set("P").attr("when", Domain::Date).finish();
        b.category("C", vec![p]).attr("when", Domain::Bool).finish();
        let err = b.build().unwrap_err().to_string();
        assert!(err.contains("shadows inherited attribute"), "{err}");
    }

    #[test]
    fn dangling_participant_detected() {
        let mut b = SchemaBuilder::new("bad");
        let x = b.entity_set("X").finish();
        b.relationship("R")
            .participant(x, Cardinality::MANY)
            .finish();
        // Push a second, dangling participant via direct access.
        b.relationships[0]
            .participants
            .push(Participant::new(ObjectId::new(99), Cardinality::MANY));
        let err = b.build().unwrap_err().to_string();
        assert!(err.contains("missing object"), "{err}");
    }
}
