//! Attribute domains.
//!
//! The paper's Attribute Information Collection Screen (Screen 5) records a
//! *domain* for every attribute (`char`, `real`, ...). Domains matter to
//! integration in two ways: the paper's simplified attribute-equivalence test
//! treats attributes with incompatible domains as non-equivalent, and the
//! future-work matcher (`sit-matcher`) uses domain compatibility as one
//! resemblance signal.

use std::fmt;
use std::str::FromStr;

use crate::error::EcrError;

/// The value domain of an attribute.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Domain {
    /// Character string (the paper's `char`).
    #[default]
    Char,
    /// Integer.
    Int,
    /// Real / floating point (the paper's `real`).
    Real,
    /// Boolean flag.
    Bool,
    /// Calendar date.
    Date,
    /// A named enumeration of literal values (e.g. `enum{TA,RA,Fellowship}`).
    Enum(Vec<String>),
    /// An application-defined named domain (e.g. `money`, `ssn`).
    Named(String),
}

impl Domain {
    /// Two domains are *compatible* when values of one can be interpreted as
    /// values of the other without a lossy conversion. This is the coarse
    /// test used by the simplified attribute-equivalence theory of
    /// [Larson et al 87] that the paper adopts: equivalent attributes must
    /// have compatible domains.
    pub fn compatible(&self, other: &Domain) -> bool {
        use Domain::*;
        match (self, other) {
            (a, b) if a == b => true,
            // Ints embed in reals.
            (Int, Real) | (Real, Int) => true,
            // Enumerations are strings at heart.
            (Enum(_), Char) | (Char, Enum(_)) => true,
            // A named domain is compatible with another only when equal,
            // which the first arm already covered.
            _ => false,
        }
    }

    /// Short display tag matching the paper's screens (`char`, `real`, ...).
    pub fn tag(&self) -> String {
        match self {
            Domain::Char => "char".to_owned(),
            Domain::Int => "int".to_owned(),
            Domain::Real => "real".to_owned(),
            Domain::Bool => "bool".to_owned(),
            Domain::Date => "date".to_owned(),
            Domain::Enum(vals) => format!("enum{{{}}}", vals.join(",")),
            Domain::Named(n) => n.clone(),
        }
    }

    /// Least general domain covering both, used when merging equivalent
    /// attributes into a derived attribute during integration.
    pub fn generalize(&self, other: &Domain) -> Domain {
        use Domain::*;
        match (self, other) {
            (a, b) if a == b => a.clone(),
            (Int, Real) | (Real, Int) => Real,
            (Enum(a), Enum(b)) => {
                let mut vals = a.clone();
                for v in b {
                    if !vals.contains(v) {
                        vals.push(v.clone());
                    }
                }
                Enum(vals)
            }
            (Enum(_), Char) | (Char, Enum(_)) => Char,
            // Fall back to the universal printable domain.
            _ => Char,
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.tag())
    }
}

impl FromStr for Domain {
    type Err = EcrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        match s {
            "char" | "string" => Ok(Domain::Char),
            "int" | "integer" => Ok(Domain::Int),
            "real" | "float" => Ok(Domain::Real),
            "bool" | "boolean" => Ok(Domain::Bool),
            "date" => Ok(Domain::Date),
            _ => {
                if let Some(body) = s.strip_prefix("enum{").and_then(|r| r.strip_suffix('}')) {
                    let vals: Vec<String> = body
                        .split(',')
                        .map(|v| v.trim().to_owned())
                        .filter(|v| !v.is_empty())
                        .collect();
                    if vals.is_empty() {
                        return Err(EcrError::BadDomain(s.to_owned()));
                    }
                    Ok(Domain::Enum(vals))
                } else if s.chars().all(|c| c.is_alphanumeric() || c == '_') && !s.is_empty() {
                    Ok(Domain::Named(s.to_owned()))
                } else {
                    Err(EcrError::BadDomain(s.to_owned()))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_is_reflexive_and_symmetric_on_samples() {
        let ds = [
            Domain::Char,
            Domain::Int,
            Domain::Real,
            Domain::Bool,
            Domain::Date,
            Domain::Enum(vec!["a".into()]),
            Domain::Named("money".into()),
        ];
        for a in &ds {
            assert!(a.compatible(a), "{a} should be self-compatible");
            for b in &ds {
                assert_eq!(a.compatible(b), b.compatible(a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn int_real_compatible_but_not_int_char() {
        assert!(Domain::Int.compatible(&Domain::Real));
        assert!(!Domain::Int.compatible(&Domain::Char));
        assert!(!Domain::Named("money".into()).compatible(&Domain::Named("ssn".into())));
    }

    #[test]
    fn parse_known_tags() {
        assert_eq!("char".parse::<Domain>().unwrap(), Domain::Char);
        assert_eq!("real".parse::<Domain>().unwrap(), Domain::Real);
        assert_eq!(
            "enum{TA, RA}".parse::<Domain>().unwrap(),
            Domain::Enum(vec!["TA".into(), "RA".into()])
        );
        assert_eq!(
            "money".parse::<Domain>().unwrap(),
            Domain::Named("money".into())
        );
        assert!("enum{}".parse::<Domain>().is_err());
        assert!("no spaces!".parse::<Domain>().is_err());
    }

    #[test]
    fn tag_roundtrips_through_parse() {
        for d in [
            Domain::Char,
            Domain::Int,
            Domain::Real,
            Domain::Bool,
            Domain::Date,
            Domain::Enum(vec!["x".into(), "y".into()]),
            Domain::Named("ssn".into()),
        ] {
            let back: Domain = d.tag().parse().unwrap();
            assert_eq!(back, d);
        }
    }

    #[test]
    fn generalize_unifies_enums_and_numeric() {
        assert_eq!(Domain::Int.generalize(&Domain::Real), Domain::Real);
        assert_eq!(
            Domain::Enum(vec!["a".into()]).generalize(&Domain::Enum(vec!["b".into()])),
            Domain::Enum(vec!["a".into(), "b".into()])
        );
        assert_eq!(Domain::Date.generalize(&Domain::Int), Domain::Char);
    }
}
