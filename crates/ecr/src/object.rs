//! Object classes: entity sets and categories.
//!
//! In the ECR model an *object class* is either an **entity set** (a
//! top-level classification of entities; entity sets within one schema are
//! disjoint) or a **category** (a named subset of the union of one or more
//! parent object classes, representing a subclass in a generalization
//! hierarchy). A category inherits the attributes of the object classes over
//! which it is defined and may add attributes of its own.

use crate::attribute::Attribute;
use crate::ids::{AttrId, ObjectId};

/// Distinguishes entity sets from categories. The paper's Structure
/// Information Collection Screen asks for `Type (E/C/R)`; `E` and `C` map
/// here, `R` maps to [`crate::RelationshipSet`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ObjectKind {
    /// A top-level entity set. Entity sets of one schema are pairwise
    /// disjoint ("a given entity can be a member of only one entity set").
    EntitySet,
    /// A category: a subset of the union of the listed parent object
    /// classes (entity sets or other categories).
    Category {
        /// The object classes over which the category is defined.
        parents: Vec<ObjectId>,
    },
}

impl ObjectKind {
    /// The one-letter tag used on the paper's screens (`e` or `c`).
    pub fn tag(&self) -> char {
        match self {
            ObjectKind::EntitySet => 'e',
            ObjectKind::Category { .. } => 'c',
        }
    }

    /// `true` for categories.
    pub fn is_category(&self) -> bool {
        matches!(self, ObjectKind::Category { .. })
    }
}

/// An entity set or category together with its *local* attributes
/// (a category's inherited attributes are resolved through
/// [`crate::graph::IsaGraph`], not stored).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ObjectClass {
    /// Name, unique among the schema's object classes.
    pub name: String,
    /// Entity set or category.
    pub kind: ObjectKind,
    /// Locally declared attributes.
    pub attributes: Vec<Attribute>,
}

impl ObjectClass {
    /// Create an entity set with no attributes.
    pub fn entity_set(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind: ObjectKind::EntitySet,
            attributes: Vec::new(),
        }
    }

    /// Create a category over `parents` with no local attributes.
    pub fn category(name: impl Into<String>, parents: Vec<ObjectId>) -> Self {
        Self {
            name: name.into(),
            kind: ObjectKind::Category { parents },
            attributes: Vec::new(),
        }
    }

    /// The category's parent ids (empty slice for entity sets).
    pub fn parents(&self) -> &[ObjectId] {
        match &self.kind {
            ObjectKind::EntitySet => &[],
            ObjectKind::Category { parents } => parents,
        }
    }

    /// Find a local attribute by name.
    pub fn attr_by_name(&self, name: &str) -> Option<(AttrId, &Attribute)> {
        self.attributes
            .iter()
            .enumerate()
            .find(|(_, a)| a.name == name)
            .map(|(i, a)| (AttrId::new(i as u32), a))
    }

    /// Local attribute lookup by id.
    pub fn attr(&self, id: AttrId) -> Option<&Attribute> {
        self.attributes.get(id.index())
    }

    /// Ids of all local attributes.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attributes.len() as u32).map(AttrId::new)
    }

    /// Number of local attributes (the `# of attributes` column of
    /// Screen 3).
    pub fn attr_count(&self) -> usize {
        self.attributes.len()
    }

    /// Local key attributes.
    pub fn key_attrs(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_key())
            .map(|(i, a)| (AttrId::new(i as u32), a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    #[test]
    fn entity_set_has_no_parents() {
        let e = ObjectClass::entity_set("Student");
        assert_eq!(e.kind.tag(), 'e');
        assert!(e.parents().is_empty());
        assert!(!e.kind.is_category());
    }

    #[test]
    fn category_tracks_parents() {
        let c = ObjectClass::category("Grad_student", vec![ObjectId::new(0)]);
        assert_eq!(c.kind.tag(), 'c');
        assert_eq!(c.parents(), &[ObjectId::new(0)]);
        assert!(c.kind.is_category());
    }

    #[test]
    fn attribute_lookup_by_name_and_id() {
        let mut o = ObjectClass::entity_set("Student");
        o.attributes.push(Attribute::key("Name", Domain::Char));
        o.attributes.push(Attribute::new("GPA", Domain::Real));
        let (id, a) = o.attr_by_name("GPA").unwrap();
        assert_eq!(id, AttrId::new(1));
        assert_eq!(a.domain, Domain::Real);
        assert!(o.attr_by_name("Nope").is_none());
        assert_eq!(o.attr(AttrId::new(0)).unwrap().name, "Name");
        assert_eq!(o.attr_count(), 2);
        assert_eq!(o.key_attrs().count(), 1);
        assert_eq!(o.attr_ids().count(), 2);
    }
}
