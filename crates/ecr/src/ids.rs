//! Typed, copyable ids for every ECR model element.
//!
//! The integration engine in `sit-core` builds dense matrices (ACS, OCS,
//! assertion matrices) over model elements, so every element is addressed by
//! a small integer id rather than by name. Ids are scoped: an [`ObjectId`] is
//! an index into one schema's object table, and cross-schema code pairs it
//! with a [`SchemaId`].

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Raw index, usable as a `Vec` subscript.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifies a schema within an integration session.
    SchemaId,
    "s"
);
define_id!(
    /// Identifies an object class (entity set or category) within one schema.
    ObjectId,
    "o"
);
define_id!(
    /// Identifies a relationship set within one schema.
    RelId,
    "r"
);
define_id!(
    /// Identifies an attribute within its owning object class or
    /// relationship set.
    AttrId,
    "a"
);

/// Fully qualified reference to an attribute of an object class:
/// `schema.object.attribute`, the unit the paper's ACS matrix is indexed by.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AttrRef {
    /// The schema the attribute's owner belongs to.
    pub schema: SchemaId,
    /// The owning object class.
    pub object: ObjectId,
    /// The attribute within the owner.
    pub attr: AttrId,
}

impl AttrRef {
    /// Construct a fully qualified attribute reference.
    pub const fn new(schema: SchemaId, object: ObjectId, attr: AttrId) -> Self {
        Self {
            schema,
            object,
            attr,
        }
    }
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}", self.schema, self.object, self.attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_formatting() {
        let o = ObjectId::new(7);
        assert_eq!(o.index(), 7);
        assert_eq!(format!("{o}"), "o7");
        assert_eq!(format!("{o:?}"), "o7");
        let s = SchemaId::new(0);
        assert_eq!(format!("{s}"), "s0");
        let r = RelId::new(3);
        assert_eq!(usize::from(r), 3);
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(ObjectId::new(1) < ObjectId::new(2));
        assert_eq!(AttrId::new(4), AttrId::new(4));
    }

    #[test]
    fn attr_ref_display_is_dotted() {
        let a = AttrRef::new(SchemaId::new(1), ObjectId::new(2), AttrId::new(0));
        assert_eq!(a.to_string(), "s1.o2.a0");
    }
}
